// Package walrec frames write-ahead-log records for crash safety. Every
// record is written as
//
//	uvarint(len(payload)) · crc32c(payload) [4 bytes LE] · payload
//
// so a reader can detect a torn tail (the process died mid-append) and
// distinguish it from mid-log corruption (a flipped bit in a record that has
// valid data after it). The CRC is Castagnoli (CRC32C), the polynomial used
// by ext4, iSCSI and most production WALs because of hardware support.
//
// Torn or corrupt *tails* are recoverable: the scanner drops the partial
// frame, reports it in its Summary, and the store loses at most the final
// record. Corruption followed by more intact data is not recoverable —
// replaying past it could resurrect arbitrarily wrong state — so the scanner
// stops with ErrCorrupt.
package walrec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxRecord bounds a single record's payload. Anything larger in a length
// prefix is treated as corruption rather than an allocation request.
const MaxRecord = 1 << 24 // 16 MiB

// ErrCorrupt is wrapped by scanner errors for checksum mismatches and
// malformed frames that cannot be attributed to a torn tail.
var ErrCorrupt = errors.New("walrec: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer appends framed records to an underlying writer through a buffer.
// The first write error is latched: once a record fails, no later record is
// buffered or flushed, so a failed record can never reach the log with
// further records after it (which would turn a recoverable torn tail into
// unrecoverable mid-log corruption).
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w. Records accumulate in a buffer until Flush, which
// callers invoke at commit points.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the latched write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Append frames and buffers one record. The payload is fully materialized by
// the caller before Append, so a failure leaves at most a partial frame in
// the log tail — never an interleaving of two records.
func (w *Writer) Append(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(payload) > MaxRecord {
		return w.fail(fmt.Errorf("walrec: record of %d bytes exceeds MaxRecord", len(payload)))
	}
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.Checksum(payload, castagnoli))
	if _, err := w.w.Write(hdr[:n+4]); err != nil {
		return w.fail(err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return w.fail(err)
	}
	return nil
}

// Flush forces buffered records to the underlying writer. It refuses to run
// after a latched error so a known-bad record is never emitted.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		return w.fail(err)
	}
	return nil
}

// Summary reports what a Scanner consumed, for recovery reporting.
type Summary struct {
	Records      int   // intact records returned
	Bytes        int64 // bytes of intact frames consumed
	TornTail     bool  // the log ended inside a frame; the partial frame was dropped
	CorruptTail  bool  // the final complete frame failed its checksum and was dropped
	DroppedBytes int64 // bytes discarded from the tail
}

func (s Summary) String() string {
	switch {
	case s.TornTail:
		return fmt.Sprintf("%d records (%d bytes), torn tail: dropped %d bytes", s.Records, s.Bytes, s.DroppedBytes)
	case s.CorruptTail:
		return fmt.Sprintf("%d records (%d bytes), corrupt tail: dropped %d bytes", s.Records, s.Bytes, s.DroppedBytes)
	default:
		return fmt.Sprintf("%d records (%d bytes), clean", s.Records, s.Bytes)
	}
}

// Scanner reads framed records back.
type Scanner struct {
	r   *bufio.Reader
	sum Summary
	off int64 // bytes consumed so far
}

// NewScanner wraps r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReader(r)}
}

// Summary describes what has been consumed so far; call it after Next
// returns io.EOF for the full recovery picture.
func (s *Scanner) Summary() Summary { return s.sum }

// readByte tracks the consumed offset.
func (s *Scanner) readByte() (byte, error) {
	b, err := s.r.ReadByte()
	if err == nil {
		s.off++
	}
	return b, err
}

// Next returns the next intact payload. At a clean end it returns io.EOF.
// A torn or checksum-corrupt tail is dropped, recorded in the Summary, and
// also reported as io.EOF — recovery loses at most that final record.
// Corruption with more data after it returns an error wrapping ErrCorrupt.
func (s *Scanner) Next() ([]byte, error) {
	frameStart := s.off
	torn := func() ([]byte, error) {
		s.sum.TornTail = true
		s.sum.DroppedBytes = s.off - frameStart
		return nil, io.EOF
	}
	// Length prefix. EOF on the first byte is a clean end; EOF inside the
	// varint is a torn tail.
	first := true
	var length uint64
	var shift uint
	for {
		b, err := s.readByte()
		if err == io.EOF {
			if first {
				return nil, io.EOF
			}
			return torn()
		}
		if err != nil {
			return nil, err
		}
		first = false
		if shift >= 64 || (shift == 63 && b > 1) {
			return nil, fmt.Errorf("%w: length varint overflow at offset %d", ErrCorrupt, frameStart)
		}
		length |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	if length > MaxRecord {
		return nil, fmt.Errorf("%w: record length %d exceeds MaxRecord at offset %d", ErrCorrupt, length, frameStart)
	}
	var crcBuf [4]byte
	if n, err := io.ReadFull(s.r, crcBuf[:]); err != nil {
		s.off += int64(n)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return torn()
		}
		return nil, err
	}
	s.off += 4
	payload := make([]byte, length)
	if n, err := io.ReadFull(s.r, payload); err != nil {
		s.off += int64(n)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return torn()
		}
		return nil, err
	}
	s.off += int64(length)
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if crc32.Checksum(payload, castagnoli) != want {
		// A bad checksum on the very last frame is tail damage (a torn
		// rewrite or bit rot on the final record): drop it and recover.
		// Bad checksum with data after it is mid-log corruption: stop.
		if _, err := s.r.Peek(1); err == io.EOF {
			s.sum.CorruptTail = true
			s.sum.DroppedBytes = s.off - frameStart
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: checksum mismatch in record %d at offset %d",
			ErrCorrupt, s.sum.Records, frameStart)
	}
	s.sum.Records++
	s.sum.Bytes += s.off - frameStart
	return payload, nil
}

package walrec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

func writeRecords(t *testing.T, payloads ...[]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, []byte("a much longer record with \x00 bytes \xff inside")}
	raw := writeRecords(t, payloads...)
	sc := NewScanner(bytes.NewReader(raw))
	for i, want := range payloads {
		got, err := sc.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: %q vs %q", i, got, want)
		}
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
	sum := sc.Summary()
	if sum.Records != 3 || sum.TornTail || sum.CorruptTail || sum.Bytes != int64(len(raw)) {
		t.Fatalf("summary %+v", sum)
	}
}

// The acceptance property: truncating the log at every byte offset of the
// final record must recover without error, losing at most that record.
func TestTornTailAtEveryOffset(t *testing.T) {
	raw := writeRecords(t, []byte("first"), []byte("second"), []byte("final-record"))
	prefix := writeRecords(t, []byte("first"), []byte("second"))
	for cut := len(prefix); cut < len(raw); cut++ {
		sc := NewScanner(bytes.NewReader(raw[:cut]))
		var n int
		for {
			_, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			n++
		}
		if n != 2 {
			t.Fatalf("cut %d: recovered %d records", cut, n)
		}
		sum := sc.Summary()
		if cut > len(prefix) && !sum.TornTail {
			t.Fatalf("cut %d: torn tail not reported: %+v", cut, sum)
		}
		if sum.DroppedBytes != int64(cut-len(prefix)) {
			t.Fatalf("cut %d: dropped %d want %d", cut, sum.DroppedBytes, cut-len(prefix))
		}
	}
}

func TestCorruptTailDropped(t *testing.T) {
	raw := writeRecords(t, []byte("first"), []byte("last"))
	// Flip a bit inside the final record's payload (last byte of the log).
	mut := append([]byte(nil), raw...)
	mut[len(mut)-1] ^= 0x40
	sc := NewScanner(bytes.NewReader(mut))
	if p, err := sc.Next(); err != nil || string(p) != "first" {
		t.Fatalf("first record: %q %v", p, err)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("corrupt tail should truncate, got %v", err)
	}
	if sum := sc.Summary(); !sum.CorruptTail || sum.Records != 1 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	raw := writeRecords(t, []byte("first"), []byte("second"))
	// Flip a payload bit in the FIRST record: intact data follows, so this
	// must be a hard error, not a truncation.
	mut := append([]byte(nil), raw...)
	mut[6] ^= 0x01 // inside "first"'s payload (1 len byte + 4 crc + offset 1)
	sc := NewScanner(bytes.NewReader(mut))
	_, err := sc.Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestOversizeLengthIsCorrupt(t *testing.T) {
	// A length prefix beyond MaxRecord must not allocate or panic.
	sc := NewScanner(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3}))
	if _, err := sc.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestArbitraryBytesNeverPanic(t *testing.T) {
	inputs := [][]byte{
		{}, {0x00}, {0x01}, {0x80}, {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
		{0x05, 1, 2, 3, 4}, bytes.Repeat([]byte{0xee}, 64),
	}
	for i, in := range inputs {
		sc := NewScanner(bytes.NewReader(in))
		for {
			_, err := sc.Next()
			if err != nil {
				break
			}
		}
		_ = sc.Summary()
		_ = i
	}
}

type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, fmt.Errorf("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriterLatchesError(t *testing.T) {
	w := NewWriter(&failAfter{n: 8})
	// Fill past the bufio buffer so the failure surfaces.
	payload := bytes.Repeat([]byte{7}, 3000)
	var firstErr error
	for i := 0; i < 10 && firstErr == nil; i++ {
		firstErr = w.Append(payload)
	}
	if firstErr == nil {
		firstErr = w.Flush()
	}
	if firstErr == nil {
		t.Fatal("failing writer accepted everything")
	}
	if err := w.Append([]byte("more")); err == nil {
		t.Fatal("append after latched error succeeded")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("flush after latched error succeeded")
	}
	if w.Err() == nil {
		t.Fatal("error not latched")
	}
}

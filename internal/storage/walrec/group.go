package walrec

import "sync"

// GroupWriter coalesces framed-record commits from many writers into batched
// flushes of one underlying Writer — classic WAL group commit. Writers
// enqueue fully materialized payloads with Append (cheap, no I/O) and make
// them durable with Commit: the first committer to arrive becomes the leader,
// drains everything pending into the Writer and performs a single Flush;
// committers that arrive while a flush is in flight wait on it and usually
// find their records already durable when it completes — one buffered write
// and one flush per batch window instead of one per record.
//
// The Writer's error-latch invariant is preserved conservatively: once the
// underlying Writer latches an error, every later Append and Commit fails
// with it, so a known-bad record can never be followed by further records
// (which would turn a recoverable torn tail into mid-log corruption). A
// flush-attempt error that does not latch the Writer — the fault-injection
// hook — is reported to every committer waiting on that attempt and the
// records stay buffered for the next (retried) flush, matching the
// per-commit Writer's retry semantics.
type GroupWriter struct {
	mu   sync.Mutex
	cond *sync.Cond
	fw   *Writer

	pending [][]byte // enqueued, not yet handed to fw
	enq     uint64   // records enqueued so far
	handed  uint64   // records handed to fw (buffered)
	durable uint64   // records known flushed

	leading bool   // a leader's flush attempt is in flight
	gen     uint64 // completed flush attempts
	genErr  error  // error of the most recently completed attempt
	err     error  // latched fatal error (the Writer's latch, surfaced)

	maxBatch int // max records per physical flush; <= 0 means unbounded

	beforeFlush func() error // runs before each physical flush (fault hook)
	afterFlush  func(n int)  // runs after each successful flush; n = records
}

// NewGroup wraps fw. The zero configuration (unbounded batches, no hooks)
// behaves like the plain Writer under a single committer: every Commit is one
// append run plus one flush.
func NewGroup(fw *Writer) *GroupWriter {
	g := &GroupWriter{fw: fw}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// SetMaxBatch bounds how many records one physical flush may cover. n = 1
// degrades group commit to per-record flushing (the single-lock baseline of
// the mixed-throughput benchmark); n <= 0 restores unbounded batches. Call
// before the writer is shared.
func (g *GroupWriter) SetMaxBatch(n int) { g.maxBatch = n }

// SetHooks installs the flush hooks: before runs ahead of every physical
// flush (the WAL layers inject their flush fault point here, so injection
// fires once per coalesced flush, exactly as it fired once per Flush call
// before), after runs on each successful flush with the number of records it
// covered (the WAL layers count physical flushes here). Call before the
// writer is shared; nil disables a hook.
func (g *GroupWriter) SetHooks(before func() error, after func(n int)) {
	g.beforeFlush = before
	g.afterFlush = after
}

// Err returns the latched fatal error, if any.
func (g *GroupWriter) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return g.err
	}
	return g.fw.Err()
}

// Append enqueues one record for the next flush window and returns its
// sequence number for Commit. The payload is copied, so callers may reuse
// their buffer. Append performs no I/O and never blocks on a flush.
func (g *GroupWriter) Append(payload []byte) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return 0, g.err
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	g.pending = append(g.pending, buf)
	g.enq++
	return g.enq, nil
}

// Enqueued returns the sequence number of the most recently appended record;
// Commit(Enqueued()) makes everything enqueued so far durable.
func (g *GroupWriter) Enqueued() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.enq
}

// Commit blocks until every record with sequence <= seq is durably flushed,
// or until the flush attempt covering them fails. If no flush is in flight
// the caller leads one itself; otherwise it waits for the in-flight attempt,
// and typically returns without flushing at all — that coalescing is the
// whole point.
func (g *GroupWriter) Commit(seq uint64) error { return g.commit(seq, false) }

// Sync is Commit(Enqueued()) that always performs at least one physical
// flush attempt when it has to lead — even with nothing pending — so a
// caller's explicit flush keeps its pre-group-commit semantics (the flush
// fault point fires, buffered bytes reach the device). A Sync that finds its
// records made durable by another leader still returns without flushing.
func (g *GroupWriter) Sync() error {
	g.mu.Lock()
	seq := g.enq
	g.mu.Unlock()
	return g.commit(seq, true)
}

func (g *GroupWriter) commit(seq uint64, force bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.err != nil {
			return g.err
		}
		if g.durable >= seq && !force {
			return nil
		}
		if !g.leading {
			return g.leadLocked(seq)
		}
		// A leader's flush is in flight: wait for that attempt to finish,
		// then re-evaluate. If it covered our records we are done without
		// ever touching the file.
		gen := g.gen
		for g.leading && g.gen == gen {
			g.cond.Wait()
		}
		force = false // an attempt ran on our behalf
		if g.err == nil && g.durable < seq && g.genErr != nil {
			// The attempt our records rode on failed transiently; report it
			// so the caller's retry policy decides what happens next.
			return g.genErr
		}
	}
}

// leadLocked runs flush attempts until every record <= seq is durable or an
// attempt fails. Called with g.mu held; unlocks around the I/O.
func (g *GroupWriter) leadLocked(seq uint64) error {
	for {
		g.leading = true
		batch := g.pending
		if g.maxBatch > 0 && len(batch) > g.maxBatch {
			batch = batch[:g.maxBatch:g.maxBatch]
		}
		g.pending = g.pending[len(batch):]
		handedEnd := g.handed + uint64(len(batch))
		g.mu.Unlock()

		var err error
		for _, p := range batch {
			if err = g.fw.Append(p); err != nil {
				break
			}
		}
		if err == nil && g.beforeFlush != nil {
			err = g.beforeFlush()
		}
		if err == nil {
			err = g.fw.Flush()
		}
		if err == nil && g.afterFlush != nil {
			g.afterFlush(len(batch))
		}

		g.mu.Lock()
		g.leading = false
		g.gen++
		g.genErr = err
		g.handed = handedEnd
		if err == nil {
			// A successful flush makes everything handed to fw durable,
			// including records buffered by an earlier failed attempt.
			g.durable = handedEnd
		}
		if ferr := g.fw.Err(); ferr != nil && g.err == nil {
			g.err = ferr
		}
		g.cond.Broadcast()
		if err != nil {
			return err
		}
		if g.err != nil {
			return g.err
		}
		if g.durable >= seq {
			return nil
		}
	}
}

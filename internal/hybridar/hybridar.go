// Package hybridar implements the paper's "HyGraph and AI" direction
// (Section 6): a forecasting model that merges graph structure with
// time-series dynamics, in the spirit of the GC-LSTM / TISER-GCN systems the
// paper cites but in closed form — each TS vertex's next value is regressed
// on its own lags AND the lagged mean of its graph neighbors' series, fit by
// ridge least squares. Forecasts are rolled out jointly over the whole
// instance, so predictions propagate along edges (a graph-coupled VAR).
//
// The testable claim mirrors the paper's thesis: when series are coupled
// through the topology (e.g. a production line where downstream sensors lag
// upstream ones), the hybrid model beats the best isolated-series model.
package hybridar

import (
	"errors"
	"fmt"
	"sort"

	"hygraph/internal/core"
	"hygraph/internal/ts"
)

// Config parameterizes Fit.
type Config struct {
	// OwnLags is the autoregressive order on the vertex's own series.
	OwnLags int
	// NeighborLags is the order on the neighbor-mean signal (0 disables
	// graph coupling, reducing the model to independent ridge AR).
	NeighborLags int
	// Ridge is the L2 regularization strength (> 0 keeps the normal
	// equations well conditioned).
	Ridge float64
	// Bucket aligns all series onto this grid before fitting.
	Bucket ts.Time
	// NeighborHops is how far (in edges, any direction) to search for the
	// TS vertices whose series form the neighbor signal. 1 suits directly
	// linked series; 3 reaches sibling/upstream sensors through
	// sensor–machine–machine–sensor paths.
	NeighborHops int
}

// DefaultConfig is a sensible small model.
func DefaultConfig(bucket ts.Time) Config {
	return Config{OwnLags: 6, NeighborLags: 3, Ridge: 1e-3, Bucket: bucket, NeighborHops: 1}
}

// Model is a fitted graph-coupled AR model.
type Model struct {
	cfg      Config
	vertices []core.VID
	// coef[v] = [a_1..a_p, b_1..b_q, c]
	coef map[core.VID][]float64
	// neighbors of each modeled vertex (modeled TS vertices only)
	nbrs map[core.VID][]core.VID
	// hist[v] = aligned training values (bucket means), oldest first
	hist map[core.VID][]float64
	// lastBucket is the bucket timestamp of the final training point.
	lastBucket ts.Time
}

// ErrTooShort is returned when a series has too few aligned buckets.
var ErrTooShort = errors.New("hybridar: series too short for the chosen lags")

// Fit fits one regression per TS vertex of the instance over the window
// [start, end). Vertices whose series yield fewer than OwnLags+NeighborLags+4
// buckets are skipped.
func Fit(h *core.HyGraph, cfg Config, start, end ts.Time) (*Model, error) {
	if cfg.OwnLags < 1 || cfg.NeighborLags < 0 || cfg.Bucket <= 0 {
		return nil, fmt.Errorf("hybridar: invalid config %+v", cfg)
	}
	m := &Model{
		cfg:  cfg,
		coef: map[core.VID][]float64{},
		nbrs: map[core.VID][]core.VID{},
		hist: map[core.VID][]float64{},
	}
	// Collect aligned histories.
	times := map[core.VID][]ts.Time{}
	h.Vertices(func(v *core.Vertex) bool {
		if v.Kind != core.TS {
			return true
		}
		s, ok := v.SeriesVar("")
		if !ok {
			return true
		}
		r := s.SliceView(start, end).Resample(cfg.Bucket, ts.AggMean)
		if r.Len() < cfg.OwnLags+cfg.NeighborLags+4 {
			return true
		}
		m.hist[v.ID] = r.Values()
		times[v.ID] = r.Times()
		m.vertices = append(m.vertices, v.ID)
		return true
	})
	if len(m.vertices) == 0 {
		return nil, ErrTooShort
	}
	// All modeled series must share the same grid; trim to the shortest
	// common suffix so indexes align.
	minLen := 1 << 60
	for _, v := range m.vertices {
		if l := len(m.hist[v]); l < minLen {
			minLen = l
		}
	}
	for _, v := range m.vertices {
		hv := m.hist[v]
		m.hist[v] = hv[len(hv)-minLen:]
		tv := times[v]
		times[v] = tv[len(tv)-minLen:]
	}
	m.lastBucket = times[m.vertices[0]][minLen-1]
	// Neighbor sets among modeled vertices within NeighborHops edges.
	hops := cfg.NeighborHops
	if hops < 1 {
		hops = 1
	}
	modeled := map[core.VID]bool{}
	for _, v := range m.vertices {
		modeled[v] = true
	}
	for _, v := range m.vertices {
		nb := modeledWithin(h, v, hops, modeled)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		m.nbrs[v] = nb
	}
	// Fit each vertex.
	for _, v := range m.vertices {
		coef, err := m.fitVertex(v, minLen)
		if err != nil {
			return nil, fmt.Errorf("hybridar: vertex %d: %w", v, err)
		}
		m.coef[v] = coef
	}
	return m, nil
}

// modeledWithin BFS-collects the modeled TS vertices within maxHops of v
// (any edge direction), excluding v itself.
func modeledWithin(h *core.HyGraph, v core.VID, maxHops int, modeled map[core.VID]bool) []core.VID {
	seen := map[core.VID]bool{v: true}
	frontier := []core.VID{v}
	var out []core.VID
	for hop := 0; hop < maxHops && len(frontier) > 0; hop++ {
		var next []core.VID
		for _, id := range frontier {
			step := func(n core.VID) {
				if seen[n] {
					return
				}
				seen[n] = true
				if modeled[n] {
					out = append(out, n)
				}
				next = append(next, n)
			}
			for _, e := range h.OutEdges(id) {
				step(e.To)
			}
			for _, e := range h.InEdges(id) {
				step(e.From)
			}
		}
		frontier = next
	}
	return out
}

// neighborMean returns the mean of neighbor histories at index t, or the
// vertex's own value when it has no neighbors (keeps the design matrix
// full rank without special-casing).
func (m *Model) neighborMean(v core.VID, idx int, vals map[core.VID][]float64) float64 {
	nb := m.nbrs[v]
	if len(nb) == 0 {
		return vals[v][idx]
	}
	var s float64
	for _, n := range nb {
		s += vals[n][idx]
	}
	return s / float64(len(nb))
}

// fitVertex solves the ridge normal equations for one vertex.
func (m *Model) fitVertex(v core.VID, n int) ([]float64, error) {
	p, q := m.cfg.OwnLags, m.cfg.NeighborLags
	d := p + q + 1
	maxLag := p
	if q > maxLag {
		maxLag = q
	}
	rows := n - maxLag
	if rows < d {
		return nil, ErrTooShort
	}
	// Normal equations accumulators.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	feat := make([]float64, d)
	y := m.hist[v]
	for t := maxLag; t < n; t++ {
		for l := 1; l <= p; l++ {
			feat[l-1] = y[t-l]
		}
		for l := 1; l <= q; l++ {
			feat[p+l-1] = m.neighborMean(v, t-l, m.hist)
		}
		feat[d-1] = 1 // intercept
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				xtx[i][j] += feat[i] * feat[j]
			}
			xty[i] += feat[i] * y[t]
		}
	}
	for i := 0; i < d-1; i++ { // no ridge on the intercept
		xtx[i][i] += m.cfg.Ridge * float64(rows)
	}
	coef, ok := solve(xtx, xty)
	if !ok {
		return nil, errors.New("singular normal equations")
	}
	return coef, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// (A, b); ok is false when A is singular.
func solve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	// Copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[piv][col]) {
				piv = r
			}
		}
		if abs(m[piv][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Forecast rolls the whole instance forward `steps` buckets jointly: at each
// step every vertex predicts from its own and its neighbors' values,
// including previously predicted ones — information flows along edges.
func (m *Model) Forecast(steps int) map[core.VID]*ts.Series {
	p, q := m.cfg.OwnLags, m.cfg.NeighborLags
	d := p + q + 1
	work := map[core.VID][]float64{}
	for _, v := range m.vertices {
		work[v] = append([]float64(nil), m.hist[v]...)
	}
	out := map[core.VID]*ts.Series{}
	for _, v := range m.vertices {
		out[v] = ts.New(fmt.Sprintf("forecast_v%d", v))
	}
	t := m.lastBucket
	for s := 0; s < steps; s++ {
		t += m.cfg.Bucket
		next := map[core.VID]float64{}
		for _, v := range m.vertices {
			coef := m.coef[v]
			y := work[v]
			n := len(y)
			var pred float64
			for l := 1; l <= p; l++ {
				pred += coef[l-1] * y[n-l]
			}
			for l := 1; l <= q; l++ {
				pred += coef[p+l-1] * m.neighborMean(v, n-l, work)
			}
			pred += coef[d-1]
			next[v] = pred
		}
		for _, v := range m.vertices {
			work[v] = append(work[v], next[v])
			out[v].MustAppend(t, next[v])
		}
	}
	return out
}

// Vertices returns the modeled vertex ids.
func (m *Model) Vertices() []core.VID { return append([]core.VID(nil), m.vertices...) }

// Neighbors returns the modeled neighbor set of a vertex.
func (m *Model) Neighbors(v core.VID) []core.VID {
	return append([]core.VID(nil), m.nbrs[v]...)
}

// Evaluate fits on [start, split) and scores MAE of `steps`-bucket forecasts
// against [split, end) for both the hybrid model and an isolated baseline
// (same config with NeighborLags = 0), returning per-vertex MAEs. It is the
// experiment backing the "hybrid beats isolated" claim.
func Evaluate(h *core.HyGraph, cfg Config, start, split, end ts.Time) (hybrid, isolated map[core.VID]float64, err error) {
	steps := int((end - split) / cfg.Bucket)
	if steps < 1 {
		return nil, nil, fmt.Errorf("hybridar: evaluation window shorter than one bucket")
	}
	hm, err := Fit(h, cfg, start, split)
	if err != nil {
		return nil, nil, err
	}
	iso := cfg
	iso.NeighborLags = 0
	im, err := Fit(h, iso, start, split)
	if err != nil {
		return nil, nil, err
	}
	actual := map[core.VID]*ts.Series{}
	h.Vertices(func(v *core.Vertex) bool {
		if v.Kind != core.TS {
			return true
		}
		if s, ok := v.SeriesVar(""); ok {
			actual[v.ID] = s.SliceView(split, end).Resample(cfg.Bucket, ts.AggMean)
		}
		return true
	})
	score := func(fc map[core.VID]*ts.Series) map[core.VID]float64 {
		out := map[core.VID]float64{}
		for v, f := range fc {
			if a, ok := actual[v]; ok && a.Len() > 0 {
				out[v] = ts.MAE(f, a)
			}
		}
		return out
	}
	return score(hm.Forecast(steps)), score(im.Forecast(steps)), nil
}

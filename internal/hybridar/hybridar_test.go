package hybridar

import (
	"math"
	"testing"

	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// coupledPair builds two TS vertices where b strictly follows a with lag 1:
// b[t] = a[t-1]. A hybrid model must predict b almost perfectly; an isolated
// AR cannot (a is an unpredictable random walk).
func coupledPair(t *testing.T) (*core.HyGraph, core.VID, core.VID) {
	t.Helper()
	h := core.New()
	// a: deterministic pseudo-random walk (seeded LCG so no test flakiness).
	n := 400
	state := uint64(42)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(int64(state>>33)%1000)/100 - 5
	}
	av := make([]float64, n)
	for i := range av {
		step := next()
		if i == 0 {
			av[i] = step
		} else {
			av[i] = av[i-1] + step
		}
	}
	sa := ts.New("a")
	sb := ts.New("b")
	for i := 0; i < n; i++ {
		sa.MustAppend(ts.Time(i)*ts.Hour, av[i])
		if i >= 1 {
			sb.MustAppend(ts.Time(i)*ts.Hour, av[i-1])
		} else {
			sb.MustAppend(0, 0)
		}
	}
	a, err := h.AddTSVertexUni(sa, "S")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.AddTSVertexUni(sb, "S")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddEdge(a, b, "FEEDS", tpg.Always); err != nil {
		t.Fatal(err)
	}
	return h, a, b
}

func TestFitAndNeighborDiscovery(t *testing.T) {
	h, a, b := coupledPair(t)
	m, err := Fit(h, DefaultConfig(ts.Hour), 0, 400*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vertices()) != 2 {
		t.Fatalf("modeled=%v", m.Vertices())
	}
	if nb := m.Neighbors(b); len(nb) != 1 || nb[0] != a {
		t.Fatalf("neighbors of b=%v", nb)
	}
}

func TestForecastShape(t *testing.T) {
	h, a, _ := coupledPair(t)
	m, err := Fit(h, DefaultConfig(ts.Hour), 0, 400*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(12)
	if len(fc) != 2 {
		t.Fatalf("forecasts=%d", len(fc))
	}
	fa := fc[a]
	if fa.Len() != 12 {
		t.Fatalf("steps=%d", fa.Len())
	}
	// Timestamps continue on the bucket grid.
	if fa.TimeAt(0) != 400*ts.Hour {
		t.Fatalf("first forecast at %v", fa.TimeAt(0))
	}
	for _, p := range fa.Points() {
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			t.Fatalf("non-finite forecast %v", p)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	h, _, _ := coupledPair(t)
	if _, err := Fit(h, Config{OwnLags: 0, Bucket: ts.Hour}, 0, 400*ts.Hour); err == nil {
		t.Fatal("OwnLags=0 accepted")
	}
	if _, err := Fit(h, Config{OwnLags: 2, NeighborLags: -1, Bucket: ts.Hour}, 0, 400*ts.Hour); err == nil {
		t.Fatal("negative NeighborLags accepted")
	}
	if _, err := Fit(h, Config{OwnLags: 2, Bucket: 0}, 0, 400*ts.Hour); err == nil {
		t.Fatal("zero bucket accepted")
	}
	// Too-short window.
	if _, err := Fit(h, DefaultConfig(ts.Hour), 0, 3*ts.Hour); err != ErrTooShort {
		t.Fatalf("short window: %v", err)
	}
}

// TestHybridBeatsIsolatedOnCoupledPair: b = lagged a exactly, so at one-step
// horizon the hybrid model is near-perfect on b (it reads a's last value
// through the edge) while the isolated AR must guess the next random-walk
// step. Rolling-origin evaluation averages 20 one-step forecasts.
func TestHybridBeatsIsolatedOnCoupledPair(t *testing.T) {
	h, _, b := coupledPair(t)
	cfg := DefaultConfig(ts.Hour)
	var hySum, isoSum float64
	n := 0
	for origin := 340; origin < 360; origin++ {
		split := ts.Time(origin) * ts.Hour
		hy, iso, err := Evaluate(h, cfg, 0, split, split+ts.Hour)
		if err != nil {
			t.Fatal(err)
		}
		hySum += hy[b]
		isoSum += iso[b]
		n++
	}
	hyMAE, isoMAE := hySum/float64(n), isoSum/float64(n)
	if hyMAE >= isoMAE {
		t.Fatalf("1-step hybrid MAE %v >= isolated %v on the coupled vertex", hyMAE, isoMAE)
	}
	if hyMAE > 0.5*isoMAE {
		t.Fatalf("hybrid advantage too small: %v vs %v (b is an exact lagged copy)", hyMAE, isoMAE)
	}
}

// TestHybridBeatsIsolatedOnIoT: the roadmap experiment — on a coupled
// production line, graph-aware forecasting beats per-series AR on average.
func TestHybridBeatsIsolatedOnIoT(t *testing.T) {
	cfg := dataset.DefaultIoT()
	cfg.Hours = 24 * 21
	cfg.FaultyMachines = 0 // forecasting experiment, no planted faults
	cfg.Coupling = 0.9
	cfg.CouplingLag = 1
	d := dataset.GenerateIoT(cfg)

	mcfg := DefaultConfig(ts.Hour)
	mcfg.NeighborHops = 3 // sensor → machine → machine → sensor
	split := ts.Time(cfg.Hours-12) * ts.Hour
	end := ts.Time(cfg.Hours) * ts.Hour
	hy, iso, err := Evaluate(d.H, mcfg, 0, split, end)
	if err != nil {
		t.Fatal(err)
	}
	var hySum, isoSum float64
	var n int
	wins := 0
	for v, hv := range hy {
		iv, ok := iso[v]
		if !ok {
			continue
		}
		hySum += hv
		isoSum += iv
		if hv < iv {
			wins++
		}
		n++
	}
	if n == 0 {
		t.Fatal("no evaluated vertices")
	}
	if hySum >= isoSum {
		t.Fatalf("mean hybrid MAE %.3f >= isolated %.3f over %d sensors",
			hySum/float64(n), isoSum/float64(n), n)
	}
	if wins*2 < n {
		t.Fatalf("hybrid wins only %d/%d sensors", wins, n)
	}
}

func TestSolve(t *testing.T) {
	// 2x + y = 5; x - y = 1 → x=2, y=1.
	x, ok := solve([][]float64{{2, 1}, {1, -1}}, []float64{5, 1})
	if !ok || math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("solve=%v ok=%v", x, ok)
	}
	// Singular.
	if _, ok := solve([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); ok {
		t.Fatal("singular solved")
	}
}

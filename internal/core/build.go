package core

import (
	"fmt"

	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// This file implements the <X>ToHyGraph interface (Section 5, Figure 4):
// integrating existing graphs and time series into a HyGraph instance
// without losing structural or temporal information (requirement R1).

// TPGMapping records how temporal-graph elements map into a HyGraph.
type TPGMapping struct {
	VertexOf map[tpg.VID]VID
	EdgeOf   map[tpg.EID]EID
}

// FromTPG imports a temporal property graph: every vertex and edge becomes a
// PG element with the same labels, properties and validity. The import is
// lossless — ToTPG inverts it (round-trip tested).
func FromTPG(g *tpg.Graph) (*HyGraph, TPGMapping) {
	h := New()
	m := TPGMapping{VertexOf: map[tpg.VID]VID{}, EdgeOf: map[tpg.EID]EID{}}
	g.Vertices(func(v *tpg.Vertex) bool {
		id, err := h.AddVertex(v.Valid, v.Labels...)
		if err != nil {
			panic(fmt.Sprintf("core: FromTPG vertex %d: %v", v.ID, err))
		}
		for _, k := range v.PropKeys() {
			h.SetVertexProp(id, k, v.Prop(k))
		}
		m.VertexOf[v.ID] = id
		return true
	})
	g.Edges(func(e *tpg.Edge) bool {
		id, err := h.AddEdge(m.VertexOf[e.From], m.VertexOf[e.To], e.Label, e.Valid)
		if err != nil {
			panic(fmt.Sprintf("core: FromTPG edge %d: %v", e.ID, err))
		}
		for _, k := range e.PropKeys() {
			h.SetEdgeProp(id, k, e.Prop(k))
		}
		m.EdgeOf[e.ID] = id
		return true
	})
	return h, m
}

// FromLPG imports a static property graph, giving every element the provided
// validity interval (Always for atemporal data).
func FromLPG(g *lpg.Graph, valid tpg.Interval) (*HyGraph, map[lpg.VertexID]VID) {
	h := New()
	vmap := map[lpg.VertexID]VID{}
	g.Vertices(func(v *lpg.Vertex) bool {
		id, err := h.AddVertex(valid, v.Labels...)
		if err != nil {
			panic(err)
		}
		for _, k := range v.PropKeys() {
			h.SetVertexProp(id, k, v.Prop(k))
		}
		vmap[v.ID] = id
		return true
	})
	g.Edges(func(e *lpg.Edge) bool {
		id, err := h.AddEdge(vmap[e.From], vmap[e.To], e.Label, valid)
		if err != nil {
			panic(err)
		}
		for _, k := range e.PropKeys() {
			h.SetEdgeProp(id, k, e.Prop(k))
		}
		return true
	})
	return h, vmap
}

// AddSeriesSet imports a set of univariate series as TS vertices carrying
// the given label, returning the new vertex ids in input order.
func (h *HyGraph) AddSeriesSet(label string, series ...*ts.Series) ([]VID, error) {
	out := make([]VID, 0, len(series))
	for _, s := range series {
		id, err := h.AddTSVertexUni(s, label)
		if err != nil {
			return out, err
		}
		out = append(out, id)
	}
	return out, nil
}

// PromoteProperty converts a series-valued property of a PG vertex into a
// dedicated TS vertex linked by a "HAS_SERIES" PG edge, removing the
// property. This moves a series from "supplementary context" (N_TS property)
// to first-class citizen (V_ts) — the central modeling move of the paper.
func (h *HyGraph) PromoteProperty(v VID, key string) (VID, error) {
	vert := h.Vertex(v)
	if vert == nil {
		return 0, ErrNoVertex
	}
	val := vert.Prop(key)
	var m *ts.MultiSeries
	if s, ok := val.AsSeries(); ok {
		var err error
		m, err = ts.Combine(s.Name(), s)
		if err != nil {
			return 0, err
		}
	} else if mm, ok := val.AsMulti(); ok {
		m = mm
	} else {
		return 0, fmt.Errorf("core: property %q of vertex %d is not a series", key, v)
	}
	tsv, err := h.AddTSVertex(m, key)
	if err != nil {
		return 0, err
	}
	if _, err := h.AddEdge(v, tsv, "HAS_SERIES", vert.Valid); err != nil {
		return 0, err
	}
	delete(vert.props, key)
	return tsv, nil
}

// DemoteVertex converts a TS vertex back into a series-valued property of
// the PG vertex that owns it via a "HAS_SERIES" edge — the inverse of
// PromoteProperty, witnessing that both representations are equivalent.
func (h *HyGraph) DemoteVertex(tsv VID, key string) (VID, error) {
	vert := h.Vertex(tsv)
	if vert == nil || vert.Kind != TS {
		return 0, fmt.Errorf("core: vertex %d is not a TS vertex", tsv)
	}
	var owner VID = -1
	for _, e := range h.InEdges(tsv) {
		if e.Label == "HAS_SERIES" {
			owner = e.From
			break
		}
	}
	if owner < 0 {
		return 0, fmt.Errorf("core: TS vertex %d has no HAS_SERIES owner", tsv)
	}
	h.SetVertexProp(owner, key, lpg.MultiVal(vert.Series))
	return owner, nil
}

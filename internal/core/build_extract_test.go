package core

import (
	"math/rand"
	"testing"

	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// randomTPG builds a random temporal graph for round-trip testing.
func randomTPG(seed int64, n int) *tpg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := tpg.NewGraph()
	ids := make([]tpg.VID, n)
	for i := range ids {
		start := ts.Time(rng.Intn(100))
		end := start + ts.Time(1+rng.Intn(1000))
		if rng.Intn(3) == 0 {
			end = ts.MaxTime
		}
		ids[i] = g.MustAddVertex(tpg.Between(start, end), []string{"A", "B", "C"}[rng.Intn(3)])
		g.SetVertexProp(ids[i], "w", lpg.Float(rng.Float64()))
	}
	for e := 0; e < n*2; e++ {
		f := ids[rng.Intn(n)]
		t := ids[rng.Intn(n)]
		iv := tpg.Between(ts.Time(rng.Intn(200)), ts.Time(200+rng.Intn(500)))
		if id, err := g.AddEdge(f, t, "r", iv); err == nil {
			g.SetEdgeProp(id, "x", lpg.Int(int64(rng.Intn(10))))
		}
	}
	return g
}

// TestTPGRoundTrip checks R1 (expressiveness): FromTPG followed by ToTPG
// preserves every element, label, interval and property.
func TestTPGRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomTPG(seed, 20)
		h, _ := FromTPG(g)
		back, _ := h.ToTPG()
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: counts %d/%d vs %d/%d", seed,
				back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		// FromTPG/ToTPG preserve insertion order, so ids correspond 1:1.
		g.Vertices(func(v *tpg.Vertex) bool {
			bv := back.Vertex(tpg.VID(v.ID))
			if bv.Valid != v.Valid {
				t.Fatalf("vertex %d interval %v vs %v", v.ID, bv.Valid, v.Valid)
			}
			if len(bv.Labels) != len(v.Labels) || bv.Labels[0] != v.Labels[0] {
				t.Fatalf("vertex %d labels", v.ID)
			}
			if !bv.Prop("w").Equal(v.Prop("w")) {
				t.Fatalf("vertex %d prop", v.ID)
			}
			return true
		})
		g.Edges(func(e *tpg.Edge) bool {
			be := back.Edge(tpg.EID(e.ID))
			if be.Valid != e.Valid || be.Label != e.Label || be.From != e.From || be.To != e.To {
				t.Fatalf("edge %d mismatch", e.ID)
			}
			if !be.Prop("x").Equal(e.Prop("x")) {
				t.Fatalf("edge %d prop", e.ID)
			}
			return true
		})
	}
}

func TestFromLPG(t *testing.T) {
	g := lpg.NewGraph()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	g.SetVertexProp(a, "x", lpg.Int(1))
	e := g.AddEdge(a, b, "r")
	g.SetEdgeProp(e, "w", lpg.Float(0.5))
	h, vmap := FromLPG(g, tpg.Always)
	if h.NumVertices() != 2 || h.NumEdges() != 1 {
		t.Fatalf("counts: %v", h)
	}
	if got := h.Vertex(vmap[a]).Prop("x"); !got.Equal(lpg.Int(1)) {
		t.Fatalf("prop: %v", got)
	}
}

func TestAddSeriesSet(t *testing.T) {
	h := New()
	ids, err := h.AddSeriesSet("Sensor",
		ts.FromSamples("s1", 0, 1, []float64{1, 2}),
		ts.FromSamples("s2", 0, 1, []float64{3, 4}))
	if err != nil || len(ids) != 2 {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
	for _, id := range ids {
		if h.Vertex(id).Kind != TS || !h.Vertex(id).HasLabel("Sensor") {
			t.Fatal("ts vertex wrong")
		}
	}
}

func TestPromoteDemoteProperty(t *testing.T) {
	h := New()
	v, _ := h.AddVertex(tpg.Always, "Station")
	s := ts.FromSamples("avail", 0, 10, []float64{1, 2, 3})
	h.SetVertexProp(v, "availability", lpg.SeriesVal(s))

	tsv, err := h.PromoteProperty(v, "availability")
	if err != nil {
		t.Fatal(err)
	}
	if h.Vertex(tsv).Kind != TS {
		t.Fatal("promoted vertex not TS")
	}
	if !h.Vertex(v).Prop("availability").IsNull() {
		t.Fatal("property not removed after promotion")
	}
	// Linked by HAS_SERIES.
	out := h.OutEdges(v)
	if len(out) != 1 || out[0].Label != "HAS_SERIES" || out[0].To != tsv {
		t.Fatalf("link edges=%v", out)
	}
	// Demote back.
	owner, err := h.DemoteVertex(tsv, "availability")
	if err != nil || owner != v {
		t.Fatalf("demote: %v %v", owner, err)
	}
	m, ok := h.Vertex(v).Prop("availability").AsMulti()
	if !ok || m.Len() != 3 {
		t.Fatal("demoted property")
	}
	// Errors.
	if _, err := h.PromoteProperty(v, "name"); err == nil {
		t.Fatal("promoting non-series must fail")
	}
	if _, err := h.PromoteProperty(999, "x"); err != ErrNoVertex {
		t.Fatalf("missing vertex: %v", err)
	}
	if _, err := h.DemoteVertex(v, "x"); err == nil {
		t.Fatal("demoting PG vertex must fail")
	}
}

func TestSnapshotAtMixedKinds(t *testing.T) {
	h, ids := fraudInstance(t)
	view := h.SnapshotAt(10 * ts.Hour)
	// All 6 vertices valid at 10h (series span 0..99h).
	if view.Graph.NumVertices() != 6 {
		t.Fatalf("view vertices=%d", view.Graph.NumVertices())
	}
	if view.Graph.NumEdges() != 5 {
		t.Fatalf("view edges=%d", view.Graph.NumEdges())
	}
	// TS vertex carries its series and kind marker.
	sid := view.VertexOf[ids["c1"]]
	v := view.Graph.Vertex(sid)
	if v.Prop(KindPropKey).String() != "ts" {
		t.Fatal("kind marker")
	}
	if _, ok := v.Prop(SeriesPropKey).AsMulti(); !ok {
		t.Fatal("series not attached in view")
	}
	// After the series end, TS elements vanish.
	view = h.SnapshotAt(5000 * ts.Hour)
	tsCount := 0
	view.Graph.Vertices(func(v *lpg.Vertex) bool {
		if v.Prop(KindPropKey).String() == "ts" {
			tsCount++
		}
		return true
	})
	if tsCount != 0 {
		t.Fatalf("expired TS vertices visible: %d", tsCount)
	}
	// Mapping consistency.
	view = h.SnapshotAt(10 * ts.Hour)
	for hv, sv := range view.VertexOf {
		if view.HyV[sv] != hv {
			t.Fatal("mapping not bijective")
		}
	}
}

func TestExtractSeries(t *testing.T) {
	h := New()
	for i := 0; i < 3; i++ {
		v, _ := h.AddVertex(tpg.Between(0, 100), "Station")
		h.SetVertexProp(v, "capacity", lpg.Int(int64(10*(i+1))))
	}
	// One station appears later.
	v, _ := h.AddVertex(tpg.Between(50, 100), "Station")
	h.SetVertexProp(v, "capacity", lpg.Int(100))
	s := h.ExtractSeries("Station", "capacity", ts.AggSum, 0, 100, 25)
	want := []float64{60, 60, 160, 160} // t=0,25,50,75
	if s.Len() != 4 {
		t.Fatalf("len=%d", s.Len())
	}
	for i, w := range want {
		if s.ValueAt(i) != w {
			t.Fatalf("extract[%d]=%v want %v", i, s.ValueAt(i), w)
		}
	}
	if got := h.ExtractSeries("Station", "capacity", ts.AggSum, 0, 100, 0); got.Len() != 0 {
		t.Fatal("zero step")
	}
}

func TestDegreeEvolutionStoresSeriesProp(t *testing.T) {
	h := New()
	a, _ := h.AddVertex(tpg.Always, "V")
	b, _ := h.AddVertex(tpg.Always, "V")
	h.AddEdge(a, b, "e", tpg.Between(10, 20))
	if err := h.DegreeEvolution(0, 30, 5); err != nil {
		t.Fatal(err)
	}
	s, ok := h.Vertex(a).Prop("degree_evolution").AsSeries()
	if !ok {
		t.Fatal("no degree_evolution property")
	}
	if v, _ := s.Lookup(15); v != 1 {
		t.Fatalf("degree at 15 = %v", v)
	}
	if v, _ := s.Lookup(25); v != 0 {
		t.Fatalf("degree at 25 = %v", v)
	}
}

package core

import (
	"math"
	"testing"

	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

func TestHybridMatchFindsBurstyCard(t *testing.T) {
	h, ids := fraudInstance(t)
	// Pattern: user -USES-> card whose balance contains a drain-and-recover
	// shape; the structural and temporal constraints must both hold.
	drain := ts.FromSamples("q", 0, ts.Hour, []float64{1000, 100, 100, 100, 100, 100, 1000})
	p := lpg.NewPattern().
		V("u", "User", nil).
		V("c", "CreditCard", SeriesWhere(SubsequencePred("", drain, 1.0))).
		E("u", "c", "USES", nil)
	ms := h.HybridMatch(10*ts.Hour, p, 0)
	if len(ms) != 1 {
		t.Fatalf("hybrid matches=%d", len(ms))
	}
	if ms[0]["u"] != ids["u1"] || ms[0]["c"] != ids["c1"] {
		t.Fatalf("wrong binding: %v", ms[0])
	}
}

func TestHybridMatchStructuralOnly(t *testing.T) {
	h, _ := fraudInstance(t)
	p := lpg.NewPattern().
		V("u", "User", nil).
		V("c", "CreditCard", nil).
		E("u", "c", "USES", nil)
	ms := h.HybridMatch(10*ts.Hour, p, 0)
	if len(ms) != 2 {
		t.Fatalf("structural matches=%d", len(ms))
	}
}

func TestSeriesWherePGVertexNeverMatches(t *testing.T) {
	h, _ := fraudInstance(t)
	p := lpg.NewPattern().
		V("x", "User", SeriesWhere(func(*ts.MultiSeries) bool { return true }))
	if ms := h.HybridMatch(10*ts.Hour, p, 0); len(ms) != 0 {
		t.Fatalf("PG vertex passed a series predicate: %v", ms)
	}
}

func TestHybridAggregate(t *testing.T) {
	h := New()
	// Two districts, two stations each, each station owning one series.
	for d := 0; d < 2; d++ {
		for s := 0; s < 2; s++ {
			st, _ := h.AddVertex(tpg.Always, "Station")
			h.SetVertexProp(st, "district", lpg.Str([]string{"north", "south"}[d]))
			ser := ts.New("avail")
			for i := 0; i < 48; i++ {
				ser.MustAppend(ts.Time(i)*ts.Hour, float64(10*(d+1)))
			}
			tsv, _ := h.AddTSVertexUni(ser, "Availability")
			h.AddEdge(st, tsv, "HAS_SERIES", tpg.Always)
		}
	}
	out, supers, err := h.HybridAggregate(AggregateSpec{
		GroupKey:  func(v *Vertex) string { return v.Prop("district").String() },
		Bucket:    ts.Day,
		SeriesAgg: ts.AggMean,
		Combine:   ts.AggSum,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(supers) != 2 {
		t.Fatalf("groups=%v", supers)
	}
	// Each group: one PG super-vertex + one TS vertex.
	pv, _ := out.CountByKind(PG)
	tv, _ := out.CountByKind(TS)
	if pv != 2 || tv != 2 {
		t.Fatalf("super counts pg=%d ts=%d", pv, tv)
	}
	// North group series: 2 stations × mean 10 per day bucket = 20.
	north := supers["north"]
	if c, _ := out.Vertex(north).Prop("count").AsInt(); c != 2 {
		t.Fatalf("north count=%d", c)
	}
	var northSeries *ts.Series
	for _, e := range out.OutEdges(north) {
		if e.Label == "HAS_SERIES" {
			northSeries, _ = out.Vertex(e.To).SeriesVar("")
		}
	}
	if northSeries == nil || northSeries.Len() != 2 { // 48h → 2 day buckets
		t.Fatalf("north series=%v", northSeries)
	}
	for _, p := range northSeries.Points() {
		if p.V != 20 {
			t.Fatalf("north bucket=%v want 20", p.V)
		}
	}
	// Errors.
	if _, _, err := h.HybridAggregate(AggregateSpec{Bucket: ts.Day}); err == nil {
		t.Fatal("missing GroupKey accepted")
	}
	if _, _, err := h.HybridAggregate(AggregateSpec{GroupKey: func(*Vertex) string { return "" }}); err == nil {
		t.Fatal("zero bucket accepted")
	}
}

func TestCorrelationEdges(t *testing.T) {
	h := New()
	// s1 and s2 strongly correlated; s3 independent noise-free alternation.
	n := 200
	mk := func(name string, f func(i int) float64) *ts.Series {
		s := ts.New(name)
		for i := 0; i < n; i++ {
			s.MustAppend(ts.Time(i)*ts.Minute, f(i))
		}
		return s
	}
	s1 := mk("s1", func(i int) float64 { return math.Sin(float64(i) / 10) })
	s2 := mk("s2", func(i int) float64 { return 3*math.Sin(float64(i)/10) + 1 })
	s3 := mk("s3", func(i int) float64 { return float64(i%2) * 5 })
	ids, _ := h.AddSeriesSet("Card", s1, s2, s3)
	added, err := h.CorrelationEdges(0.9, ts.Minute, 10)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("similar edges=%d", added)
	}
	var sim *Edge
	h.Edges(func(e *Edge) bool {
		if e.Label == "SIMILAR" {
			sim = e
		}
		return true
	})
	if sim == nil || sim.Kind != TS {
		t.Fatal("SIMILAR edge must be a TS edge (paper: time-varying similarity)")
	}
	if sim.From != ids[0] || sim.To != ids[1] {
		t.Fatalf("similar pair %d-%d", sim.From, sim.To)
	}
	if r, _ := sim.Prop("r").AsFloat(); r < 0.9 {
		t.Fatalf("r=%v", r)
	}
	// The rolling similarity series has content and values within [-1,1].
	rs, _ := sim.SeriesVar("")
	if rs.Empty() {
		t.Fatal("empty similarity series")
	}
	for _, p := range rs.Points() {
		if p.V < -1-1e-9 || p.V > 1+1e-9 {
			t.Fatalf("correlation point %v out of range", p)
		}
	}
}

func TestCorrelatedReachable(t *testing.T) {
	h := New()
	n := 100
	mk := func(f func(i int) float64) *ts.Series {
		s := ts.New("s")
		for i := 0; i < n; i++ {
			s.MustAppend(ts.Time(i), f(i))
		}
		return s
	}
	sine := func(i int) float64 { return math.Sin(float64(i) / 5) }
	anti := func(i int) float64 { return -math.Sin(float64(i) / 5) }
	noise := func(i int) float64 { return float64((i*7)%13) - float64((i*3)%5) }
	a, _ := h.AddTSVertexUni(mk(sine), "S")
	b, _ := h.AddTSVertexUni(mk(sine), "S")
	c, _ := h.AddTSVertexUni(mk(noise), "S")
	d, _ := h.AddTSVertexUni(mk(anti), "S")
	// Chain a-b-c, and a-d.
	h.AddEdge(a, b, "e", tpg.Always)
	h.AddEdge(b, c, "e", tpg.Always)
	h.AddEdge(a, d, "e", tpg.Always)
	// a→b correlated (ρ=1): reachable. b→c uncorrelated: c unreachable.
	if !h.CorrelatedReachable(a, b, 0.9, 1, -1) {
		t.Fatal("a-b should be reachable")
	}
	if h.CorrelatedReachable(a, c, 0.9, 1, -1) {
		t.Fatal("c should be blocked by uncorrelated hop")
	}
	// Anticorrelation counts via |r|.
	if !h.CorrelatedReachable(a, d, 0.9, 1, -1) {
		t.Fatal("anticorrelated edge should pass |r| threshold")
	}
	// Hop bound.
	if h.CorrelatedReachable(a, b, 0.9, 1, 0) {
		t.Fatal("0 hops")
	}
	if !h.CorrelatedReachable(a, a, 0.9, 1, 0) {
		t.Fatal("self reach")
	}
	if h.CorrelatedReachable(99, a, 0.9, 1, -1) {
		t.Fatal("missing vertex")
	}
}

func TestSegmentSnapshots(t *testing.T) {
	// TPG whose activity has two regimes: quiet then busy.
	g := tpg.NewGraph()
	a := g.MustAddVertex(tpg.Always, "V")
	b := g.MustAddVertex(tpg.Always, "V")
	for i := 0; i < 40; i++ {
		g.MustAddEdge(a, b, "e", tpg.Between(ts.Time(500+i), ts.Time(1000)))
	}
	h, _ := FromTPG(g)
	driver := h.ActivitySeries(0, 1000, 10)
	snaps := h.SegmentSnapshots(driver, 2, 0.01)
	if len(snaps) != 2 {
		t.Fatalf("segments=%d", len(snaps))
	}
	// First regime has ~0 active edges; second regime's snapshot shows many.
	e0 := snaps[0].View.Graph.NumEdges()
	e1 := snaps[1].View.Graph.NumEdges()
	if e0 != 0 || e1 < 20 {
		t.Fatalf("snapshot edges %d then %d", e0, e1)
	}
	if snaps[1].Segment.Start < 400 || snaps[1].Segment.Start > 600 {
		t.Fatalf("breakpoint at %v", snaps[1].Segment.Start)
	}
}

func TestAnomalyCommunities(t *testing.T) {
	h := New()
	n := 200
	mk := func(anomalous bool) *ts.Series {
		s := ts.New("s")
		for i := 0; i < n; i++ {
			v := math.Sin(float64(i) / 7)
			if anomalous && i == 150 {
				v += 40
			}
			s.MustAppend(ts.Time(i), v)
		}
		return s
	}
	// Community A: 3 interconnected anomalous cards; community B: 3 normal.
	var as, bs []VID
	for i := 0; i < 3; i++ {
		a, _ := h.AddTSVertexUni(mk(true), "Card")
		as = append(as, a)
		b, _ := h.AddTSVertexUni(mk(false), "Card")
		bs = append(bs, b)
	}
	link := func(ids []VID) {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				h.AddEdge(ids[i], ids[j], "e", tpg.Always)
			}
		}
	}
	link(as)
	link(bs)
	res := h.AnomalyCommunities(100, 20, 6, 1)
	if len(res) != 2 {
		t.Fatalf("communities=%d", len(res))
	}
	// Highest-scoring community is the anomalous one and contains as.
	top := res[0]
	if top.Score <= res[1].Score {
		t.Fatalf("ordering: %v vs %v", top.Score, res[1].Score)
	}
	member := map[VID]bool{}
	for _, m := range top.Members {
		member[m] = true
	}
	for _, a := range as {
		if !member[a] {
			t.Fatalf("anomalous card %d not in top community", a)
		}
	}
	if res[1].Score != 0 {
		t.Fatalf("normal community score=%v", res[1].Score)
	}
}

func TestMotifPatterns(t *testing.T) {
	h := New()
	n := 64
	mk := func(shape func(i int) float64) *ts.Series {
		s := ts.New("s")
		for i := 0; i < n; i++ {
			s.MustAppend(ts.Time(i), shape(i))
		}
		return s
	}
	ramp := func(i int) float64 { return float64(i) }
	vee := func(i int) float64 { return math.Abs(float64(i - n/2)) }
	// 3 ramps, 2 vees.
	r1, _ := h.AddTSVertexUni(mk(ramp), "S")
	r2, _ := h.AddTSVertexUni(mk(ramp), "S")
	r3, _ := h.AddTSVertexUni(mk(ramp), "S")
	v1, _ := h.AddTSVertexUni(mk(vee), "S")
	h.AddTSVertexUni(mk(vee), "S")
	h.AddEdge(r1, r2, "e", tpg.Always)
	h.AddEdge(r1, v1, "e", tpg.Always)
	groups := h.MotifPatterns(8, 4, 2)
	if len(groups) != 2 {
		t.Fatalf("groups=%v", groups)
	}
	// Largest group is the ramps with 1 induced edge (r1-r2).
	if len(groups[0].Members) != 3 || groups[0].InducedEdges != 1 {
		t.Fatalf("ramp group=%+v", groups[0])
	}
	want := map[VID]bool{r1: true, r2: true, r3: true}
	for _, m := range groups[0].Members {
		if !want[m] {
			t.Fatalf("wrong member %d", m)
		}
	}
	if len(groups[1].Members) != 2 || groups[1].InducedEdges != 0 {
		t.Fatalf("vee group=%+v", groups[1])
	}
	// minSize filtering.
	if got := h.MotifPatterns(8, 4, 4); len(got) != 0 {
		t.Fatalf("minSize filter: %v", got)
	}
}

func TestCorrelationEdgesParallelMatchesSerial(t *testing.T) {
	build := func() *HyGraph {
		h := New()
		n := 150
		for k := 0; k < 12; k++ {
			s := ts.New("s")
			phase := float64(k%3) * 2
			for i := 0; i < n; i++ {
				s.MustAppend(ts.Time(i)*ts.Minute, math.Sin(float64(i)/8+phase))
			}
			if _, err := h.AddTSVertexUni(s, "Card"); err != nil {
				t.Fatal(err)
			}
		}
		return h
	}
	hs := build()
	hp := build()
	serial, err := hs.CorrelationEdges(0.9, ts.Minute, 10)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := hp.CorrelationEdgesParallel(0.9, ts.Minute, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel || serial == 0 {
		t.Fatalf("serial=%d parallel=%d", serial, parallel)
	}
	// Same edges in the same order with the same r values.
	var se, pe []*Edge
	hs.Edges(func(e *Edge) bool { se = append(se, e); return true })
	hp.Edges(func(e *Edge) bool { pe = append(pe, e); return true })
	if len(se) != len(pe) {
		t.Fatalf("edge counts %d vs %d", len(se), len(pe))
	}
	for i := range se {
		if se[i].From != pe[i].From || se[i].To != pe[i].To {
			t.Fatalf("edge %d endpoints differ", i)
		}
		rs, _ := se[i].Prop("r").AsFloat()
		rp, _ := pe[i].Prop("r").AsFloat()
		if rs != rp {
			t.Fatalf("edge %d r %v vs %v", i, rs, rp)
		}
	}
	// workers<=0 selects GOMAXPROCS and still works.
	hq := build()
	if _, err := hq.CorrelationEdgesParallel(0.9, ts.Minute, 10, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesEdgeWhereAndLabels(t *testing.T) {
	h, ids := fraudInstance(t)
	// Match TX_FLOW TS edges whose amount series has a burst over 1000.
	p := lpg.NewPattern().
		V("c", "CreditCard", nil).
		V("m", "Merchant", nil).
		E("c", "m", "TX_FLOW", SeriesEdgeWhere(func(m *ts.MultiSeries) bool {
			s, ok := m.Var(m.Vars()[0])
			return ok && s.Max() > 1000
		}))
	ms := h.HybridMatch(10*ts.Hour, p, 0)
	if len(ms) != 2 { // c1's two bursty flows
		t.Fatalf("ts-edge matches=%d", len(ms))
	}
	for _, b := range ms {
		if b["c"] != ids["c1"] {
			t.Fatalf("wrong card: %v", b)
		}
	}
	// Edge label predicate + Subgraphs/NumSubgraphs iteration.
	var anyEdge *Edge
	h.Edges(func(e *Edge) bool { anyEdge = e; return false })
	if !anyEdge.HasLabel(anyEdge.Label) || anyEdge.HasLabel("nope") {
		t.Fatal("edge HasLabel")
	}
	if h.NumSubgraphs() != 0 {
		t.Fatal("fresh instance has subgraphs")
	}
	sg, _ := h.AddSubgraph(tpg.Always, "S")
	count := 0
	h.Subgraphs(func(s *Subgraph) bool { count++; return true })
	if count != 1 || h.NumSubgraphs() != 1 {
		t.Fatalf("subgraph iteration count=%d", count)
	}
	_ = sg
}

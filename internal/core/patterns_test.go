package core

import (
	"math"
	"strings"
	"testing"

	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

func TestMaterializeMotifSubgraphs(t *testing.T) {
	h := New()
	n := 64
	mk := func(shape func(i int) float64) *ts.Series {
		s := ts.New("s")
		for i := 0; i < n; i++ {
			s.MustAppend(ts.Time(i), shape(i))
		}
		return s
	}
	ramp := func(i int) float64 { return float64(i) }
	vee := func(i int) float64 { return math.Abs(float64(i - n/2)) }
	var ramps []VID
	for i := 0; i < 3; i++ {
		id, _ := h.AddTSVertexUni(mk(ramp), "S")
		ramps = append(ramps, id)
	}
	h.AddTSVertexUni(mk(vee), "S")
	h.AddTSVertexUni(mk(vee), "S")

	sids, err := h.MaterializeMotifSubgraphs(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sids) != 2 {
		t.Fatalf("subgraphs=%v", sids)
	}
	// Largest group (the ramps) first; its members match.
	sg := h.Subgraph(sids[0])
	if !sg.HasLabel("Motif") {
		t.Fatal("label")
	}
	if v, _ := sg.Prop("size").AsInt(); v != 3 {
		t.Fatalf("size=%d", v)
	}
	vs, _ := h.MembersAt(sids[0], 10)
	if len(vs) != 3 {
		t.Fatalf("members=%v", vs)
	}
	for i, r := range ramps {
		if vs[i] != r {
			t.Fatalf("member mismatch: %v vs %v", vs, ramps)
		}
	}
	// Membership respects effective validity: outside the series span the
	// subgraph is empty.
	vs, _ = h.MembersAt(sids[0], ts.Time(n)+100)
	if len(vs) != 0 {
		t.Fatalf("members after series end: %v", vs)
	}
}

func TestFrequentPatterns(t *testing.T) {
	h := New()
	// 3× (User)-[USES]->(Card), 2× (Card)-[TX]->(Merchant), giving
	// 2 chains (User)-[USES]->(Card)-[TX]->(Merchant).
	var cards []VID
	for i := 0; i < 3; i++ {
		u, _ := h.AddVertex(tpg.Always, "User")
		c, _ := h.AddVertex(tpg.Always, "Card")
		h.AddEdge(u, c, "USES", tpg.Always)
		cards = append(cards, c)
	}
	m, _ := h.AddVertex(tpg.Always, "Merchant")
	h.AddEdge(cards[0], m, "TX", tpg.Always)
	h.AddEdge(cards[1], m, "TX", tpg.Always)

	ps := h.FrequentPatterns(0, 1)
	if len(ps) == 0 {
		t.Fatal("no patterns")
	}
	// Most frequent is the USES edge pattern (3).
	if ps[0].Pattern != "(User)-[USES]->(Card)" || ps[0].Count != 3 {
		t.Fatalf("top=%+v", ps[0])
	}
	byPattern := map[string]int{}
	for _, p := range ps {
		byPattern[p.Pattern] = p.Count
	}
	if byPattern["(Card)-[TX]->(Merchant)"] != 2 {
		t.Fatalf("TX count=%d", byPattern["(Card)-[TX]->(Merchant)"])
	}
	if byPattern["(User)-[USES]->(Card)-[TX]->(Merchant)"] != 2 {
		t.Fatalf("chain count=%d", byPattern["(User)-[USES]->(Card)-[TX]->(Merchant)"])
	}
	// minSupport filters.
	ps = h.FrequentPatterns(0, 3)
	for _, p := range ps {
		if p.Count < 3 {
			t.Fatalf("minSupport leaked %+v", p)
		}
		if strings.Contains(p.Pattern, "TX") {
			t.Fatalf("infrequent pattern kept: %+v", p)
		}
	}
}

package core

import (
	"testing"

	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// fraudInstance builds the paper's Section-5 running-example model:
// users and merchants as PG vertices, credit cards as TS vertices (balance),
// USES as PG edges, card->merchant transaction flows as TS edges.
func fraudInstance(t *testing.T) (*HyGraph, map[string]VID) {
	t.Helper()
	h := New()
	ids := map[string]VID{}
	addPG := func(name, label string) VID {
		id, err := h.AddVertex(tpg.Always, label)
		if err != nil {
			t.Fatal(err)
		}
		h.SetVertexProp(id, "name", lpg.Str(name))
		ids[name] = id
		return id
	}
	u1 := addPG("u1", "User")
	u2 := addPG("u2", "User")
	m1 := addPG("m1", "Merchant")
	m2 := addPG("m2", "Merchant")

	// Balance series: u1's card is bursty (fraud), u2's is steady.
	bal1 := ts.New("balance")
	bal2 := ts.New("balance")
	for i := 0; i < 100; i++ {
		v1 := 1000.0
		if i >= 50 && i < 55 {
			v1 = 100 // sudden drain
		}
		bal1.MustAppend(ts.Time(i)*ts.Hour, v1)
		bal2.MustAppend(ts.Time(i)*ts.Hour, 500+float64(i%7))
	}
	c1, err := h.AddTSVertexUni(bal1, "CreditCard")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := h.AddTSVertexUni(bal2, "CreditCard")
	if err != nil {
		t.Fatal(err)
	}
	ids["c1"], ids["c2"] = c1, c2

	if _, err := h.AddEdge(u1, c1, "USES", tpg.Always); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddEdge(u2, c2, "USES", tpg.Always); err != nil {
		t.Fatal(err)
	}
	// TS edges: transaction flows card -> merchant.
	flow := func(bursty bool) *ts.Series {
		s := ts.New("amount")
		for i := 0; i < 100; i++ {
			v := 20.0
			if bursty && i >= 50 && i < 55 {
				v = 1500
			}
			s.MustAppend(ts.Time(i)*ts.Hour, v)
		}
		return s
	}
	if _, err := h.AddTSEdgeUni(c1, m1, "TX_FLOW", flow(true)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddTSEdgeUni(c1, m2, "TX_FLOW", flow(true)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddTSEdgeUni(c2, m1, "TX_FLOW", flow(false)); err != nil {
		t.Fatal(err)
	}
	return h, ids
}

func TestModelCounts(t *testing.T) {
	h, _ := fraudInstance(t)
	pv, pe := h.CountByKind(PG)
	tv, te := h.CountByKind(TS)
	if pv != 4 || tv != 2 {
		t.Fatalf("vertices pg=%d ts=%d", pv, tv)
	}
	if pe != 2 || te != 3 {
		t.Fatalf("edges pg=%d ts=%d", pe, te)
	}
	if h.NumVertices() != 6 || h.NumEdges() != 5 {
		t.Fatalf("totals %d/%d", h.NumVertices(), h.NumEdges())
	}
}

func TestTSElementRequiresSeries(t *testing.T) {
	h := New()
	if _, err := h.AddTSVertex(nil, "X"); err != ErrNeedsSeries {
		t.Fatalf("nil series vertex: %v", err)
	}
	a, _ := h.AddVertex(tpg.Always, "A")
	b, _ := h.AddVertex(tpg.Always, "B")
	if _, err := h.AddTSEdge(a, b, "r", nil); err != ErrNeedsSeries {
		t.Fatalf("nil series edge: %v", err)
	}
	if _, err := h.AddTSVertexUni(nil, "X"); err != ErrNeedsSeries {
		t.Fatalf("nil uni series: %v", err)
	}
}

func TestEdgeEndpointValidation(t *testing.T) {
	h := New()
	a, _ := h.AddVertex(tpg.Always, "A")
	if _, err := h.AddEdge(a, 99, "r", tpg.Always); err != ErrNoVertex {
		t.Fatalf("missing endpoint: %v", err)
	}
	if _, err := h.AddVertex(tpg.Between(5, 1)); err != ErrBadInterval {
		t.Fatalf("bad interval: %v", err)
	}
}

func TestEffectiveValidity(t *testing.T) {
	h := New()
	s := ts.FromSamples("s", 100, 10, []float64{1, 2, 3}) // span [100, 120]
	id, _ := h.AddTSVertexUni(s, "TS")
	iv := h.Vertex(id).EffectiveValid()
	if !iv.Contains(100) || !iv.Contains(120) || iv.Contains(121) {
		t.Fatalf("ts validity=%v", iv)
	}
	p, _ := h.AddVertex(tpg.Between(0, 50), "PG")
	if got := h.Vertex(p).EffectiveValid(); got != tpg.Between(0, 50) {
		t.Fatalf("pg validity=%v", got)
	}
	// Empty TS vertex: empty validity.
	e, _ := h.AddTSVertexUni(ts.New("empty"), "TS")
	if got := h.Vertex(e).EffectiveValid(); got.Duration() != 0 {
		t.Fatalf("empty ts validity=%v", got)
	}
}

func TestAdjacency(t *testing.T) {
	h, ids := fraudInstance(t)
	out := h.OutEdges(ids["c1"])
	if len(out) != 2 {
		t.Fatalf("c1 out=%d", len(out))
	}
	for _, e := range out {
		if e.Label != "TX_FLOW" || e.Kind != TS {
			t.Fatalf("edge %v", e)
		}
	}
	in := h.InEdges(ids["c1"])
	if len(in) != 1 || in[0].Label != "USES" {
		t.Fatalf("c1 in=%v", in)
	}
	if h.OutEdges(-1) != nil || h.InEdges(999) != nil {
		t.Fatal("bad ids must yield nil")
	}
}

func TestSeriesAccessors(t *testing.T) {
	h, ids := fraudInstance(t)
	m, ok := h.SeriesOfVertex(ids["c1"])
	if !ok || m.Len() != 100 {
		t.Fatal("series of c1")
	}
	if _, ok := h.SeriesOfVertex(ids["u1"]); ok {
		t.Fatal("PG vertex has no δ")
	}
	s, ok := h.Vertex(ids["c1"]).SeriesVar("")
	if !ok || s.Len() != 100 {
		t.Fatal("first-variable extraction")
	}
	if _, ok := h.Vertex(ids["c1"]).SeriesVar("nope"); ok {
		t.Fatal("missing variable")
	}
	var te *Edge
	h.Edges(func(e *Edge) bool {
		if e.Kind == TS {
			te = e
			return false
		}
		return true
	})
	if m, ok := h.SeriesOfEdge(te.ID); !ok || m.Len() != 100 {
		t.Fatal("series of edge")
	}
}

func TestPropsAndLabels(t *testing.T) {
	h, ids := fraudInstance(t)
	v := h.Vertex(ids["u1"])
	if !v.HasLabel("User") || v.HasLabel("Merchant") {
		t.Fatal("labels")
	}
	if v.Prop("name").String() != "u1" {
		t.Fatal("prop")
	}
	if err := h.SetVertexProp(999, "x", lpg.Int(1)); err != ErrNoVertex {
		t.Fatalf("missing vertex prop: %v", err)
	}
	if err := h.SetEdgeProp(999, "x", lpg.Int(1)); err != ErrNoEdge {
		t.Fatalf("missing edge prop: %v", err)
	}
	if got := h.String(); got == "" {
		t.Fatal("string")
	}
}

func TestSubgraphMembership(t *testing.T) {
	h, ids := fraudInstance(t)
	sg, err := h.AddSubgraph(tpg.Between(0, 1000*ts.Hour), "Cluster")
	if err != nil {
		t.Fatal(err)
	}
	// u1 is a member for the first half, u2 for the whole interval.
	if err := h.AddVertexMember(sg, ids["u1"], tpg.Between(0, 500*ts.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := h.AddVertexMember(sg, ids["u2"], tpg.Always); err != nil {
		t.Fatal(err)
	}
	vs, _ := h.MembersAt(sg, 100*ts.Hour)
	if len(vs) != 2 {
		t.Fatalf("members at 100h: %v", vs)
	}
	vs, _ = h.MembersAt(sg, 700*ts.Hour)
	if len(vs) != 1 || vs[0] != ids["u2"] {
		t.Fatalf("members at 700h: %v", vs)
	}
	// Outside the subgraph validity → nothing (γ only defined within ρ(s)).
	vs, _ = h.MembersAt(sg, 2000*ts.Hour)
	if vs != nil {
		t.Fatalf("members outside validity: %v", vs)
	}
	// Size series.
	sz := h.MemberSizeSeries(sg, 0, 1000*ts.Hour, 250*ts.Hour)
	want := []float64{2, 2, 1, 1}
	for i, w := range want {
		if sz.ValueAt(i) != w {
			t.Fatalf("size[%d]=%v want %v", i, sz.ValueAt(i), w)
		}
	}
}

func TestSubgraphEdgeMembershipPullsEndpoints(t *testing.T) {
	h, ids := fraudInstance(t)
	sg, _ := h.AddSubgraph(tpg.Always, "C")
	var uses EID = -1
	h.Edges(func(e *Edge) bool {
		if e.Label == "USES" && e.From == ids["u1"] {
			uses = e.ID
			return false
		}
		return true
	})
	if err := h.AddEdgeMember(sg, uses, tpg.Between(0, 100)); err != nil {
		t.Fatal(err)
	}
	vs, es := h.MembersAt(sg, 50)
	if len(es) != 1 || es[0] != uses {
		t.Fatalf("edges=%v", es)
	}
	// Both endpoints pulled in (R2 consistency).
	if len(vs) != 2 {
		t.Fatalf("vertices=%v", vs)
	}
	// Errors.
	if err := h.AddEdgeMember(99, uses, tpg.Always); err != ErrNoSubgraph {
		t.Fatalf("missing subgraph: %v", err)
	}
	if err := h.AddEdgeMember(sg, 999, tpg.Always); err != ErrNoEdge {
		t.Fatalf("missing edge: %v", err)
	}
	if err := h.AddVertexMember(sg, 999, tpg.Always); err != ErrNoVertex {
		t.Fatalf("missing vertex: %v", err)
	}
	if err := h.SetSubgraphProp(sg, "state", lpg.Str("suspicious")); err != nil {
		t.Fatal(err)
	}
	if h.Subgraph(sg).Prop("state").String() != "suspicious" {
		t.Fatal("subgraph prop")
	}
}

package core

import (
	"fmt"
	"math"
	"sort"

	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// This file implements the HyGraphToHyGraph interface: the hybrid operators
// of Table 2, each combining one time-series primitive with one graph
// primitive.

// ---------------------------------------------------------------------------
// Q1: hybrid pattern matching (subsequence matching ⊗ subgraph matching)

// SeriesWhere adapts a predicate over a TS element's series into an LPG
// vertex predicate usable in lpg.Pattern against a SnapshotAt view. PG
// vertices never satisfy it.
func SeriesWhere(pred func(*ts.MultiSeries) bool) func(*lpg.Vertex) bool {
	return func(v *lpg.Vertex) bool {
		m, ok := v.Prop(SeriesPropKey).AsMulti()
		return ok && pred(m)
	}
}

// SeriesEdgeWhere is SeriesWhere for TS edges.
func SeriesEdgeWhere(pred func(*ts.MultiSeries) bool) func(*lpg.Edge) bool {
	return func(e *lpg.Edge) bool {
		m, ok := e.Prop(SeriesPropKey).AsMulti()
		return ok && pred(m)
	}
}

// SubsequencePred builds a series predicate that holds when the series'
// named variable contains a window within dist (z-normalized Euclidean) of
// the query shape — the time-series half of hybrid pattern matching.
func SubsequencePred(variable string, query *ts.Series, maxDist float64) func(*ts.MultiSeries) bool {
	return func(m *ts.MultiSeries) bool {
		s, ok := seriesVar(m, variable)
		if !ok {
			return false
		}
		ms := ts.SubsequenceMatches(s, query, 1)
		return len(ms) > 0 && ms[0].Dist <= maxDist
	}
}

// HybridMatch is the paper's Q1 operator: match a structural pattern
// against the instant-t view, where pattern predicates may inspect the time
// series of TS elements (via SeriesWhere / SubsequencePred). It returns the
// bindings translated back to HyGraph vertex ids.
func (h *HyGraph) HybridMatch(t ts.Time, p *lpg.Pattern, limit int) []map[string]VID {
	view := h.SnapshotAt(t)
	ms := view.Graph.MatchPattern(p, limit)
	out := make([]map[string]VID, len(ms))
	for i, m := range ms {
		b := make(map[string]VID, len(m.Vertices))
		for name, sid := range m.Vertices {
			b[name] = view.HyV[sid]
		}
		out[i] = b
	}
	return out
}

// ---------------------------------------------------------------------------
// Q2: hybrid aggregation (downsampling ⊗ graph aggregation)

// AggregateSpec configures HybridAggregate.
type AggregateSpec struct {
	// GroupKey maps each PG vertex to its group; empty-string keys group too.
	GroupKey func(*Vertex) string
	// Bucket is the downsampling bucket width applied to member series.
	Bucket ts.Time
	// SeriesAgg aggregates within a downsampling bucket (default mean).
	SeriesAgg ts.AggFunc
	// Combine merges the downsampled member series point-wise (default sum).
	Combine ts.AggFunc
}

// HybridAggregate is the paper's Q2 operator: group PG vertices into
// super-vertices and merge + downsample the series of TS vertices attached
// to each group's members into one series per group, attached as a TS
// super-vertex. The result is a new, smaller HyGraph — summarizing
// high-frequency data "without losing context".
func (h *HyGraph) HybridAggregate(spec AggregateSpec) (*HyGraph, map[string]VID, error) {
	if spec.GroupKey == nil {
		return nil, nil, fmt.Errorf("core: HybridAggregate requires GroupKey")
	}
	if spec.Bucket <= 0 {
		return nil, nil, fmt.Errorf("core: HybridAggregate requires positive Bucket")
	}
	out := New()
	superOf := map[string]VID{}
	groupOf := map[VID]string{}
	memberSeries := map[string][]*ts.Series{}
	memberCount := map[string]int{}

	h.Vertices(func(v *Vertex) bool {
		if v.Kind != PG {
			return true
		}
		key := spec.GroupKey(v)
		if _, ok := superOf[key]; !ok {
			id, err := out.AddVertex(v.Valid, "_group")
			if err != nil {
				return true
			}
			out.SetVertexProp(id, "key", lpg.Str(key))
			superOf[key] = id
		}
		groupOf[v.ID] = key
		memberCount[key]++
		return true
	})
	// Series owned by a group: TS vertices reachable over one edge from a
	// member PG vertex (either direction).
	h.Edges(func(e *Edge) bool {
		var pgEnd, tsEnd VID = -1, -1
		vf, vt := h.Vertex(e.From), h.Vertex(e.To)
		switch {
		case vf.Kind == PG && vt.Kind == TS:
			pgEnd, tsEnd = e.From, e.To
		case vf.Kind == TS && vt.Kind == PG:
			pgEnd, tsEnd = e.To, e.From
		default:
			return true
		}
		key, ok := groupOf[pgEnd]
		if !ok {
			return true
		}
		if s, got := h.Vertex(tsEnd).SeriesVar(""); got {
			memberSeries[key] = append(memberSeries[key], s)
		}
		return true
	})
	seriesAgg := spec.SeriesAgg
	combine := spec.Combine
	keys := make([]string, 0, len(superOf))
	for k := range superOf {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sv := superOf[key]
		out.SetVertexProp(sv, "count", lpg.Int(int64(memberCount[key])))
		members := memberSeries[key]
		if len(members) == 0 {
			continue
		}
		merged := mergeSeries(key, members, spec.Bucket, seriesAgg, combine)
		tsv, err := out.AddTSVertexUni(merged, "_group_series")
		if err != nil {
			return nil, nil, err
		}
		if _, err := out.AddEdge(sv, tsv, "HAS_SERIES", tpg.Always); err != nil {
			return nil, nil, err
		}
	}
	return out, superOf, nil
}

// mergeSeries downsamples each member onto the shared bucket grid and folds
// the aligned buckets with combine.
func mergeSeries(name string, members []*ts.Series, bucket ts.Time, within, combine ts.AggFunc) *ts.Series {
	perBucket := map[ts.Time][]float64{}
	for _, m := range members {
		for _, p := range m.Resample(bucket, within).Points() {
			perBucket[p.T] = append(perBucket[p.T], p.V)
		}
	}
	times := make([]ts.Time, 0, len(perBucket))
	for t := range perBucket {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := ts.New(name)
	for _, t := range times {
		out.MustAppend(t, combine.Apply(perBucket[t]))
	}
	return out
}

// ---------------------------------------------------------------------------
// Q3: correlation ⊗ reachability

// CorrelationEdges computes pairwise correlations between the (first
// variables of the) series of all TS vertices and materializes a TS edge
// labeled "SIMILAR" for every pair with |r| >= threshold. The edge's series
// is the rolling windowed correlation over time (the paper's time-varying
// similarity between credit cards). Returns the number of edges added.
func (h *HyGraph) CorrelationEdges(threshold float64, bucket ts.Time, window int) (int, error) {
	type entry struct {
		id VID
		s  *ts.Series
	}
	var tsv []entry
	h.Vertices(func(v *Vertex) bool {
		if v.Kind == TS {
			if s, ok := v.SeriesVar(""); ok {
				tsv = append(tsv, entry{v.ID, s})
			}
		}
		return true
	})
	added := 0
	for i := 0; i < len(tsv); i++ {
		for j := i + 1; j < len(tsv); j++ {
			r := ts.Correlation(tsv[i].s, tsv[j].s, bucket)
			if math.IsNaN(r) || math.Abs(r) < threshold {
				continue
			}
			sim := rollingCorrelation(tsv[i].s, tsv[j].s, bucket, window)
			if sim.Empty() {
				// Degenerate windows: fall back to a single global point.
				sim.MustAppend(tsv[i].s.End(), r)
			}
			eid, err := h.AddTSEdgeUni(tsv[i].id, tsv[j].id, "SIMILAR", sim)
			if err != nil {
				return added, err
			}
			h.SetEdgeProp(eid, "r", lpg.Float(r))
			added++
		}
	}
	return added, nil
}

// rollingCorrelation computes Pearson correlation over a sliding window of
// aligned buckets, stamped at each window's end bucket.
func rollingCorrelation(a, b *ts.Series, bucket ts.Time, window int) *ts.Series {
	av, bv, buckets := ts.Align(a, b, bucket, ts.AggMean)
	out := ts.New("corr")
	if window < 2 || len(buckets) < window {
		return out
	}
	for i := window; i <= len(buckets); i++ {
		r := ts.Pearson(av[i-window:i], bv[i-window:i])
		if math.IsNaN(r) {
			continue
		}
		out.Upsert(buckets[i-1], r)
	}
	return out
}

// CorrelatedReachable is the paper's Q3 operator: reachability where an
// edge may only be traversed when the series of its endpoints (for TS
// endpoints) correlate at least minR over the shared bucket grid, enhancing
// reachability with temporal-similarity evidence.
func (h *HyGraph) CorrelatedReachable(from, to VID, minR float64, bucket ts.Time, maxHops int) bool {
	if h.Vertex(from) == nil || h.Vertex(to) == nil {
		return false
	}
	usable := func(e *Edge) bool {
		vf, vt := h.Vertex(e.From), h.Vertex(e.To)
		if vf.Kind != TS || vt.Kind != TS {
			return true // constraint applies to series-bearing endpoints only
		}
		sa, okA := vf.SeriesVar("")
		sb, okB := vt.SeriesVar("")
		if !okA || !okB {
			return false
		}
		r := ts.Correlation(sa, sb, bucket)
		return !math.IsNaN(r) && math.Abs(r) >= minR
	}
	seen := map[VID]bool{from: true}
	frontier := []VID{from}
	for hops := 0; len(frontier) > 0 && (maxHops < 0 || hops < maxHops); hops++ {
		var next []VID
		for _, id := range frontier {
			for _, e := range h.OutEdges(id) {
				if !seen[e.To] && usable(e) {
					if e.To == to {
						return true
					}
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range h.InEdges(id) {
				if !seen[e.From] && usable(e) {
					if e.From == to {
						return true
					}
					seen[e.From] = true
					next = append(next, e.From)
				}
			}
		}
		frontier = next
	}
	return from == to
}

// ---------------------------------------------------------------------------
// Q4: segmentation ⊗ snapshot

// SegmentSnapshot pairs one detected regime of the driver series with the
// graph state at the regime's start.
type SegmentSnapshot struct {
	Segment ts.Segment
	View    *View
}

// SegmentSnapshots is the paper's Q4 operator: segment the driver series
// into at most maxSegments regimes and snapshot the instance at each
// regime's start — "graph snapshots at significant time intervals identified
// through time series segmentation".
func (h *HyGraph) SegmentSnapshots(driver *ts.Series, maxSegments int, minGain float64) []SegmentSnapshot {
	segs := driver.Segmentize(maxSegments, minGain)
	out := make([]SegmentSnapshot, 0, len(segs))
	for _, sg := range segs {
		out = append(out, SegmentSnapshot{Segment: sg, View: h.SnapshotAt(sg.Start)})
	}
	return out
}

// ActivitySeries samples the number of simultaneously valid edges — a
// natural driver series for SegmentSnapshots.
func (h *HyGraph) ActivitySeries(start, end, step ts.Time) *ts.Series {
	s := ts.New("active_edges")
	if step <= 0 {
		return s
	}
	for t := start; t < end; t += step {
		n := 0
		h.Edges(func(e *Edge) bool {
			if e.EffectiveValid().Contains(t) {
				n++
			}
			return true
		})
		s.MustAppend(t, float64(n))
	}
	return s
}

// ---------------------------------------------------------------------------
// D: anomalies ⊗ communities

// CommunityAnomaly scores one community by its members' time-series
// anomalies.
type CommunityAnomaly struct {
	Community int
	Members   []VID
	// Score is the mean of members' max |z|-style anomaly scores; 0 when no
	// member has a series.
	Score float64
	// Anomalous members and their individual scores.
	MemberScore map[VID]float64
}

// AnomalyCommunities is the paper's D operator: detect communities on the
// instant-t view, score each member's series with a rolling z-score
// detector, and aggregate per community — enriching anomaly detection with
// community context. Communities are returned sorted by descending score.
func (h *HyGraph) AnomalyCommunities(t ts.Time, window int, zThreshold float64, seed int64) []CommunityAnomaly {
	view := h.SnapshotAt(t)
	comms := view.Graph.LabelPropagation(50, seed)
	byComm := map[int][]VID{}
	for sid, cm := range comms.Of {
		byComm[cm] = append(byComm[cm], view.HyV[sid])
	}
	out := make([]CommunityAnomaly, 0, len(byComm))
	for cm, members := range byComm {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		ca := CommunityAnomaly{Community: cm, Members: members, MemberScore: map[VID]float64{}}
		var scores []float64
		for _, m := range members {
			v := h.Vertex(m)
			if v.Kind != TS {
				continue
			}
			s, ok := v.SeriesVar("")
			if !ok {
				continue
			}
			best := 0.0
			for _, a := range s.RollingZAnomalies(window, zThreshold) {
				if a.Score > best {
					best = a.Score
				}
			}
			ca.MemberScore[m] = best
			scores = append(scores, best)
		}
		if len(scores) > 0 {
			var sum float64
			for _, s := range scores {
				sum += s
			}
			ca.Score = sum / float64(len(scores))
		}
		out = append(out, ca)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Community < out[j].Community
	})
	return out
}

// ---------------------------------------------------------------------------
// PM: motif mining (sequence motifs ⊗ graph motifs)

// MotifGroup is a set of TS vertices whose series share a symbolic shape
// (SAX word), together with the induced edge count among them — recurring
// sub-structures with common temporal behaviour.
type MotifGroup struct {
	Word         string
	Members      []VID
	InducedEdges int
}

// MotifPatterns is the paper's PM operator: compute SAX words for every TS
// vertex's series, group vertices by word, and report groups with at least
// minSize members plus how densely they are interconnected. Groups are
// ordered by descending size then word.
func (h *HyGraph) MotifPatterns(segments, alphabet, minSize int) []MotifGroup {
	byWord := map[string][]VID{}
	h.Vertices(func(v *Vertex) bool {
		if v.Kind != TS {
			return true
		}
		s, ok := v.SeriesVar("")
		if !ok || s.Len() < segments {
			return true
		}
		w, err := s.SAX(segments, alphabet)
		if err != nil {
			return true
		}
		byWord[w] = append(byWord[w], v.ID)
		return true
	})
	var out []MotifGroup
	for w, members := range byWord {
		if len(members) < minSize {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		set := map[VID]bool{}
		for _, m := range members {
			set[m] = true
		}
		induced := 0
		h.Edges(func(e *Edge) bool {
			if set[e.From] && set[e.To] {
				induced++
			}
			return true
		})
		out = append(out, MotifGroup{Word: w, Members: members, InducedEdges: induced})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Word < out[j].Word
	})
	return out
}

package core

import (
	"sort"

	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// AddSubgraph creates a logical subgraph s ∈ S with validity ρ(s).
func (h *HyGraph) AddSubgraph(valid tpg.Interval, labels ...string) (SID, error) {
	if !valid.Valid() {
		return 0, ErrBadInterval
	}
	h.version++
	s := &Subgraph{
		ID:      SID(len(h.subgraphs)),
		Labels:  append([]string(nil), labels...),
		Valid:   valid,
		props:   map[string]lpg.Value{},
		memberV: map[VID][]tpg.Interval{},
		memberE: map[EID][]tpg.Interval{},
	}
	h.subgraphs = append(h.subgraphs, s)
	return s.ID, nil
}

// Subgraph returns the subgraph or nil.
func (h *HyGraph) Subgraph(id SID) *Subgraph {
	if id < 0 || int(id) >= len(h.subgraphs) {
		return nil
	}
	return h.subgraphs[id]
}

// Subgraphs calls fn for every subgraph in ID order.
func (h *HyGraph) Subgraphs(fn func(*Subgraph) bool) {
	for _, s := range h.subgraphs {
		if !fn(s) {
			return
		}
	}
}

// SetSubgraphProp sets φ(s, key) = val.
func (h *HyGraph) SetSubgraphProp(id SID, key string, val lpg.Value) error {
	s := h.Subgraph(id)
	if s == nil {
		return ErrNoSubgraph
	}
	h.version++
	s.props[key] = val
	return nil
}

// Prop returns φ(s, key).
func (s *Subgraph) Prop(key string) lpg.Value { return s.props[key] }

// HasLabel reports whether λ(s) contains the label.
func (s *Subgraph) HasLabel(label string) bool { return containsStr(s.Labels, label) }

// AddVertexMember records that vertex v belongs to the subgraph during the
// interval (γ membership). Membership is clipped to the subgraph's own
// validity; disjoint intervals are rejected.
func (h *HyGraph) AddVertexMember(sid SID, v VID, during tpg.Interval) error {
	s := h.Subgraph(sid)
	if s == nil {
		return ErrNoSubgraph
	}
	if h.Vertex(v) == nil {
		return ErrNoVertex
	}
	clipped, ok := during.Intersect(s.Valid)
	if !ok {
		return ErrBadInterval
	}
	h.version++
	s.memberV[v] = append(s.memberV[v], clipped)
	return nil
}

// AddEdgeMember records that edge e belongs to the subgraph during the
// interval. Both endpoints become members over the same interval so that
// γ(s,t) always yields a well-formed subgraph (consistency, R2).
func (h *HyGraph) AddEdgeMember(sid SID, eid EID, during tpg.Interval) error {
	s := h.Subgraph(sid)
	if s == nil {
		return ErrNoSubgraph
	}
	e := h.Edge(eid)
	if e == nil {
		return ErrNoEdge
	}
	clipped, ok := during.Intersect(s.Valid)
	if !ok {
		return ErrBadInterval
	}
	h.version++
	s.memberE[eid] = append(s.memberE[eid], clipped)
	if err := h.AddVertexMember(sid, e.From, clipped); err != nil {
		return err
	}
	return h.AddVertexMember(sid, e.To, clipped)
}

// MembersAt evaluates γ(s, t): the vertex and edge sets of the subgraph at
// instant t, in ascending ID order.
func (h *HyGraph) MembersAt(sid SID, t ts.Time) (vs []VID, es []EID) {
	s := h.Subgraph(sid)
	if s == nil || !s.Valid.Contains(t) {
		return nil, nil
	}
	for v, ivs := range s.memberV {
		if anyContains(ivs, t) {
			vs = append(vs, v)
		}
	}
	for e, ivs := range s.memberE {
		if anyContains(ivs, t) {
			es = append(es, e)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
	return vs, es
}

// MemberSizeSeries samples |γ(s,t).V| over [start,end) at the given step —
// the evolution of a cluster's size as a time series, used by the fraud
// pipeline's temporal classification stage.
func (h *HyGraph) MemberSizeSeries(sid SID, start, end, step ts.Time) *ts.Series {
	out := ts.New("members")
	if step <= 0 {
		return out
	}
	for t := start; t < end; t += step {
		vs, _ := h.MembersAt(sid, t)
		out.MustAppend(t, float64(len(vs)))
	}
	return out
}

func anyContains(ivs []tpg.Interval, t ts.Time) bool {
	for _, iv := range ivs {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

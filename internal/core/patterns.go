package core

import (
	"fmt"
	"sort"

	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// This file implements the remaining Section-5 HyGraphToHyGraph operators:
// materializing "logical graph patterns from nodes that exhibit similar
// time-series patterns" as subgraphs, and frequent pattern mining over the
// structural view.

// MaterializeMotifSubgraphs runs MotifPatterns and records each group as a
// logical subgraph labeled "Motif" with the SAX word and member count as
// properties, members valid over each element's effective validity. Returns
// the new subgraph ids in group order.
func (h *HyGraph) MaterializeMotifSubgraphs(segments, alphabet, minSize int) ([]SID, error) {
	groups := h.MotifPatterns(segments, alphabet, minSize)
	out := make([]SID, 0, len(groups))
	for _, g := range groups {
		sid, err := h.AddSubgraph(tpg.Always, "Motif")
		if err != nil {
			return out, err
		}
		h.SetSubgraphProp(sid, "word", lpg.Str(g.Word))
		h.SetSubgraphProp(sid, "size", lpg.Int(int64(len(g.Members))))
		h.SetSubgraphProp(sid, "induced_edges", lpg.Int(int64(g.InducedEdges)))
		for _, m := range g.Members {
			if err := h.AddVertexMember(sid, m, h.Vertex(m).EffectiveValid()); err != nil {
				return out, err
			}
		}
		out = append(out, sid)
	}
	return out, nil
}

// PatternCount is one mined structural pattern with its support.
type PatternCount struct {
	// Pattern renders as "SrcLabel -[edge]-> DstLabel" for paths of length
	// one, or a chained form for longer paths.
	Pattern string
	Count   int
}

// FrequentPatterns mines the instance's structural view at instant t for
// frequent labeled patterns: all single-edge patterns
// (srcLabel)-[edgeLabel]->(dstLabel) and all two-edge chain patterns, kept
// when their support is at least minSupport. Results are ordered by
// descending count then pattern text. This is the paper's PM primitive on
// the graph side — generate candidate subgraphs, test occurrence frequency.
func (h *HyGraph) FrequentPatterns(t ts.Time, minSupport int) []PatternCount {
	view := h.SnapshotAt(t)
	g := view.Graph
	label := func(id lpg.VertexID) string {
		v := g.Vertex(id)
		if v == nil || len(v.Labels) == 0 {
			return "?"
		}
		return v.Labels[0]
	}
	counts := map[string]int{}
	// Single-edge patterns.
	g.Edges(func(e *lpg.Edge) bool {
		key := fmt.Sprintf("(%s)-[%s]->(%s)", label(e.From), e.Label, label(e.To))
		counts[key]++
		return true
	})
	// Two-edge chains (x)-[a]->(y)-[b]->(z).
	g.Vertices(func(v *lpg.Vertex) bool {
		for _, e1 := range g.InEdges(v.ID) {
			for _, e2 := range g.OutEdges(v.ID) {
				if e1.ID == e2.ID {
					continue
				}
				key := fmt.Sprintf("(%s)-[%s]->(%s)-[%s]->(%s)",
					label(e1.From), e1.Label, label(v.ID), e2.Label, label(e2.To))
				counts[key]++
			}
		}
		return true
	})
	var out []PatternCount
	for k, c := range counts {
		if c >= minSupport {
			out = append(out, PatternCount{Pattern: k, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

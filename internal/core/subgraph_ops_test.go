package core

import (
	"math/rand"
	"testing"

	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// setOpFixture builds two subgraphs over three vertices:
//
//	A: v0 ∈ [0,100), v1 ∈ [0,50)
//	B: v1 ∈ [25,75), v2 ∈ [0,100)
func setOpFixture(t *testing.T) (*HyGraph, SID, SID, []VID) {
	t.Helper()
	h := New()
	var vs []VID
	for i := 0; i < 3; i++ {
		v, err := h.AddVertex(tpg.Always, "V")
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	a, _ := h.AddSubgraph(tpg.Between(0, 100), "A")
	b, _ := h.AddSubgraph(tpg.Between(0, 100), "B")
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(h.AddVertexMember(a, vs[0], tpg.Between(0, 100)))
	check(h.AddVertexMember(a, vs[1], tpg.Between(0, 50)))
	check(h.AddVertexMember(b, vs[1], tpg.Between(25, 75)))
	check(h.AddVertexMember(b, vs[2], tpg.Between(0, 100)))
	return h, a, b, vs
}

func members(t *testing.T, h *HyGraph, s SID, at ts.Time) map[VID]bool {
	t.Helper()
	out := map[VID]bool{}
	vs, _ := h.MembersAt(s, at)
	for _, v := range vs {
		out[v] = true
	}
	return out
}

func TestSubgraphUnion(t *testing.T) {
	h, a, b, vs := setOpFixture(t)
	u, err := h.SubgraphUnion(a, b, "U")
	if err != nil {
		t.Fatal(err)
	}
	// t=10: A has v0,v1; B has v2 → union all three.
	got := members(t, h, u, 10)
	if !got[vs[0]] || !got[vs[1]] || !got[vs[2]] {
		t.Fatalf("union@10=%v", got)
	}
	// t=60: A has v0; B has v1,v2.
	got = members(t, h, u, 60)
	if !got[vs[0]] || !got[vs[1]] || !got[vs[2]] {
		t.Fatalf("union@60=%v", got)
	}
	// t=80: v1 in neither (A ended 50, B ended 75).
	got = members(t, h, u, 80)
	if got[vs[1]] || !got[vs[0]] || !got[vs[2]] {
		t.Fatalf("union@80=%v", got)
	}
	// v1's merged membership must be one interval [0,75).
	ivs := h.MemberIntervals(u, vs[1])
	if len(ivs) != 1 || ivs[0] != tpg.Between(0, 75) {
		t.Fatalf("v1 union intervals=%v", ivs)
	}
}

func TestSubgraphIntersect(t *testing.T) {
	h, a, b, vs := setOpFixture(t)
	x, err := h.SubgraphIntersect(a, b, "X")
	if err != nil {
		t.Fatal(err)
	}
	// Only v1 is in both, during [25,50).
	ivs := h.MemberIntervals(x, vs[1])
	if len(ivs) != 1 || ivs[0] != tpg.Between(25, 50) {
		t.Fatalf("v1 intersect intervals=%v", ivs)
	}
	if got := h.MemberIntervals(x, vs[0]); len(got) != 0 {
		t.Fatalf("v0 in intersection: %v", got)
	}
	got := members(t, h, x, 30)
	if len(got) != 1 || !got[vs[1]] {
		t.Fatalf("intersect@30=%v", got)
	}
	if got := members(t, h, x, 60); len(got) != 0 {
		t.Fatalf("intersect@60=%v", got)
	}
}

func TestSubgraphDifference(t *testing.T) {
	h, a, b, vs := setOpFixture(t)
	d, err := h.SubgraphDifference(a, b, "D")
	if err != nil {
		t.Fatal(err)
	}
	// v0: fully kept. v1: [0,50) minus [25,75) = [0,25). v2: never in A.
	if ivs := h.MemberIntervals(d, vs[0]); len(ivs) != 1 || ivs[0] != tpg.Between(0, 100) {
		t.Fatalf("v0 diff=%v", ivs)
	}
	if ivs := h.MemberIntervals(d, vs[1]); len(ivs) != 1 || ivs[0] != tpg.Between(0, 25) {
		t.Fatalf("v1 diff=%v", ivs)
	}
	if ivs := h.MemberIntervals(d, vs[2]); len(ivs) != 0 {
		t.Fatalf("v2 diff=%v", ivs)
	}
}

func TestSubgraphDifferenceSplitsIntervals(t *testing.T) {
	// Cutting the middle out of a membership splits it in two.
	h := New()
	v, _ := h.AddVertex(tpg.Always, "V")
	a, _ := h.AddSubgraph(tpg.Always, "A")
	b, _ := h.AddSubgraph(tpg.Always, "B")
	h.AddVertexMember(a, v, tpg.Between(0, 100))
	h.AddVertexMember(b, v, tpg.Between(40, 60))
	d, err := h.SubgraphDifference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ivs := h.MemberIntervals(d, v)
	if len(ivs) != 2 || ivs[0] != tpg.Between(0, 40) || ivs[1] != tpg.Between(60, 100) {
		t.Fatalf("split diff=%v", ivs)
	}
}

func TestSubgraphOpsErrors(t *testing.T) {
	h, a, _, _ := setOpFixture(t)
	if _, err := h.SubgraphUnion(a, 99); err != ErrNoSubgraph {
		t.Fatalf("union missing: %v", err)
	}
	if _, err := h.SubgraphIntersect(99, a); err != ErrNoSubgraph {
		t.Fatalf("intersect missing: %v", err)
	}
	if _, err := h.SubgraphDifference(a, 99); err != ErrNoSubgraph {
		t.Fatalf("difference missing: %v", err)
	}
	// Disjoint validity.
	s1, _ := h.AddSubgraph(tpg.Between(0, 10))
	s2, _ := h.AddSubgraph(tpg.Between(20, 30))
	if _, err := h.SubgraphIntersect(s1, s2); err == nil {
		t.Fatal("disjoint intersect accepted")
	}
}

func TestMembershipSeries(t *testing.T) {
	h, a, _, vs := setOpFixture(t)
	s := h.MembershipSeries(a, vs[1], 0, 100, 10)
	want := []float64{1, 1, 1, 1, 1, 0, 0, 0, 0, 0} // member during [0,50)
	if s.Len() != len(want) {
		t.Fatalf("len=%d", s.Len())
	}
	for i, w := range want {
		if s.ValueAt(i) != w {
			t.Fatalf("membership[%d]=%v want %v", i, s.ValueAt(i), w)
		}
	}
	if got := h.MembershipSeries(a, vs[1], 0, 100, 0); got.Len() != 0 {
		t.Fatal("zero step")
	}
}

// TestQuickSubgraphAlgebra: for random membership interval sets, the
// materialized set operations agree point-wise with evaluating γ on the
// operands at every sampled instant.
func TestQuickSubgraphAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 40; iter++ {
		h := New()
		nV := 4
		var vs []VID
		for i := 0; i < nV; i++ {
			v, _ := h.AddVertex(tpg.Always, "V")
			vs = append(vs, v)
		}
		a, _ := h.AddSubgraph(tpg.Between(0, 1000), "A")
		b, _ := h.AddSubgraph(tpg.Between(0, 1000), "B")
		addRandom := func(s SID) {
			for _, v := range vs {
				for k := 0; k < rng.Intn(3); k++ {
					lo := ts.Time(rng.Intn(900))
					hi := lo + ts.Time(1+rng.Intn(200))
					if hi > 1000 {
						hi = 1000
					}
					if err := h.AddVertexMember(s, v, tpg.Between(lo, hi)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		addRandom(a)
		addRandom(b)
		u, err := h.SubgraphUnion(a, b)
		if err != nil {
			t.Fatal(err)
		}
		x, err := h.SubgraphIntersect(a, b)
		if err != nil {
			t.Fatal(err)
		}
		d, err := h.SubgraphDifference(a, b)
		if err != nil {
			t.Fatal(err)
		}
		in := func(s SID, v VID, at ts.Time) bool {
			ms, _ := h.MembersAt(s, at)
			for _, m := range ms {
				if m == v {
					return true
				}
			}
			return false
		}
		for probe := 0; probe < 50; probe++ {
			at := ts.Time(rng.Intn(1000))
			for _, v := range vs {
				inA, inB := in(a, v, at), in(b, v, at)
				if got := in(u, v, at); got != (inA || inB) {
					t.Fatalf("iter %d: union(v%d,%d)=%v, A=%v B=%v", iter, v, at, got, inA, inB)
				}
				if got := in(x, v, at); got != (inA && inB) {
					t.Fatalf("iter %d: intersect(v%d,%d)=%v, A=%v B=%v", iter, v, at, got, inA, inB)
				}
				if got := in(d, v, at); got != (inA && !inB) {
					t.Fatalf("iter %d: difference(v%d,%d)=%v, A=%v B=%v", iter, v, at, got, inA, inB)
				}
			}
		}
	}
}

package core

import (
	"fmt"

	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// This file implements the HyGraphTo<X> interface (Section 5, Figure 4):
// extracting graph or time-series instances in their original formats so
// existing pipelines keep working.

// SeriesPropKey is the property under which a TS element's series appears
// when the element is projected into a static LPG view.
const SeriesPropKey = "_series"

// KindPropKey is the property carrying the element kind ("pg"/"ts") in
// projected LPG views.
const KindPropKey = "_kind"

// ToTPG exports the PG part of the instance as a temporal property graph —
// the inverse of FromTPG. TS elements are skipped (they have no ρ in the
// formal model); use SnapshotAt for a combined static view.
func (h *HyGraph) ToTPG() (*tpg.Graph, map[VID]tpg.VID) {
	g := tpg.NewGraph()
	vmap := map[VID]tpg.VID{}
	h.Vertices(func(v *Vertex) bool {
		if v.Kind != PG {
			return true
		}
		id, err := g.AddVertex(v.Valid, v.Labels...)
		if err != nil {
			panic(fmt.Sprintf("core: ToTPG vertex %d: %v", v.ID, err))
		}
		for _, k := range v.PropKeys() {
			g.SetVertexProp(id, k, v.Prop(k))
		}
		vmap[v.ID] = id
		return true
	})
	h.Edges(func(e *Edge) bool {
		if e.Kind != PG {
			return true
		}
		from, okF := vmap[e.From]
		to, okT := vmap[e.To]
		if !okF || !okT {
			return true // PG edge touching a TS vertex has no TPG home
		}
		id, err := g.AddEdge(from, to, e.Label, e.Valid)
		if err != nil {
			return true // interval clipped empty by endpoint validity
		}
		for _, k := range e.PropKeys() {
			g.SetEdgeProp(id, k, e.Prop(k))
		}
		return true
	})
	return g, vmap
}

// View is a static LPG projection of the HyGraph at one instant, with
// mappings back to HyGraph ids. TS elements valid at the instant appear
// with their series attached under SeriesPropKey, so graph-side operators
// (pattern matching, communities, grouping) can read them — this is how
// hybrid operators see both worlds at once.
type View struct {
	At       ts.Time
	Graph    *lpg.Graph
	VertexOf map[VID]lpg.VertexID
	HyV      map[lpg.VertexID]VID
	HyE      map[lpg.EdgeID]EID
}

// SnapshotAt projects the instance to a static LPG at instant t.
func (h *HyGraph) SnapshotAt(t ts.Time) *View {
	view := &View{
		At:       t,
		Graph:    lpg.NewGraph(),
		VertexOf: map[VID]lpg.VertexID{},
		HyV:      map[lpg.VertexID]VID{},
		HyE:      map[lpg.EdgeID]EID{},
	}
	h.Vertices(func(v *Vertex) bool {
		if !v.EffectiveValid().Contains(t) {
			return true
		}
		id := view.Graph.AddVertex(v.Labels...)
		for _, k := range v.PropKeys() {
			view.Graph.SetVertexProp(id, k, v.Prop(k))
		}
		view.Graph.SetVertexProp(id, KindPropKey, lpg.Str(v.Kind.String()))
		if v.Kind == TS {
			view.Graph.SetVertexProp(id, SeriesPropKey, lpg.MultiVal(v.Series))
		}
		view.VertexOf[v.ID] = id
		view.HyV[id] = v.ID
		return true
	})
	h.Edges(func(e *Edge) bool {
		if !e.EffectiveValid().Contains(t) {
			return true
		}
		from, okF := view.VertexOf[e.From]
		to, okT := view.VertexOf[e.To]
		if !okF || !okT {
			return true
		}
		id := view.Graph.AddEdge(from, to, e.Label)
		for _, k := range e.PropKeys() {
			view.Graph.SetEdgeProp(id, k, e.Prop(k))
		}
		view.Graph.SetEdgeProp(id, KindPropKey, lpg.Str(e.Kind.String()))
		if e.Kind == TS {
			view.Graph.SetEdgeProp(id, SeriesPropKey, lpg.MultiVal(e.Series))
		}
		view.HyE[id] = e.ID
		return true
	})
	return view
}

// SeriesOfVertex returns δ(v) for a TS vertex.
func (h *HyGraph) SeriesOfVertex(id VID) (*ts.MultiSeries, bool) {
	v := h.Vertex(id)
	if v == nil || v.Kind != TS {
		return nil, false
	}
	return v.Series, true
}

// SeriesOfEdge returns δ(e) for a TS edge.
func (h *HyGraph) SeriesOfEdge(id EID) (*ts.MultiSeries, bool) {
	e := h.Edge(id)
	if e == nil || e.Kind != TS {
		return nil, false
	}
	return e.Series, true
}

// ExtractSeries samples an aggregate of a numeric property over all
// vertices carrying the label at regular instants, producing a series — the
// paper's arrow (7): LPG → data series via pattern matching returning
// property aggregates.
func (h *HyGraph) ExtractSeries(label, propKey string, agg ts.AggFunc, start, end, step ts.Time) *ts.Series {
	out := ts.New(fmt.Sprintf("%s.%s.%s", label, propKey, agg))
	if step <= 0 {
		return out
	}
	for t := start; t < end; t += step {
		var vals []float64
		h.Vertices(func(v *Vertex) bool {
			if !v.HasLabel(label) || !v.EffectiveValid().Contains(t) {
				return true
			}
			if f, ok := v.Prop(propKey).AsFloat(); ok {
				vals = append(vals, f)
			}
			return true
		})
		out.MustAppend(t, agg.Apply(vals))
	}
	return out
}

// MetricEvolution runs tpg.MetricEvolution over the PG part and stores each
// vertex's metric series back as a series-valued property named key — the
// metricEvolution operator of Section 5, demonstrating that HyGraphTo<X> and
// <X>ToHyGraph are dual: graph metrics become time-series data living in
// the graph.
func (h *HyGraph) MetricEvolution(key string, start, end, step ts.Time,
	metric func(*lpg.Graph) map[lpg.VertexID]float64) error {

	g, vmap := h.ToTPG()
	inverse := make(map[tpg.VID]VID, len(vmap))
	for hv, tv := range vmap {
		inverse[tv] = hv
	}
	evo := g.MetricEvolution(start, end, step, key, metric)
	for tv, series := range evo {
		series.SetName(key)
		if err := h.SetVertexProp(inverse[tv], key, lpg.SeriesVal(series)); err != nil {
			return err
		}
	}
	return nil
}

// DegreeEvolution is MetricEvolution for total degree, stored under
// "degree_evolution".
func (h *HyGraph) DegreeEvolution(start, end, step ts.Time) error {
	return h.MetricEvolution("degree_evolution", start, end, step,
		func(snap *lpg.Graph) map[lpg.VertexID]float64 {
			out := make(map[lpg.VertexID]float64, snap.NumVertices())
			for id, d := range snap.Degrees() {
				out[id] = float64(d)
			}
			return out
		})
}

package core

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

// CorrelationEdgesParallel is CorrelationEdges with the O(n²) pairwise
// correlation fanned out over worker goroutines — the scalability lever of
// requirement R4 for the most expensive hybrid operator. Workers only read;
// edges are materialized serially afterwards in deterministic (i, j) order,
// so the result is identical to the serial operator. workers <= 0 selects
// GOMAXPROCS.
func (h *HyGraph) CorrelationEdgesParallel(threshold float64, bucket ts.Time, window, workers int) (int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type entry struct {
		id VID
		s  *ts.Series
	}
	var tsv []entry
	h.Vertices(func(v *Vertex) bool {
		if v.Kind == TS {
			if s, ok := v.SeriesVar(""); ok {
				tsv = append(tsv, entry{v.ID, s})
			}
		}
		return true
	})
	n := len(tsv)
	type hit struct {
		i, j int
		r    float64
		sim  *ts.Series
	}
	var mu sync.Mutex
	var hits []hit
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []hit
			for i := range rows {
				for j := i + 1; j < n; j++ {
					r := ts.Correlation(tsv[i].s, tsv[j].s, bucket)
					if math.IsNaN(r) || math.Abs(r) < threshold {
						continue
					}
					sim := rollingCorrelation(tsv[i].s, tsv[j].s, bucket, window)
					if sim.Empty() {
						sim.MustAppend(tsv[i].s.End(), r)
					}
					local = append(local, hit{i, j, r, sim})
				}
			}
			mu.Lock()
			hits = append(hits, local...)
			mu.Unlock()
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	// Deterministic edge creation order regardless of scheduling.
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].i != hits[b].i {
			return hits[a].i < hits[b].i
		}
		return hits[a].j < hits[b].j
	})
	added := 0
	for _, ht := range hits {
		eid, err := h.AddTSEdgeUni(tsv[ht.i].id, tsv[ht.j].id, "SIMILAR", ht.sim)
		if err != nil {
			return added, err
		}
		h.SetEdgeProp(eid, "r", lpg.Float(ht.r))
		added++
	}
	return added, nil
}

// Package core implements the paper's primary contribution: the HyGraph
// Model (HGM), a hybrid of temporal property graphs and time series in which
// both are first-class citizens.
//
// An instance is the tuple HG = (V, E, S, TS, η, γ, λ, φ, ρ, δ) of Section 5:
//
//   - V = V_pg ∪ V_ts and E = E_pg ∪ E_ts split vertices and edges into
//     property-graph elements and time-series elements (ElemKind).
//   - δ maps every TS vertex/edge to a (multivariate) time series (Series
//     method / the Series field).
//   - ρ assigns PG elements and subgraphs their validity interval
//     [t_start, t_end), with t_end initialized to max(T) (tpg.Interval).
//   - λ assigns labels; φ assigns property values, which are either static
//     scalars or whole series (lpg.Value with N = N_Σ ∪ N_TS).
//   - S is a set of logical subgraphs whose membership γ varies over time
//     (Subgraph).
//   - η maps edges to their endpoint vertices (From/To fields).
//
// Operators over an instance fall into the paper's three interfaces:
// <X>ToHyGraph (build.go), HyGraphTo<X> (extract.go), and
// HyGraphToHyGraph (hybrid.go).
package core

import (
	"errors"
	"fmt"

	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// VID identifies a HyGraph vertex.
type VID int64

// EID identifies a HyGraph edge.
type EID int64

// SID identifies a logical subgraph.
type SID int64

// ElemKind distinguishes property-graph elements from time-series elements.
type ElemKind int

// Element kinds: the two halves of V = V_pg ∪ V_ts (and likewise for E).
const (
	PG ElemKind = iota // classic property-graph element
	TS                 // element whose identity is a time series (δ applies)
)

// String returns "pg" or "ts".
func (k ElemKind) String() string {
	if k == TS {
		return "ts"
	}
	return "pg"
}

// Vertex is a HyGraph vertex: either a PG vertex (labels, properties,
// validity) or a TS vertex (a time series that semantically represents an
// entity, e.g. the paper's credit-card balance vertices).
type Vertex struct {
	ID     VID
	Kind   ElemKind
	Labels []string
	Valid  tpg.Interval    // ρ for PG vertices; for TS vertices see EffectiveValid
	Series *ts.MultiSeries // δ payload; nil for PG vertices
	props  map[string]lpg.Value
}

// Edge is a HyGraph edge: a PG edge or a TS edge (a relationship whose
// essence is a time series, e.g. transaction flow between a card and a
// merchant, or a time-varying similarity between two cards).
type Edge struct {
	ID     EID
	Kind   ElemKind
	Label  string
	From   VID
	To     VID
	Valid  tpg.Interval
	Series *ts.MultiSeries
	props  map[string]lpg.Value
}

// Subgraph is a logical subgraph s ∈ S: labels, properties, validity ρ(s),
// and time-varying membership γ(s, t).
type Subgraph struct {
	ID     SID
	Labels []string
	Valid  tpg.Interval
	props  map[string]lpg.Value
	// membership intervals per element
	memberV map[VID][]tpg.Interval
	memberE map[EID][]tpg.Interval
}

// HyGraph is one HGM instance. It is not safe for concurrent mutation.
type HyGraph struct {
	vertices  []*Vertex
	edges     []*Edge
	subgraphs []*Subgraph
	outAdj    [][]EID
	inAdj     [][]EID
	// version increments on every mutation; caches (e.g. hyql's snapshot
	// cache) key on it to detect staleness.
	version uint64
}

// Version returns a counter that changes whenever the instance is mutated
// through its API. Code that mutates attached series in place (bypassing
// the API, like the streaming ingestor) must call InvalidateViews.
func (h *HyGraph) Version() uint64 { return h.version }

// InvalidateViews bumps the version, declaring any cached projection of the
// instance stale. Mutators call it internally; out-of-band series writers
// call it explicitly.
func (h *HyGraph) InvalidateViews() { h.version++ }

// Errors returned by HyGraph mutations.
var (
	ErrNoVertex    = errors.New("core: vertex does not exist")
	ErrNoEdge      = errors.New("core: edge does not exist")
	ErrNoSubgraph  = errors.New("core: subgraph does not exist")
	ErrNeedsSeries = errors.New("core: TS element requires a series (δ is total on V_ts ∪ E_ts)")
	ErrBadInterval = errors.New("core: interval start after end")
)

// New returns an empty HyGraph instance.
func New() *HyGraph { return &HyGraph{} }

// NumVertices returns |V|.
func (h *HyGraph) NumVertices() int { return len(h.vertices) }

// NumEdges returns |E|.
func (h *HyGraph) NumEdges() int { return len(h.edges) }

// NumSubgraphs returns |S|.
func (h *HyGraph) NumSubgraphs() int { return len(h.subgraphs) }

// CountByKind returns how many vertices and edges are of the given kind.
func (h *HyGraph) CountByKind(k ElemKind) (vertices, edges int) {
	for _, v := range h.vertices {
		if v.Kind == k {
			vertices++
		}
	}
	for _, e := range h.edges {
		if e.Kind == k {
			edges++
		}
	}
	return vertices, edges
}

// AddVertex adds a PG vertex valid over the given interval.
func (h *HyGraph) AddVertex(valid tpg.Interval, labels ...string) (VID, error) {
	if !valid.Valid() {
		return 0, ErrBadInterval
	}
	return h.addVertex(&Vertex{Kind: PG, Labels: append([]string(nil), labels...), Valid: valid}), nil
}

// AddTSVertex adds a TS vertex carrying the series (δ mapping). Its
// effective validity is the series' time span.
func (h *HyGraph) AddTSVertex(series *ts.MultiSeries, labels ...string) (VID, error) {
	if series == nil {
		return 0, ErrNeedsSeries
	}
	return h.addVertex(&Vertex{Kind: TS, Labels: append([]string(nil), labels...),
		Valid: tpg.Always, Series: series}), nil
}

// AddTSVertexUni wraps a univariate series into a single-variable TS vertex.
func (h *HyGraph) AddTSVertexUni(series *ts.Series, labels ...string) (VID, error) {
	if series == nil {
		return 0, ErrNeedsSeries
	}
	m, err := ts.Combine(series.Name(), series)
	if err != nil {
		return 0, err
	}
	return h.AddTSVertex(m, labels...)
}

func (h *HyGraph) addVertex(v *Vertex) VID {
	h.version++
	v.ID = VID(len(h.vertices))
	v.props = map[string]lpg.Value{}
	h.vertices = append(h.vertices, v)
	h.outAdj = append(h.outAdj, nil)
	h.inAdj = append(h.inAdj, nil)
	return v.ID
}

// AddEdge adds a PG edge.
func (h *HyGraph) AddEdge(from, to VID, label string, valid tpg.Interval) (EID, error) {
	if !valid.Valid() {
		return 0, ErrBadInterval
	}
	return h.addEdge(&Edge{Kind: PG, Label: label, From: from, To: to, Valid: valid})
}

// AddTSEdge adds a TS edge carrying the series (δ mapping), e.g. the
// paper's transaction-flow and card-similarity edges.
func (h *HyGraph) AddTSEdge(from, to VID, label string, series *ts.MultiSeries) (EID, error) {
	if series == nil {
		return 0, ErrNeedsSeries
	}
	return h.addEdge(&Edge{Kind: TS, Label: label, From: from, To: to,
		Valid: tpg.Always, Series: series})
}

// AddTSEdgeUni wraps a univariate series into a TS edge.
func (h *HyGraph) AddTSEdgeUni(from, to VID, label string, series *ts.Series) (EID, error) {
	if series == nil {
		return 0, ErrNeedsSeries
	}
	m, err := ts.Combine(series.Name(), series)
	if err != nil {
		return 0, err
	}
	return h.AddTSEdge(from, to, label, m)
}

func (h *HyGraph) addEdge(e *Edge) (EID, error) {
	if h.Vertex(e.From) == nil || h.Vertex(e.To) == nil {
		return 0, ErrNoVertex
	}
	h.version++
	e.ID = EID(len(h.edges))
	e.props = map[string]lpg.Value{}
	h.edges = append(h.edges, e)
	h.outAdj[e.From] = append(h.outAdj[e.From], e.ID)
	h.inAdj[e.To] = append(h.inAdj[e.To], e.ID)
	return e.ID, nil
}

// Vertex returns the vertex or nil.
func (h *HyGraph) Vertex(id VID) *Vertex {
	if id < 0 || int(id) >= len(h.vertices) {
		return nil
	}
	return h.vertices[id]
}

// Edge returns the edge or nil.
func (h *HyGraph) Edge(id EID) *Edge {
	if id < 0 || int(id) >= len(h.edges) {
		return nil
	}
	return h.edges[id]
}

// Vertices calls fn for every vertex in ID order; returning false stops.
func (h *HyGraph) Vertices(fn func(*Vertex) bool) {
	for _, v := range h.vertices {
		if !fn(v) {
			return
		}
	}
}

// Edges calls fn for every edge in ID order; returning false stops.
func (h *HyGraph) Edges(fn func(*Edge) bool) {
	for _, e := range h.edges {
		if !fn(e) {
			return
		}
	}
}

// OutEdges returns all outgoing edges of a vertex.
func (h *HyGraph) OutEdges(id VID) []*Edge {
	if id < 0 || int(id) >= len(h.outAdj) {
		return nil
	}
	out := make([]*Edge, 0, len(h.outAdj[id]))
	for _, eid := range h.outAdj[id] {
		out = append(out, h.edges[eid])
	}
	return out
}

// InEdges returns all incoming edges of a vertex.
func (h *HyGraph) InEdges(id VID) []*Edge {
	if id < 0 || int(id) >= len(h.inAdj) {
		return nil
	}
	out := make([]*Edge, 0, len(h.inAdj[id]))
	for _, eid := range h.inAdj[id] {
		out = append(out, h.edges[eid])
	}
	return out
}

// SetVertexProp sets φ(v, key) = val.
func (h *HyGraph) SetVertexProp(id VID, key string, val lpg.Value) error {
	v := h.Vertex(id)
	if v == nil {
		return ErrNoVertex
	}
	h.version++
	v.props[key] = val
	return nil
}

// SetEdgeProp sets φ(e, key) = val.
func (h *HyGraph) SetEdgeProp(id EID, key string, val lpg.Value) error {
	e := h.Edge(id)
	if e == nil {
		return ErrNoEdge
	}
	h.version++
	e.props[key] = val
	return nil
}

// Prop returns φ(v, key) (Null if absent).
func (v *Vertex) Prop(key string) lpg.Value { return v.props[key] }

// PropKeys returns the vertex's property keys sorted.
func (v *Vertex) PropKeys() []string { return sortedKeys(v.props) }

// HasLabel reports whether λ(v) contains the label.
func (v *Vertex) HasLabel(label string) bool { return containsStr(v.Labels, label) }

// Prop returns φ(e, key) (Null if absent).
func (e *Edge) Prop(key string) lpg.Value { return e.props[key] }

// PropKeys returns the edge's property keys sorted.
func (e *Edge) PropKeys() []string { return sortedKeys(e.props) }

// HasLabel reports whether the edge's label equals label.
func (e *Edge) HasLabel(label string) bool { return e.Label == label }

// EffectiveValid returns ρ for PG vertices, and the series time span for TS
// vertices (a TS element "exists" while it has observations).
func (v *Vertex) EffectiveValid() tpg.Interval {
	if v.Kind == TS && v.Series != nil {
		if v.Series.Len() == 0 {
			return tpg.Interval{}
		}
		return tpg.Between(v.Series.Start(), v.Series.End()+1)
	}
	return v.Valid
}

// EffectiveValid is the edge analogue of Vertex.EffectiveValid.
func (e *Edge) EffectiveValid() tpg.Interval {
	if e.Kind == TS && e.Series != nil {
		if e.Series.Len() == 0 {
			return tpg.Interval{}
		}
		return tpg.Between(e.Series.Start(), e.Series.End()+1)
	}
	return e.Valid
}

// SeriesVar extracts one variable of a TS element's series as a univariate
// series; for single-variable elements pass "" to take the first variable.
func (v *Vertex) SeriesVar(name string) (*ts.Series, bool) {
	return seriesVar(v.Series, name)
}

// SeriesVar extracts one variable of a TS edge's series.
func (e *Edge) SeriesVar(name string) (*ts.Series, bool) {
	return seriesVar(e.Series, name)
}

func seriesVar(m *ts.MultiSeries, name string) (*ts.Series, bool) {
	if m == nil {
		return nil, false
	}
	if name == "" {
		vars := m.Vars()
		if len(vars) == 0 {
			return nil, false
		}
		name = vars[0]
	}
	return m.Var(name)
}

func sortedKeys(m map[string]lpg.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// String renders a compact summary of the instance.
func (h *HyGraph) String() string {
	pv, pe := h.CountByKind(PG)
	tv, te := h.CountByKind(TS)
	return fmt.Sprintf("HyGraph(|Vpg|=%d, |Vts|=%d, |Epg|=%d, |Ets|=%d, |S|=%d)",
		pv, tv, pe, te, len(h.subgraphs))
}

package core

import (
	"fmt"
	"sort"

	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// Binary operations on logical subgraphs, in the spirit of Gradoop's binary
// graph operators but over time-varying membership: the result subgraph's
// γ is the point-wise union / intersection / difference of the operands' γ.
// All operate on membership intervals directly — no sampling.

// SubgraphUnion creates a new subgraph whose membership at every instant is
// γ(a,t) ∪ γ(b,t). Its validity is the union-hull of the operands'.
func (h *HyGraph) SubgraphUnion(a, b SID, labels ...string) (SID, error) {
	sa, sb := h.Subgraph(a), h.Subgraph(b)
	if sa == nil || sb == nil {
		return 0, ErrNoSubgraph
	}
	valid := hull(sa.Valid, sb.Valid)
	out, err := h.AddSubgraph(valid, labels...)
	if err != nil {
		return 0, err
	}
	s := h.Subgraph(out)
	for v, ivs := range sa.memberV {
		s.memberV[v] = normalizeIntervals(append(append([]tpg.Interval(nil), ivs...), sb.memberV[v]...))
	}
	for v, ivs := range sb.memberV {
		if _, done := sa.memberV[v]; !done {
			s.memberV[v] = normalizeIntervals(append([]tpg.Interval(nil), ivs...))
		}
	}
	for e, ivs := range sa.memberE {
		s.memberE[e] = normalizeIntervals(append(append([]tpg.Interval(nil), ivs...), sb.memberE[e]...))
	}
	for e, ivs := range sb.memberE {
		if _, done := sa.memberE[e]; !done {
			s.memberE[e] = normalizeIntervals(append([]tpg.Interval(nil), ivs...))
		}
	}
	return out, nil
}

// SubgraphIntersect creates a new subgraph with membership γ(a,t) ∩ γ(b,t).
func (h *HyGraph) SubgraphIntersect(a, b SID, labels ...string) (SID, error) {
	sa, sb := h.Subgraph(a), h.Subgraph(b)
	if sa == nil || sb == nil {
		return 0, ErrNoSubgraph
	}
	valid, ok := sa.Valid.Intersect(sb.Valid)
	if !ok {
		return 0, fmt.Errorf("core: subgraphs %d and %d have disjoint validity", a, b)
	}
	out, err := h.AddSubgraph(valid, labels...)
	if err != nil {
		return 0, err
	}
	s := h.Subgraph(out)
	for v, ivs := range sa.memberV {
		if other, ok := sb.memberV[v]; ok {
			if x := intersectSets(ivs, other); len(x) > 0 {
				s.memberV[v] = x
			}
		}
	}
	for e, ivs := range sa.memberE {
		if other, ok := sb.memberE[e]; ok {
			if x := intersectSets(ivs, other); len(x) > 0 {
				s.memberE[e] = x
			}
		}
	}
	return out, nil
}

// SubgraphDifference creates a new subgraph with membership γ(a,t) \ γ(b,t).
func (h *HyGraph) SubgraphDifference(a, b SID, labels ...string) (SID, error) {
	sa, sb := h.Subgraph(a), h.Subgraph(b)
	if sa == nil || sb == nil {
		return 0, ErrNoSubgraph
	}
	out, err := h.AddSubgraph(sa.Valid, labels...)
	if err != nil {
		return 0, err
	}
	s := h.Subgraph(out)
	for v, ivs := range sa.memberV {
		if x := subtractSets(ivs, sb.memberV[v]); len(x) > 0 {
			s.memberV[v] = x
		}
	}
	for e, ivs := range sa.memberE {
		if x := subtractSets(ivs, sb.memberE[e]); len(x) > 0 {
			s.memberE[e] = x
		}
	}
	return out, nil
}

// hull returns the smallest interval covering both inputs.
func hull(a, b tpg.Interval) tpg.Interval {
	lo, hi := a.Start, a.End
	if b.Start < lo {
		lo = b.Start
	}
	if b.End > hi {
		hi = b.End
	}
	return tpg.Between(lo, hi)
}

// normalizeIntervals sorts and merges overlapping/adjacent intervals.
func normalizeIntervals(ivs []tpg.Interval) []tpg.Interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	out := []tpg.Interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End { // overlap or adjacency merges
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// intersectSets returns the point-wise intersection of two interval sets.
func intersectSets(a, b []tpg.Interval) []tpg.Interval {
	a = normalizeIntervals(append([]tpg.Interval(nil), a...))
	b = normalizeIntervals(append([]tpg.Interval(nil), b...))
	var out []tpg.Interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if x, ok := a[i].Intersect(b[j]); ok {
			out = append(out, x)
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// subtractSets returns a \ b point-wise.
func subtractSets(a, b []tpg.Interval) []tpg.Interval {
	a = normalizeIntervals(append([]tpg.Interval(nil), a...))
	b = normalizeIntervals(append([]tpg.Interval(nil), b...))
	var out []tpg.Interval
	for _, iv := range a {
		rem := []tpg.Interval{iv}
		for _, cut := range b {
			var next []tpg.Interval
			for _, r := range rem {
				if !r.Overlaps(cut) {
					next = append(next, r)
					continue
				}
				if r.Start < cut.Start {
					next = append(next, tpg.Between(r.Start, cut.Start))
				}
				if cut.End < r.End {
					next = append(next, tpg.Between(cut.End, r.End))
				}
			}
			rem = next
		}
		out = append(out, rem...)
	}
	return normalizeIntervals(out)
}

// MemberIntervals returns the normalized membership intervals of a vertex in
// a subgraph (empty when not a member).
func (h *HyGraph) MemberIntervals(sid SID, v VID) []tpg.Interval {
	s := h.Subgraph(sid)
	if s == nil {
		return nil
	}
	return normalizeIntervals(append([]tpg.Interval(nil), s.memberV[v]...))
}

// MembershipSeries samples whether v belongs to the subgraph over
// [start, end) as a 0/1 step series — membership history as data, queryable
// like any other series.
func (h *HyGraph) MembershipSeries(sid SID, v VID, start, end, step ts.Time) *ts.Series {
	out := ts.New(fmt.Sprintf("member_s%d_v%d", sid, v))
	if step <= 0 {
		return out
	}
	for t := start; t < end; t += step {
		val := 0.0
		vs, _ := h.MembersAt(sid, t)
		for _, m := range vs {
			if m == v {
				val = 1
				break
			}
		}
		out.MustAppend(t, val)
	}
	return out
}

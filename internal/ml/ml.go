// Package ml implements the classification and clustering primitives the
// paper's roadmap assigns to HyGraph-and-AI (Table 2, rows C1 and C2):
// k-means, k-nearest-neighbors, logistic regression, and the evaluation
// metrics to score them against planted ground truth.
package ml

import (
	"math"
	"math/rand"
	"sort"
)

// Euclidean returns the Euclidean distance between two vectors.
func Euclidean(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

// KMeansResult is the output of KMeans.
type KMeansResult struct {
	Assign    []int       // cluster per row
	Centroids [][]float64 // k centroids
	Inertia   float64     // total within-cluster squared distance
	Iters     int
}

// KMeans clusters rows into k clusters with Lloyd's algorithm and k-means++
// seeding. Deterministic for a given seed.
func KMeans(rows [][]float64, k int, maxIter int, seed int64) KMeansResult {
	n := len(rows)
	if n == 0 || k <= 0 {
		return KMeansResult{}
	}
	if k > n {
		k = n
	}
	d := len(rows[0])
	rng := rand.New(rand.NewSource(seed))
	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), rows[rng.Intn(n)]...))
	dist2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, r := range rows {
			best := math.Inf(1)
			for _, c := range centroids {
				if dd := sq(Euclidean(r, c)); dd < best {
					best = dd
				}
			}
			dist2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), rows[rng.Intn(n)]...))
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, dd := range dist2 {
			acc += dd
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), rows[pick]...))
	}
	assign := make([]int, n)
	res := KMeansResult{Assign: assign, Centroids: centroids}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, r := range rows {
			best, bi := math.Inf(1), 0
			for ci, c := range centroids {
				if dd := Euclidean(r, c); dd < best {
					best = dd
					bi = ci
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		for ci := range centroids {
			for j := 0; j < d; j++ {
				centroids[ci][j] = 0
			}
		}
		for i, r := range rows {
			ci := assign[i]
			counts[ci]++
			for j := 0; j < d; j++ {
				centroids[ci][j] += r[j]
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				// Re-seed an empty cluster at the farthest point.
				far, fi := -1.0, 0
				for i, r := range rows {
					if dd := Euclidean(r, centroids[assign[i]]); dd > far {
						far = dd
						fi = i
					}
				}
				copy(centroids[ci], rows[fi])
				continue
			}
			inv := 1 / float64(counts[ci])
			for j := 0; j < d; j++ {
				centroids[ci][j] *= inv
			}
		}
		res.Iters = iter + 1
		if !changed {
			break
		}
	}
	res.Inertia = 0
	for i, r := range rows {
		res.Inertia += sq(Euclidean(r, centroids[assign[i]]))
	}
	return res
}

func sq(x float64) float64 { return x * x }

// Silhouette returns the mean silhouette coefficient of an assignment, a
// clustering quality score in [-1, 1].
func Silhouette(rows [][]float64, assign []int) float64 {
	n := len(rows)
	if n < 2 {
		return 0
	}
	var total float64
	counted := 0
	for i := range rows {
		var a, b float64
		aCount := 0
		bBest := math.Inf(1)
		byCluster := map[int][]float64{}
		for j := range rows {
			if j == i {
				continue
			}
			d := Euclidean(rows[i], rows[j])
			byCluster[assign[j]] = append(byCluster[assign[j]], d)
		}
		for cl, ds := range byCluster {
			m := mean(ds)
			if cl == assign[i] {
				a = m
				aCount = len(ds)
			} else if m < bBest {
				bBest = m
			}
		}
		if aCount == 0 || math.IsInf(bBest, 1) {
			continue
		}
		b = bBest
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// KNN is a k-nearest-neighbors classifier over dense vectors.
type KNN struct {
	K int
	X [][]float64
	Y []int
}

// NewKNN builds a classifier from training rows and integer labels.
func NewKNN(k int, x [][]float64, y []int) *KNN { return &KNN{K: k, X: x, Y: y} }

// Predict returns the majority label among the k nearest training rows
// (ties break toward the smaller label).
func (m *KNN) Predict(row []float64) int {
	type nd struct {
		d float64
		y int
	}
	ns := make([]nd, len(m.X))
	for i, x := range m.X {
		ns[i] = nd{Euclidean(row, x), m.Y[i]}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].d < ns[j].d })
	k := m.K
	if k > len(ns) {
		k = len(ns)
	}
	votes := map[int]int{}
	for _, n := range ns[:k] {
		votes[n.y]++
	}
	best, bestC := 0, -1
	for y, c := range votes {
		if c > bestC || (c == bestC && y < best) {
			best, bestC = y, c
		}
	}
	return best
}

// LogReg is a binary logistic regression classifier trained with SGD.
type LogReg struct {
	W    []float64
	Bias float64
}

// TrainLogReg fits binary labels (0/1) with lr learning rate, l2
// regularization and the given epochs. Deterministic for a seed.
func TrainLogReg(x [][]float64, y []int, lr, l2 float64, epochs int, seed int64) *LogReg {
	if len(x) == 0 {
		return &LogReg{}
	}
	d := len(x[0])
	m := &LogReg{W: make([]float64, d)}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			p := m.Prob(x[i])
			g := p - float64(y[i])
			for j := 0; j < d; j++ {
				m.W[j] -= lr * (g*x[i][j] + l2*m.W[j])
			}
			m.Bias -= lr * g
		}
	}
	return m
}

// Prob returns P(y=1 | row).
func (m *LogReg) Prob(row []float64) float64 {
	z := m.Bias
	for j, w := range m.W {
		if j < len(row) {
			z += w * row[j]
		}
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict thresholds Prob at 0.5.
func (m *LogReg) Predict(row []float64) int {
	if m.Prob(row) >= 0.5 {
		return 1
	}
	return 0
}

// BinaryMetrics holds precision/recall/F1 for the positive class.
type BinaryMetrics struct {
	TP, FP, TN, FN int
}

// Evaluate compares predictions against truth (both 0/1).
func Evaluate(pred, truth []int) BinaryMetrics {
	var m BinaryMetrics
	for i := range pred {
		switch {
		case pred[i] == 1 && truth[i] == 1:
			m.TP++
		case pred[i] == 1 && truth[i] == 0:
			m.FP++
		case pred[i] == 0 && truth[i] == 0:
			m.TN++
		default:
			m.FN++
		}
	}
	return m
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (m BinaryMetrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (m BinaryMetrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m BinaryMetrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total.
func (m BinaryMetrics) Accuracy() float64 {
	total := m.TP + m.FP + m.TN + m.FN
	if total == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(total)
}

// AdjustedRandIndex scores a clustering against ground-truth classes;
// 1 is perfect agreement, ~0 is random.
func AdjustedRandIndex(assign, truth []int) float64 {
	n := len(assign)
	if n < 2 {
		return 0
	}
	cont := map[[2]int]int{}
	aCount := map[int]int{}
	bCount := map[int]int{}
	for i := 0; i < n; i++ {
		cont[[2]int{assign[i], truth[i]}]++
		aCount[assign[i]]++
		bCount[truth[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumC, sumA, sumB float64
	for _, c := range cont {
		sumC += choose2(c) //hyvet:allow maporderfold choose2 of integer counts is an exact float64; adding exact integers is order-free
	}
	for _, c := range aCount {
		sumA += choose2(c) //hyvet:allow maporderfold choose2 of integer counts is an exact float64; adding exact integers is order-free
	}
	for _, c := range bCount {
		sumB += choose2(c) //hyvet:allow maporderfold choose2 of integer counts is an exact float64; adding exact integers is order-free
	}
	total := choose2(n)
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 0
	}
	return (sumC - expected) / (maxIdx - expected)
}

package ml

import (
	"math"
	"math/rand"
	"testing"
)

// blobs generates k Gaussian blobs of size per, spaced far apart, returning
// rows and true labels.
func blobs(k, per int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var rows [][]float64
	var labels []int
	for c := 0; c < k; c++ {
		cx, cy := float64(c*20), float64(c*-10)
		for i := 0; i < per; i++ {
			rows = append(rows, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
			labels = append(labels, c)
		}
	}
	return rows, labels
}

func TestKMeansRecoverBlobs(t *testing.T) {
	rows, truth := blobs(3, 30, 1)
	res := KMeans(rows, 3, 100, 1)
	if ari := AdjustedRandIndex(res.Assign, truth); ari < 0.95 {
		t.Fatalf("ARI=%v", ari)
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia=%v", res.Inertia)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids=%d", len(res.Centroids))
	}
}

func TestKMeansDegenerate(t *testing.T) {
	if res := KMeans(nil, 3, 10, 1); res.Assign != nil {
		t.Fatal("empty input")
	}
	rows := [][]float64{{1, 1}, {2, 2}}
	res := KMeans(rows, 5, 10, 1) // k > n clamps
	if len(res.Centroids) != 2 {
		t.Fatalf("clamped k=%d", len(res.Centroids))
	}
	// Identical points.
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	res = KMeans(same, 2, 10, 1)
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia=%v", res.Inertia)
	}
}

func TestSilhouetteOrdering(t *testing.T) {
	rows, truth := blobs(2, 20, 2)
	good := Silhouette(rows, truth)
	bad := make([]int, len(truth))
	for i := range bad {
		bad[i] = i % 2 // random-ish split across blobs
	}
	if good <= Silhouette(rows, bad) {
		t.Fatalf("good %v <= bad %v", good, Silhouette(rows, bad))
	}
	if good < 0.7 {
		t.Fatalf("well-separated blobs silhouette=%v", good)
	}
}

func TestKNN(t *testing.T) {
	rows, labels := blobs(2, 25, 3)
	knn := NewKNN(5, rows, labels)
	if got := knn.Predict([]float64{0, 0}); got != 0 {
		t.Fatalf("predict near blob0=%d", got)
	}
	if got := knn.Predict([]float64{20, -10}); got != 1 {
		t.Fatalf("predict near blob1=%d", got)
	}
	// k larger than dataset still works.
	small := NewKNN(100, rows[:3], labels[:3])
	small.Predict([]float64{0, 0})
}

func TestLogRegSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64()}
		label := 0
		if v[0]+v[1] > 0.5 {
			label = 1
		}
		x = append(x, v)
		y = append(y, label)
	}
	m := TrainLogReg(x, y, 0.1, 1e-4, 50, 1)
	pred := make([]int, len(x))
	for i := range x {
		pred[i] = m.Predict(x[i])
	}
	metrics := Evaluate(pred, y)
	if metrics.Accuracy() < 0.95 {
		t.Fatalf("accuracy=%v", metrics.Accuracy())
	}
	if m.Prob([]float64{5, 5}) < 0.99 {
		t.Fatalf("deep positive prob=%v", m.Prob([]float64{5, 5}))
	}
	if m.Prob([]float64{-5, -5}) > 0.01 {
		t.Fatalf("deep negative prob=%v", m.Prob([]float64{-5, -5}))
	}
}

func TestBinaryMetrics(t *testing.T) {
	pred := []int{1, 1, 0, 0, 1}
	truth := []int{1, 0, 0, 1, 1}
	m := Evaluate(pred, truth)
	if m.TP != 2 || m.FP != 1 || m.TN != 1 || m.FN != 1 {
		t.Fatalf("%+v", m)
	}
	if math.Abs(m.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("precision=%v", m.Precision())
	}
	if math.Abs(m.Recall()-2.0/3) > 1e-12 {
		t.Fatalf("recall=%v", m.Recall())
	}
	if math.Abs(m.F1()-2.0/3) > 1e-12 {
		t.Fatalf("f1=%v", m.F1())
	}
	if math.Abs(m.Accuracy()-0.6) > 1e-12 {
		t.Fatalf("accuracy=%v", m.Accuracy())
	}
	var zero BinaryMetrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Fatal("zero metrics must not NaN")
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 1}
	if ari := AdjustedRandIndex(truth, truth); math.Abs(ari-1) > 1e-12 {
		t.Fatalf("perfect ARI=%v", ari)
	}
	// Permuted labels still perfect.
	perm := []int{5, 5, 5, 9, 9, 9}
	if ari := AdjustedRandIndex(perm, truth); math.Abs(ari-1) > 1e-12 {
		t.Fatalf("permuted ARI=%v", ari)
	}
	// All-in-one vs split is 0 (max == expected edge case handled).
	one := []int{0, 0, 0, 0, 0, 0}
	if ari := AdjustedRandIndex(one, truth); math.Abs(ari) > 1e-9 {
		t.Fatalf("degenerate ARI=%v", ari)
	}
}

func TestEuclidean(t *testing.T) {
	if d := Euclidean([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("d=%v", d)
	}
}

package tpg

import (
	"errors"
	"fmt"

	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

// VID identifies a temporal vertex.
type VID int64

// EID identifies a temporal edge.
type EID int64

// Vertex is a temporal property graph vertex: labels, typed properties and a
// validity interval.
type Vertex struct {
	ID     VID
	Labels []string
	Valid  Interval
	props  map[string]lpg.Value
}

// Edge is a temporal property graph edge.
type Edge struct {
	ID    EID
	Label string
	From  VID
	To    VID
	Valid Interval
	props map[string]lpg.Value
}

// Graph is a temporal property graph. Deleting an element in temporal graphs
// means closing its validity interval, so the structure only ever grows;
// this matches the append-only nature of TPG systems like Gradoop.
type Graph struct {
	vertices []*Vertex
	edges    []*Edge
	outAdj   [][]EID
	inAdj    [][]EID
}

// ErrBadInterval is returned when an element would get an inverted interval.
var ErrBadInterval = errors.New("tpg: interval start after end")

// NewGraph returns an empty temporal graph.
func NewGraph() *Graph { return &Graph{} }

// NumVertices returns the total number of vertices ever added.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the total number of edges ever added.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddVertex adds a vertex valid over the given interval.
func (g *Graph) AddVertex(valid Interval, labels ...string) (VID, error) {
	if !valid.Valid() {
		return 0, ErrBadInterval
	}
	id := VID(len(g.vertices))
	g.vertices = append(g.vertices, &Vertex{
		ID: id, Labels: append([]string(nil), labels...),
		Valid: valid, props: map[string]lpg.Value{},
	})
	g.outAdj = append(g.outAdj, nil)
	g.inAdj = append(g.inAdj, nil)
	return id, nil
}

// MustAddVertex is AddVertex that panics on error.
func (g *Graph) MustAddVertex(valid Interval, labels ...string) VID {
	id, err := g.AddVertex(valid, labels...)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge adds an edge valid over the given interval. The edge interval is
// clipped to the intersection of its endpoints' validity (temporal
// referential integrity, requirement R2): an edge cannot outlive its
// endpoints. An error is returned when the intersection is empty.
func (g *Graph) AddEdge(from, to VID, label string, valid Interval) (EID, error) {
	if !valid.Valid() {
		return 0, ErrBadInterval
	}
	vf, vt := g.Vertex(from), g.Vertex(to)
	if vf == nil || vt == nil {
		return 0, fmt.Errorf("tpg: edge endpoints %d->%d missing", from, to)
	}
	clipped, ok := valid.Intersect(vf.Valid)
	if ok {
		clipped, ok = clipped.Intersect(vt.Valid)
	}
	if !ok {
		return 0, fmt.Errorf("tpg: edge interval %v disjoint from endpoint validity", valid)
	}
	id := EID(len(g.edges))
	g.edges = append(g.edges, &Edge{
		ID: id, Label: label, From: from, To: to, Valid: clipped,
		props: map[string]lpg.Value{},
	})
	g.outAdj[from] = append(g.outAdj[from], id)
	g.inAdj[to] = append(g.inAdj[to], id)
	return id, nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(from, to VID, label string, valid Interval) EID {
	id, err := g.AddEdge(from, to, label, valid)
	if err != nil {
		panic(err)
	}
	return id
}

// Vertex returns the vertex or nil.
func (g *Graph) Vertex(id VID) *Vertex {
	if id < 0 || int(id) >= len(g.vertices) {
		return nil
	}
	return g.vertices[id]
}

// Edge returns the edge or nil.
func (g *Graph) Edge(id EID) *Edge {
	if id < 0 || int(id) >= len(g.edges) {
		return nil
	}
	return g.edges[id]
}

// EndVertex closes a vertex's validity at t and likewise closes all incident
// edges still open past t. Closing before the start returns an error.
func (g *Graph) EndVertex(id VID, t ts.Time) error {
	v := g.Vertex(id)
	if v == nil {
		return fmt.Errorf("tpg: no vertex %d", id)
	}
	if t < v.Valid.Start {
		return ErrBadInterval
	}
	if t < v.Valid.End {
		v.Valid.End = t
	}
	for _, eid := range g.outAdj[id] {
		if e := g.edges[eid]; e.Valid.End > t {
			e.Valid.End = t
		}
	}
	for _, eid := range g.inAdj[id] {
		if e := g.edges[eid]; e.Valid.End > t {
			e.Valid.End = t
		}
	}
	return nil
}

// EndEdge closes an edge's validity at t.
func (g *Graph) EndEdge(id EID, t ts.Time) error {
	e := g.Edge(id)
	if e == nil {
		return fmt.Errorf("tpg: no edge %d", id)
	}
	if t < e.Valid.Start {
		return ErrBadInterval
	}
	if t < e.Valid.End {
		e.Valid.End = t
	}
	return nil
}

// SetVertexProp sets a property on a vertex. It errors when the vertex does
// not exist; only the Must* constructors panic on the library path.
func (g *Graph) SetVertexProp(id VID, key string, val lpg.Value) error {
	v := g.Vertex(id)
	if v == nil {
		return fmt.Errorf("tpg: no vertex %d", id)
	}
	v.props[key] = val
	return nil
}

// SetEdgeProp sets a property on an edge.
func (g *Graph) SetEdgeProp(id EID, key string, val lpg.Value) error {
	e := g.Edge(id)
	if e == nil {
		return fmt.Errorf("tpg: no edge %d", id)
	}
	e.props[key] = val
	return nil
}

// Prop returns a vertex property (Null if absent).
func (v *Vertex) Prop(key string) lpg.Value { return v.props[key] }

// PropKeys returns sorted property keys.
func (v *Vertex) PropKeys() []string { return sortedKeys(v.props) }

// HasLabel reports whether the vertex carries the label.
func (v *Vertex) HasLabel(label string) bool {
	for _, l := range v.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Prop returns an edge property (Null if absent).
func (e *Edge) Prop(key string) lpg.Value { return e.props[key] }

// PropKeys returns sorted property keys.
func (e *Edge) PropKeys() []string { return sortedKeys(e.props) }

func sortedKeys(m map[string]lpg.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Vertices calls fn for every vertex in ID order.
func (g *Graph) Vertices(fn func(*Vertex) bool) {
	for _, v := range g.vertices {
		if !fn(v) {
			return
		}
	}
}

// Edges calls fn for every edge in ID order.
func (g *Graph) Edges(fn func(*Edge) bool) {
	for _, e := range g.edges {
		if !fn(e) {
			return
		}
	}
}

// OutEdges returns the outgoing edges of a vertex (any validity).
func (g *Graph) OutEdges(id VID) []*Edge {
	if id < 0 || int(id) >= len(g.outAdj) {
		return nil
	}
	out := make([]*Edge, 0, len(g.outAdj[id]))
	for _, eid := range g.outAdj[id] {
		out = append(out, g.edges[eid])
	}
	return out
}

// InEdges returns the incoming edges of a vertex (any validity).
func (g *Graph) InEdges(id VID) []*Edge {
	if id < 0 || int(id) >= len(g.inAdj) {
		return nil
	}
	out := make([]*Edge, 0, len(g.inAdj[id]))
	for _, eid := range g.inAdj[id] {
		out = append(out, g.edges[eid])
	}
	return out
}

// Lifespan returns the interval from the earliest element start to the
// latest finite element end; series of structural change happen within it.
// ok is false for an empty graph.
func (g *Graph) Lifespan() (Interval, bool) {
	if len(g.vertices) == 0 {
		return Interval{}, false
	}
	lo := ts.MaxTime
	hi := ts.Time(0)
	grow := func(iv Interval) {
		if iv.Start < lo {
			lo = iv.Start
		}
		end := iv.End
		if end == ts.MaxTime {
			end = iv.Start
		}
		if end > hi {
			hi = end
		}
	}
	g.Vertices(func(v *Vertex) bool { grow(v.Valid); return true })
	g.Edges(func(e *Edge) bool { grow(e.Valid); return true })
	if hi < lo {
		hi = lo
	}
	return Interval{lo, hi}, true
}

package tpg

import (
	"sort"

	"hygraph/internal/ts"
)

// EarliestArrival computes, for every vertex reachable from start by a
// time-respecting path beginning at or after startTime, the earliest instant
// it can be reached. An edge can be traversed at any instant within its
// validity at or after the current arrival time; traversal itself is
// instantaneous. This follows the path semantics of Wu et al. ("Path
// Problems in Temporal Graphs"), which the paper cites as the canonical TPG
// operation.
func (g *Graph) EarliestArrival(start VID, startTime ts.Time) map[VID]ts.Time {
	arrival := map[VID]ts.Time{}
	v := g.Vertex(start)
	if v == nil {
		return arrival
	}
	// If the start vertex only becomes valid after startTime, the journey
	// begins when it appears.
	st := startTime
	if v.Valid.Start > st {
		st = v.Valid.Start
	}
	if !v.Valid.Contains(st) {
		return arrival
	}
	arrival[start] = st
	// Dijkstra-like relaxation ordered by arrival time.
	type item struct {
		id VID
		at ts.Time
	}
	queue := []item{{start, st}}
	for len(queue) > 0 {
		sort.Slice(queue, func(i, j int) bool { return queue[i].at < queue[j].at })
		cur := queue[0]
		queue = queue[1:]
		if best, ok := arrival[cur.id]; ok && cur.at > best {
			continue
		}
		for _, e := range g.OutEdges(cur.id) {
			// Earliest instant we can use this edge.
			dep := cur.at
			if e.Valid.Start > dep {
				dep = e.Valid.Start
			}
			if !e.Valid.Contains(dep) {
				continue // edge already expired
			}
			// The target must be valid when we arrive.
			tv := g.Vertex(e.To)
			if tv == nil || !tv.Valid.Contains(dep) {
				continue
			}
			if best, ok := arrival[e.To]; !ok || dep < best {
				arrival[e.To] = dep
				queue = append(queue, item{e.To, dep})
			}
		}
	}
	return arrival
}

// TemporalReachable reports whether target can be reached from start by a
// time-respecting path starting at or after startTime and arriving before
// deadline.
func (g *Graph) TemporalReachable(start, target VID, startTime, deadline ts.Time) bool {
	at, ok := g.EarliestArrival(start, startTime)[target]
	return ok && at < deadline
}

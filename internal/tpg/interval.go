// Package tpg implements the temporal-property-graph substrate: an LPG whose
// vertices and edges carry validity intervals (the paper's ρ function),
// supporting snapshot retrieval, temporal slices, diffs, time-respecting
// paths, and the evolution of graph metrics over time as time series
// (the metricEvolution operator of Section 5).
package tpg

import (
	"fmt"

	"hygraph/internal/ts"
)

// Interval is a half-open validity interval [Start, End). The paper's ρ
// function assigns one to every property-graph element, with End initialized
// to max(T) for currently valid elements.
type Interval struct {
	Start, End ts.Time
}

// Always is the interval covering all of time.
var Always = Interval{Start: 0, End: ts.MaxTime}

// From returns the interval [start, max(T)), i.e. valid from start onwards.
func From(start ts.Time) Interval { return Interval{Start: start, End: ts.MaxTime} }

// Between returns the interval [start, end).
func Between(start, end ts.Time) Interval { return Interval{Start: start, End: end} }

// Valid reports whether the interval is well-formed (Start <= End).
func (iv Interval) Valid() bool { return iv.Start <= iv.End }

// Contains reports whether t lies within [Start, End).
func (iv Interval) Contains(t ts.Time) bool { return t >= iv.Start && t < iv.End }

// Overlaps reports whether two intervals share any instant.
func (iv Interval) Overlaps(o Interval) bool { return iv.Start < o.End && o.Start < iv.End }

// Intersect returns the overlap of two intervals; ok is false when disjoint.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	lo, hi := iv.Start, iv.End
	if o.Start > lo {
		lo = o.Start
	}
	if o.End < hi {
		hi = o.End
	}
	if lo >= hi {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// Covers reports whether iv fully contains o.
func (iv Interval) Covers(o Interval) bool { return iv.Start <= o.Start && o.End <= iv.End }

// Duration returns End - Start.
func (iv Interval) Duration() ts.Time { return iv.End - iv.Start }

// String renders the interval for debugging.
func (iv Interval) String() string { return fmt.Sprintf("[%s, %s)", iv.Start, iv.End) }

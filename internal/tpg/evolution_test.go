package tpg

import (
	"testing"

	"hygraph/internal/ts"
)

func TestDegreeEvolution(t *testing.T) {
	// b's degree: 0 before edge, 1 during [10,20), 0 after.
	g := NewGraph()
	a := g.MustAddVertex(Always, "V")
	b := g.MustAddVertex(Always, "V")
	g.MustAddEdge(a, b, "e", Between(10, 20))
	evo := g.DegreeEvolution(0, 30, 5)
	sb := evo[b]
	if sb == nil || sb.Len() != 6 {
		t.Fatalf("b evolution=%v", sb)
	}
	wants := []float64{0, 0, 1, 1, 0, 0} // t=0,5,10,15,20,25
	for i, w := range wants {
		if sb.ValueAt(i) != w {
			t.Fatalf("degree(b) at t=%d is %v want %v", 5*i, sb.ValueAt(i), w)
		}
	}
}

func TestDegreeEvolutionRespectsVertexValidity(t *testing.T) {
	g := NewGraph()
	a := g.MustAddVertex(Between(10, 20), "V")
	evo := g.DegreeEvolution(0, 30, 5)
	sa := evo[a]
	if sa == nil {
		t.Fatal("no series for a")
	}
	// Samples only at t=10,15.
	if sa.Len() != 2 || sa.TimeAt(0) != 10 || sa.TimeAt(1) != 15 {
		t.Fatalf("a sampled at %v", sa.Times())
	}
}

func TestCommunityEvolution(t *testing.T) {
	// Two pairs joined later: communities merge at t=50.
	g := NewGraph()
	a := g.MustAddVertex(Always, "V")
	b := g.MustAddVertex(Always, "V")
	c := g.MustAddVertex(Always, "V")
	d := g.MustAddVertex(Always, "V")
	g.MustAddEdge(a, b, "e", Always)
	g.MustAddEdge(c, d, "e", Always)
	g.MustAddEdge(b, c, "e", From(50))
	evo := g.CommunityEvolution(0, 100, 25, 1)
	// Before 50: a,b in one community, c,d in another. After: same.
	for _, tt := range []int{0, 1} { // samples t=0, 25
		if evo[a].ValueAt(tt) != evo[b].ValueAt(tt) {
			t.Fatal("a,b split early")
		}
		if evo[a].ValueAt(tt) == evo[c].ValueAt(tt) {
			t.Fatal("a,c merged early")
		}
	}
	for _, tt := range []int{2, 3} { // samples t=50, 75
		if evo[a].ValueAt(tt) != evo[d].ValueAt(tt) {
			t.Fatal("not merged after bridge")
		}
	}
}

func TestActivitySeries(t *testing.T) {
	g := NewGraph()
	a := g.MustAddVertex(Always, "V")
	b := g.MustAddVertex(Always, "V")
	g.MustAddEdge(a, b, "e", Between(10, 30))
	g.MustAddEdge(b, a, "e", Between(20, 40))
	s := g.ActivitySeries(0, 50, 10)
	wants := []float64{0, 1, 2, 1, 0}
	if s.Len() != len(wants) {
		t.Fatalf("len=%d", s.Len())
	}
	for i, w := range wants {
		if s.ValueAt(i) != w {
			t.Fatalf("activity[%d]=%v want %v", i, s.ValueAt(i), w)
		}
	}
	if got := g.ActivitySeries(0, 50, 0); got.Len() != 0 {
		t.Fatal("step=0")
	}
}

func TestMetricEvolutionDegenerate(t *testing.T) {
	g := NewGraph()
	g.MustAddVertex(Always, "V")
	if got := g.DegreeEvolution(100, 100, 10); len(got) != 0 {
		t.Fatal("empty window")
	}
	if got := g.DegreeEvolution(0, 100, 0); len(got) != 0 {
		t.Fatal("zero step")
	}
	_ = ts.MaxTime
}

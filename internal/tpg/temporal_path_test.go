package tpg

import (
	"testing"

	"hygraph/internal/ts"
)

func TestEarliestArrivalRespectsTime(t *testing.T) {
	// a -e1[0,100)-> b -e2[50,200)-> c : leaving a at 0, arrive b at 0,
	// then must wait until 50 for e2 → arrive c at 50.
	g := NewGraph()
	a := g.MustAddVertex(Always, "V")
	b := g.MustAddVertex(Always, "V")
	c := g.MustAddVertex(Always, "V")
	g.MustAddEdge(a, b, "e", Between(0, 100))
	g.MustAddEdge(b, c, "e", Between(50, 200))
	arr := g.EarliestArrival(a, 0)
	if arr[a] != 0 || arr[b] != 0 || arr[c] != 50 {
		t.Fatalf("arrivals=%v", arr)
	}
}

func TestEarliestArrivalExpiredEdge(t *testing.T) {
	// a -e1[0,10)-> b -e2[0,5)-> c : arriving at b at 0 is fine, but if we
	// start at 7, e1 still works (valid until 10) yet e2 is expired → c
	// unreachable.
	g := NewGraph()
	a := g.MustAddVertex(Always, "V")
	b := g.MustAddVertex(Always, "V")
	c := g.MustAddVertex(Always, "V")
	g.MustAddEdge(a, b, "e", Between(0, 10))
	g.MustAddEdge(b, c, "e", Between(0, 5))
	arr := g.EarliestArrival(a, 7)
	if arr[b] != 7 {
		t.Fatalf("b arrival=%v", arr[b])
	}
	if _, ok := arr[c]; ok {
		t.Fatalf("c should be unreachable: %v", arr)
	}
	// Starting at 0 reaches c at 0.
	arr = g.EarliestArrival(a, 0)
	if arr[c] != 0 {
		t.Fatalf("c arrival from 0: %v", arr)
	}
}

func TestEarliestArrivalTargetInvalid(t *testing.T) {
	// Target vertex not yet valid when the edge fires.
	g := NewGraph()
	a := g.MustAddVertex(Always, "V")
	late := g.MustAddVertex(From(100), "V")
	// Edge clipped to [100, ...) by endpoint validity.
	g.MustAddEdge(a, late, "e", Always)
	arr := g.EarliestArrival(a, 0)
	if arr[late] != 100 {
		t.Fatalf("late arrival=%v", arr[late])
	}
}

func TestEarliestArrivalStartNotYetValid(t *testing.T) {
	g := NewGraph()
	a := g.MustAddVertex(From(50), "V")
	b := g.MustAddVertex(Always, "V")
	g.MustAddEdge(a, b, "e", Always)
	arr := g.EarliestArrival(a, 0)
	if arr[a] != 50 || arr[b] != 50 {
		t.Fatalf("arrivals=%v", arr)
	}
	// A dead start vertex yields nothing.
	dead := g.MustAddVertex(Between(0, 10), "V")
	if got := g.EarliestArrival(dead, 20); len(got) != 0 {
		t.Fatalf("dead start: %v", got)
	}
	if got := g.EarliestArrival(99, 0); len(got) != 0 {
		t.Fatalf("missing start: %v", got)
	}
}

func TestTemporalReachable(t *testing.T) {
	g := NewGraph()
	a := g.MustAddVertex(Always, "V")
	b := g.MustAddVertex(Always, "V")
	g.MustAddEdge(a, b, "e", Between(100, 200))
	if !g.TemporalReachable(a, b, 0, 150) {
		t.Fatal("reachable at 100 < 150")
	}
	if g.TemporalReachable(a, b, 0, 100) {
		t.Fatal("deadline 100 should exclude arrival at 100")
	}
	if g.TemporalReachable(a, b, 250, ts.MaxTime) {
		t.Fatal("edge expired")
	}
}

func TestEarliestArrivalPrefersWaitingPath(t *testing.T) {
	// Two routes to d: via b (edges valid late) and via c (valid early but
	// c's second hop opens even later). Earliest arrival must pick min.
	g := NewGraph()
	a := g.MustAddVertex(Always, "V")
	b := g.MustAddVertex(Always, "V")
	c := g.MustAddVertex(Always, "V")
	d := g.MustAddVertex(Always, "V")
	g.MustAddEdge(a, b, "e", From(80))
	g.MustAddEdge(b, d, "e", From(90))
	g.MustAddEdge(a, c, "e", From(0))
	g.MustAddEdge(c, d, "e", From(120))
	arr := g.EarliestArrival(a, 0)
	if arr[d] != 90 {
		t.Fatalf("d arrival=%v want 90 (via b)", arr[d])
	}
}

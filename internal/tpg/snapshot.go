package tpg

import (
	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

// Snapshot is the static LPG view of the temporal graph at one instant,
// with mappings back to the temporal element ids. It implements the paper's
// Q4 graph primitive (snapshot retrieval, Table 2).
type Snapshot struct {
	At       ts.Time
	Graph    *lpg.Graph
	VertexOf map[VID]lpg.VertexID // temporal id -> snapshot id
	EdgeOf   map[EID]lpg.EdgeID
	TempV    map[lpg.VertexID]VID // snapshot id -> temporal id
	TempE    map[lpg.EdgeID]EID
}

// SnapshotAt materializes the graph state at instant t: all vertices and
// edges whose validity contains t, with their labels and properties.
func (g *Graph) SnapshotAt(t ts.Time) *Snapshot {
	s := &Snapshot{
		At:       t,
		Graph:    lpg.NewGraph(),
		VertexOf: map[VID]lpg.VertexID{},
		EdgeOf:   map[EID]lpg.EdgeID{},
		TempV:    map[lpg.VertexID]VID{},
		TempE:    map[lpg.EdgeID]EID{},
	}
	g.Vertices(func(v *Vertex) bool {
		if !v.Valid.Contains(t) {
			return true
		}
		id := s.Graph.AddVertex(v.Labels...)
		for _, k := range v.PropKeys() {
			s.Graph.SetVertexProp(id, k, v.Prop(k))
		}
		s.VertexOf[v.ID] = id
		s.TempV[id] = v.ID
		return true
	})
	g.Edges(func(e *Edge) bool {
		if !e.Valid.Contains(t) {
			return true
		}
		from, okF := s.VertexOf[e.From]
		to, okT := s.VertexOf[e.To]
		if !okF || !okT {
			return true // endpoint invisible at t (possible after EndVertex clipping races)
		}
		id := s.Graph.AddEdge(from, to, e.Label)
		for _, k := range e.PropKeys() {
			s.Graph.SetEdgeProp(id, k, e.Prop(k))
		}
		s.EdgeOf[e.ID] = id
		s.TempE[id] = e.ID
		return true
	})
	return s
}

// SliceBetween returns a new temporal graph containing only elements whose
// validity overlaps [start, end), with intervals clipped to it. This is the
// temporal analogue of Series.Slice.
func (g *Graph) SliceBetween(start, end ts.Time) *Graph {
	win := Between(start, end)
	out := NewGraph()
	remap := map[VID]VID{}
	g.Vertices(func(v *Vertex) bool {
		clipped, ok := v.Valid.Intersect(win)
		if !ok {
			return true
		}
		nid := out.MustAddVertex(clipped, v.Labels...)
		for _, k := range v.PropKeys() {
			_ = out.SetVertexProp(nid, k, v.Prop(k)) // nid was just created
		}
		remap[v.ID] = nid
		return true
	})
	g.Edges(func(e *Edge) bool {
		clipped, ok := e.Valid.Intersect(win)
		if !ok {
			return true
		}
		from, okF := remap[e.From]
		to, okT := remap[e.To]
		if !okF || !okT {
			return true
		}
		nid, err := out.AddEdge(from, to, e.Label, clipped)
		if err != nil {
			return true
		}
		for _, k := range e.PropKeys() {
			_ = out.SetEdgeProp(nid, k, e.Prop(k)) // nid was just created
		}
		return true
	})
	return out
}

// Diff summarizes the structural change between two instants.
type Diff struct {
	AddedVertices   []VID // valid at t2 but not t1
	RemovedVertices []VID // valid at t1 but not t2
	AddedEdges      []EID
	RemovedEdges    []EID
}

// DiffBetween computes which elements appeared or disappeared between t1 and
// t2 (t1 < t2 expected but not required; the diff is directional).
func (g *Graph) DiffBetween(t1, t2 ts.Time) Diff {
	var d Diff
	g.Vertices(func(v *Vertex) bool {
		a, b := v.Valid.Contains(t1), v.Valid.Contains(t2)
		switch {
		case !a && b:
			d.AddedVertices = append(d.AddedVertices, v.ID)
		case a && !b:
			d.RemovedVertices = append(d.RemovedVertices, v.ID)
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		a, b := e.Valid.Contains(t1), e.Valid.Contains(t2)
		switch {
		case !a && b:
			d.AddedEdges = append(d.AddedEdges, e.ID)
		case a && !b:
			d.RemovedEdges = append(d.RemovedEdges, e.ID)
		}
		return true
	})
	return d
}

// ActiveCounts returns how many vertices and edges are valid at t.
func (g *Graph) ActiveCounts(t ts.Time) (vertices, edges int) {
	g.Vertices(func(v *Vertex) bool {
		if v.Valid.Contains(t) {
			vertices++
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		if e.Valid.Contains(t) {
			edges++
		}
		return true
	})
	return vertices, edges
}

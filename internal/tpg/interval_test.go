package tpg

import (
	"testing"
	"testing/quick"

	"hygraph/internal/ts"
)

func TestIntervalContains(t *testing.T) {
	iv := Between(10, 20)
	for _, tc := range []struct {
		t    ts.Time
		want bool
	}{{9, false}, {10, true}, {15, true}, {19, true}, {20, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d)=%v", tc.t, got)
		}
	}
	if !Always.Contains(0) || !Always.Contains(1<<60) {
		t.Error("Always should contain everything non-negative")
	}
	if !From(5).Contains(5) || From(5).Contains(4) {
		t.Error("From(5)")
	}
}

func TestIntervalOverlapIntersect(t *testing.T) {
	a := Between(0, 10)
	b := Between(5, 15)
	c := Between(10, 20) // adjacent to a, half-open → disjoint
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a/b overlap")
	}
	if a.Overlaps(c) {
		t.Error("adjacent intervals must not overlap")
	}
	iv, ok := a.Intersect(b)
	if !ok || iv.Start != 5 || iv.End != 10 {
		t.Errorf("intersect=%v", iv)
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("adjacent intersect must fail")
	}
	if !Between(0, 100).Covers(Between(10, 20)) || Between(10, 20).Covers(Between(0, 100)) {
		t.Error("covers")
	}
	if Between(3, 9).Duration() != 6 {
		t.Error("duration")
	}
}

// Property: Intersect is commutative and its result is covered by both.
func TestQuickIntersect(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := Between(ts.Time(min16(a1, a2)), ts.Time(max16(a1, a2)))
		b := Between(ts.Time(min16(b1, b2)), ts.Time(max16(b1, b2)))
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return !a.Overlaps(b)
		}
		return i1 == i2 && a.Covers(i1) && b.Covers(i1) && a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}

package tpg

import (
	"fmt"

	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

// MetricEvolution computes a per-vertex graph metric at regularly sampled
// instants and returns one series per temporal vertex, sampled only while
// the vertex is valid. This is the paper's metricEvolution operator
// (Section 5): it turns graph structure into time series, demonstrating the
// HyGraphTo<X> duality. metric receives each snapshot and returns the metric
// per snapshot vertex.
func (g *Graph) MetricEvolution(start, end, step ts.Time, name string,
	metric func(*lpg.Graph) map[lpg.VertexID]float64) map[VID]*ts.Series {

	out := map[VID]*ts.Series{}
	if step <= 0 || start >= end {
		return out
	}
	for t := start; t < end; t += step {
		snap := g.SnapshotAt(t)
		vals := metric(snap.Graph)
		for sid, v := range vals {
			tid := snap.TempV[sid]
			s, ok := out[tid]
			if !ok {
				s = ts.New(fmt.Sprintf("%s_v%d", name, tid))
				out[tid] = s
			}
			s.MustAppend(t, v)
		}
	}
	return out
}

// DegreeEvolution is MetricEvolution for total vertex degree — the concrete
// example the paper draws from "Evolution of Degree Metrics in Large
// Temporal Graphs".
func (g *Graph) DegreeEvolution(start, end, step ts.Time) map[VID]*ts.Series {
	return g.MetricEvolution(start, end, step, "degree", func(snap *lpg.Graph) map[lpg.VertexID]float64 {
		out := make(map[lpg.VertexID]float64, snap.NumVertices())
		for id, d := range snap.Degrees() {
			out[id] = float64(d)
		}
		return out
	})
}

// CommunityEvolution is MetricEvolution for label-propagation community ids,
// producing a step series per vertex. The seed makes runs reproducible.
func (g *Graph) CommunityEvolution(start, end, step ts.Time, seed int64) map[VID]*ts.Series {
	return g.MetricEvolution(start, end, step, "community", func(snap *lpg.Graph) map[lpg.VertexID]float64 {
		c := snap.LabelPropagation(50, seed)
		out := make(map[lpg.VertexID]float64, len(c.Of))
		for id, cm := range c.Of {
			out[id] = float64(cm)
		}
		return out
	})
}

// ActivitySeries samples the number of active edges over time — a global
// structural-activity series whose segmentation drives the paper's Q4
// hybrid operator (segmentation-driven snapshots).
func (g *Graph) ActivitySeries(start, end, step ts.Time) *ts.Series {
	s := ts.New("active_edges")
	if step <= 0 {
		return s
	}
	for t := start; t < end; t += step {
		_, e := g.ActiveCounts(t)
		s.MustAppend(t, float64(e))
	}
	return s
}

package tpg

import (
	"testing"

	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

// companyStory builds the paper's company lifecycle example: company C is
// founded at t=0, listed on an exchange during [100, 300), acquired by D at
// t=300 (edge from then on), and D goes bankrupt (ends) at t=500.
func companyStory(t *testing.T) (*Graph, VID, VID, VID) {
	t.Helper()
	g := NewGraph()
	c := g.MustAddVertex(From(0), "Company")
	if err := g.SetVertexProp(c, "name", lpg.Str("C")); err != nil {
		t.Fatal(err)
	}
	x := g.MustAddVertex(From(0), "Exchange")
	d := g.MustAddVertex(Between(0, 500), "Company")
	if err := g.SetVertexProp(d, "name", lpg.Str("D")); err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(c, x, "LISTED_ON", Between(100, 300))
	g.MustAddEdge(d, c, "ACQUIRED", From(300))
	return g, c, x, d
}

func TestAddAndIntervals(t *testing.T) {
	g, c, _, d := companyStory(t)
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("counts %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.Vertex(c).Valid.End != ts.MaxTime {
		t.Fatal("open-ended vertex should end at MaxTime (paper: t_end = max(T))")
	}
	if got := g.Vertex(d).Valid; got != Between(0, 500) {
		t.Fatalf("d validity %v", got)
	}
	if _, err := g.AddVertex(Between(10, 5)); err != ErrBadInterval {
		t.Fatalf("inverted interval: %v", err)
	}
	if g.Vertex(99) != nil || g.Edge(99) != nil {
		t.Fatal("missing lookups")
	}
	if err := g.SetVertexProp(99, "x", lpg.Int(1)); err == nil {
		t.Fatal("prop set on missing vertex accepted")
	}
	if err := g.SetEdgeProp(99, "x", lpg.Int(1)); err == nil {
		t.Fatal("prop set on missing edge accepted")
	}
}

func TestEdgeClippedToEndpoints(t *testing.T) {
	g := NewGraph()
	a := g.MustAddVertex(Between(0, 100), "A")
	b := g.MustAddVertex(Between(50, 200), "B")
	e := g.MustAddEdge(a, b, "r", Always)
	if got := g.Edge(e).Valid; got != Between(50, 100) {
		t.Fatalf("edge clipped to %v", got)
	}
	// Disjoint endpoint validity → error.
	c := g.MustAddVertex(Between(500, 600), "C")
	if _, err := g.AddEdge(a, c, "r", Always); err == nil {
		t.Fatal("edge across disjoint validities accepted")
	}
	// Missing endpoints.
	if _, err := g.AddEdge(a, 99, "r", Always); err == nil {
		t.Fatal("edge to missing vertex accepted")
	}
}

func TestEndVertexCascades(t *testing.T) {
	g, c, _, _ := companyStory(t)
	if err := g.EndVertex(c, 400); err != nil {
		t.Fatal(err)
	}
	if got := g.Vertex(c).Valid.End; got != 400 {
		t.Fatalf("end=%v", got)
	}
	// The ACQUIRED edge (into c) must be clipped too.
	g.Edges(func(e *Edge) bool {
		if e.Label == "ACQUIRED" && e.Valid.End != 400 {
			t.Fatalf("incident edge not clipped: %v", e.Valid)
		}
		return true
	})
	// Ending before start errors.
	if err := g.EndVertex(c, -10); err != ErrBadInterval {
		t.Fatalf("end before start: %v", err)
	}
}

func TestSnapshots(t *testing.T) {
	g, _, _, _ := companyStory(t)
	// t=50: C, X, D alive; no edges.
	s := g.SnapshotAt(50)
	if s.Graph.NumVertices() != 3 || s.Graph.NumEdges() != 0 {
		t.Fatalf("t=50: %v", s.Graph)
	}
	// t=150: LISTED_ON active.
	s = g.SnapshotAt(150)
	if s.Graph.NumEdges() != 1 {
		t.Fatalf("t=150 edges=%d", s.Graph.NumEdges())
	}
	// t=350: ACQUIRED active, LISTED_ON gone.
	s = g.SnapshotAt(350)
	if s.Graph.NumEdges() != 1 {
		t.Fatalf("t=350 edges=%d", s.Graph.NumEdges())
	}
	var label string
	s.Graph.Edges(func(e *lpg.Edge) bool { label = e.Label; return true })
	if label != "ACQUIRED" {
		t.Fatalf("t=350 edge=%s", label)
	}
	// t=550: D dead; ACQUIRED edge needs both endpoints... D ended at 500 so
	// the edge was clipped at creation? No: edge interval From(300) clipped
	// by D's [0,500) → [300,500). So no edges, 2 vertices.
	s = g.SnapshotAt(550)
	if s.Graph.NumVertices() != 2 || s.Graph.NumEdges() != 0 {
		t.Fatalf("t=550: %v", s.Graph)
	}
	// Properties survive into snapshots, and mappings are consistent.
	s = g.SnapshotAt(150)
	for tid, sid := range s.VertexOf {
		if s.TempV[sid] != tid {
			t.Fatal("vertex mapping not bijective")
		}
	}
	foundC := false
	s.Graph.Vertices(func(v *lpg.Vertex) bool {
		if v.Prop("name").String() == "C" {
			foundC = true
		}
		return true
	})
	if !foundC {
		t.Fatal("property lost in snapshot")
	}
}

func TestSnapshotSubsetInvariant(t *testing.T) {
	// Every snapshot is a subgraph of the TPG: counts match ActiveCounts.
	g, _, _, _ := companyStory(t)
	for _, at := range []ts.Time{0, 99, 100, 299, 300, 499, 500, 1000} {
		s := g.SnapshotAt(at)
		v, e := g.ActiveCounts(at)
		if s.Graph.NumVertices() != v || s.Graph.NumEdges() != e {
			t.Fatalf("t=%d snapshot %v vs active %d/%d", at, s.Graph, v, e)
		}
	}
}

func TestSliceBetween(t *testing.T) {
	g, _, _, _ := companyStory(t)
	sl := g.SliceBetween(100, 300)
	// All three vertices overlap the window; only LISTED_ON overlaps.
	if sl.NumVertices() != 3 || sl.NumEdges() != 1 {
		t.Fatalf("slice: %d/%d", sl.NumVertices(), sl.NumEdges())
	}
	sl.Edges(func(e *Edge) bool {
		if e.Label != "LISTED_ON" {
			t.Fatalf("edge %s in slice", e.Label)
		}
		if e.Valid != Between(100, 300) {
			t.Fatalf("clip %v", e.Valid)
		}
		return true
	})
	// Properties preserved.
	found := false
	sl.Vertices(func(v *Vertex) bool {
		if v.Prop("name").String() == "C" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("props lost in slice")
	}
}

func TestDiffBetween(t *testing.T) {
	g, _, _, d := companyStory(t)
	diff := g.DiffBetween(50, 350)
	// LISTED_ON was not active at 50 nor 350? At 50 no (starts 100); at 350
	// no (ended 300). ACQUIRED added. No vertex changes.
	if len(diff.AddedVertices) != 0 || len(diff.RemovedVertices) != 0 {
		t.Fatalf("vertex diff: %+v", diff)
	}
	if len(diff.AddedEdges) != 1 {
		t.Fatalf("edge diff: %+v", diff)
	}
	diff = g.DiffBetween(350, 550)
	if len(diff.RemovedVertices) != 1 || diff.RemovedVertices[0] != d {
		t.Fatalf("D should disappear: %+v", diff)
	}
	if len(diff.RemovedEdges) != 1 {
		t.Fatalf("ACQUIRED should disappear: %+v", diff)
	}
}

func TestLifespan(t *testing.T) {
	g, _, _, _ := companyStory(t)
	ls, ok := g.Lifespan()
	if !ok || ls.Start != 0 {
		t.Fatalf("lifespan=%v ok=%v", ls, ok)
	}
	if ls.End != 500 { // latest finite end
		t.Fatalf("lifespan end=%v", ls.End)
	}
	if _, ok := NewGraph().Lifespan(); ok {
		t.Fatal("empty lifespan")
	}
}

func TestEndEdge(t *testing.T) {
	g := NewGraph()
	a := g.MustAddVertex(Always, "A")
	b := g.MustAddVertex(Always, "B")
	e := g.MustAddEdge(a, b, "r", From(10))
	if err := g.EndEdge(e, 20); err != nil {
		t.Fatal(err)
	}
	if got := g.Edge(e).Valid; got != Between(10, 20) {
		t.Fatalf("after end: %v", got)
	}
	if err := g.EndEdge(e, 5); err != ErrBadInterval {
		t.Fatalf("end before start: %v", err)
	}
	if err := g.EndEdge(99, 5); err == nil {
		t.Fatal("missing edge")
	}
}

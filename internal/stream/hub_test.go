package stream

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"hygraph/internal/storage/tsstore"
	"hygraph/internal/ts"
)

func sameSeries(a, b *ts.Series) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.TimeAt(i) != b.TimeAt(i) {
			return false
		}
		av, bv := a.ValueAt(i), b.ValueAt(i)
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			return false
		}
	}
	return true
}

// A materialized aggregate seeded over existing data and maintained
// through appends, backfills, and deletes must equal a from-scratch
// resample of the store at every quiescent point.
func TestMatAggMatchesStore(t *testing.T) {
	db := tsstore.New(ts.Hour)
	rng := rand.New(rand.NewSource(11))
	keys := []tsstore.SeriesKey{
		{Entity: 1, Metric: "avail"},
		{Entity: 2, Metric: "avail"},
		{Entity: 3, Metric: "other"}, // must be ignored by the aggregate
	}
	heads := map[tsstore.SeriesKey]ts.Time{}
	write := func(n int) {
		for i := 0; i < n; i++ {
			k := keys[rng.Intn(len(keys))]
			if rng.Intn(6) == 0 && heads[k] > 0 { // backfill
				db.Insert(k, ts.Time(rng.Intn(int(heads[k]))), rng.Float64()*100)
			} else {
				heads[k] += ts.Time(1 + rng.Intn(int(20*ts.Minute)))
				db.Insert(k, heads[k], rng.Float64()*100)
			}
		}
	}
	write(300) // pre-subscription data, covered by the seed

	h := NewHub(db)
	defer h.Close()
	for _, agg := range []ts.AggFunc{ts.AggMean, ts.AggMax, ts.AggStd} {
		a := h.Materialize(AggSpec{Metric: "avail", Bucket: ts.Hour, Agg: agg})
		write(300)
		for _, k := range keys[:2] {
			got := a.Series(k.Entity)
			want := db.RangeSeries(k, 0, heads[k]+1).Resample(ts.Hour, agg)
			if got == nil || !sameSeries(got, want) {
				t.Fatalf("agg=%v key=%v: materialized view diverged\n got %v\nwant %v", agg, k, got, want)
			}
		}
		if a.Series(3) != nil {
			t.Fatalf("agg=%v: foreign metric leaked into the aggregate", agg)
		}
		if a.Deltas() == 0 || a.Rescans() == 0 {
			t.Fatalf("agg=%v: degenerate run (deltas=%d rescans=%d)", agg, a.Deltas(), a.Rescans())
		}
	}

	// Deleting a series drops its materialized state.
	a := h.Materialize(AggSpec{Metric: "avail", Bucket: ts.Hour, Agg: ts.AggMean})
	db.DeleteSeries(keys[0])
	if a.Series(1) != nil {
		t.Fatal("deleted series kept materialized state")
	}
	if got := a.Entities(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Entities = %v, want [2]", got)
	}
}

// Windowed aggregates ignore points outside [Start, End).
func TestMatAggWindow(t *testing.T) {
	db := tsstore.New(ts.Day)
	h := NewHub(db)
	defer h.Close()
	a := h.Materialize(AggSpec{Metric: "m", Bucket: 10, Agg: ts.AggSum, Start: 100, End: 200})
	k := tsstore.SeriesKey{Entity: 5, Metric: "m"}
	for _, pt := range []ts.Time{50, 100, 150, 199, 200, 300} {
		db.Insert(k, pt, 1)
	}
	got := a.Series(5)
	want := db.RangeSeries(k, 100, 200).Resample(10, ts.AggSum)
	if got == nil || !sameSeries(got, want) {
		t.Fatalf("windowed view diverged:\n got %v\nwant %v", got, want)
	}
	if v, ok := a.Value(5, 100); !ok || v != 1 {
		t.Fatalf("Value(5,100) = %v,%v", v, ok)
	}
}

// Threshold and z-score detectors fire per appended point.
func TestDetectors(t *testing.T) {
	db := tsstore.New(ts.Day)
	h := NewHub(db)
	defer h.Close()
	td := h.Threshold(ThresholdSpec{Metric: "avail", Below: 2, Above: math.Inf(1)})
	zd := h.ZScore(ZScoreSpec{Metric: "avail", K: 4, MinN: 10})
	k := tsstore.SeriesKey{Entity: 1, Metric: "avail"}
	for i := 0; i < 50; i++ {
		db.Insert(k, ts.Time(i), 10+0.1*float64(i%5))
	}
	if td.Total() != 0 || zd.Total() != 0 {
		t.Fatalf("steady data fired: threshold=%d z=%d", td.Total(), zd.Total())
	}
	db.Insert(k, 50, 1)   // below the floor and far from the mean
	db.Insert(k, 51, 100) // spike
	if td.Total() != 1 {
		t.Fatalf("threshold fired %d times, want 1", td.Total())
	}
	if zd.Total() != 2 {
		t.Fatalf("z-score fired %d times, want 2", zd.Total())
	}
	evs := zd.Drain()
	if len(evs) != 2 || evs[0].T != 50 || evs[1].T != 51 || evs[1].Score < 4 {
		t.Fatalf("drained events %+v", evs)
	}
	if len(zd.Drain()) != 0 {
		t.Fatal("drain did not clear")
	}
	// Ring wraps without losing the count.
	small := h.Threshold(ThresholdSpec{Metric: "avail", Below: math.Inf(-1), Above: 0, Ring: 4})
	for i := 0; i < 10; i++ {
		db.Insert(k, ts.Time(100+i), 5)
	}
	if small.Total() != 10 {
		t.Fatalf("ring total %d, want 10", small.Total())
	}
	if evs := small.Drain(); len(evs) != 4 || evs[0].T != 106 || evs[3].T != 109 {
		t.Fatalf("wrapped ring drained %+v", evs)
	}
}

// The observer fan-out hammer: concurrent appenders, a pinned aggregate
// that must account for every delta exactly once, and subscribe/
// unsubscribe churn racing the writes. Run under -race (make race does).
// The hub spawns no goroutines, so the count must return to baseline.
func TestObserverFanoutHammer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	db := tsstore.NewSharded(ts.Hour, 8)
	h := NewHub(db)

	pinned := h.Materialize(AggSpec{Metric: "avail", Bucket: ts.Minute, Agg: ts.AggCount})

	const writers = 8
	const perWriter = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churners: register and detach aggregates and detectors while writes
	// are in flight. Every Materialize seeds under the subscription
	// barrier, so each churned view is internally consistent too.
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := h.Materialize(AggSpec{Metric: "avail", Bucket: ts.Minute, Agg: ts.AggSum})
				d := h.Threshold(ThresholdSpec{Metric: "avail", Below: math.Inf(-1), Above: math.Inf(1)})
				h.Detach(a)
				h.Detach(d)
			}
		}(c)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := tsstore.SeriesKey{Entity: uint32(w), Metric: "avail"}
			for i := 0; i < perWriter; i++ {
				db.Insert(k, ts.Time(i)*ts.Second, float64(i))
			}
		}(w)
	}
	// Writers are a bounded amount of work; once they finish, every delta
	// has been delivered (delivery is synchronous with the insert).
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for i := 0; pinned.Deltas()+pinned.Rescans() < writers*perWriter && i < 10000; i++ {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	// Exactly-once accounting: the pinned aggregate saw every applied
	// point as exactly one delta (all tail appends on distinct series),
	// and its materialized counts sum to the written total.
	if got := pinned.Deltas(); got != writers*perWriter {
		t.Fatalf("pinned aggregate saw %d deltas, want %d (lost or duplicated deliveries)",
			got, writers*perWriter)
	}
	var totalCount float64
	for _, e := range pinned.Entities() {
		s := pinned.Series(e)
		for i := 0; i < s.Len(); i++ {
			totalCount += s.ValueAt(i)
		}
	}
	if totalCount != writers*perWriter {
		t.Fatalf("materialized counts sum to %v, want %d", totalCount, writers*perWriter)
	}
	// Each entity's view equals the store's answer.
	for w := 0; w < writers; w++ {
		k := tsstore.SeriesKey{Entity: uint32(w), Metric: "avail"}
		want := db.RangeSeries(k, 0, ts.MaxTime).Resample(ts.Minute, ts.AggCount)
		if got := pinned.Series(uint32(w)); got == nil || !sameSeries(got, want) {
			t.Fatalf("writer %d view diverged:\n got %v\nwant %v", w, pinned.Series(uint32(w)), want)
		}
	}

	h.Close()
	if n := db.NumObservers(); n != 0 {
		t.Fatalf("%d observers survived Close", n)
	}
	// No goroutines leaked: the streaming layer runs entirely on writer
	// goroutines. Allow scheduler slack for runtime helpers to exit.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine leak: %d > baseline %d", n, baseline)
	}
}

package stream

import (
	"testing"

	"hygraph/internal/core"
	"hygraph/internal/hyql"
	"hygraph/internal/lpg"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// smallInstance: one station with an availability series starting at t=0.
func smallInstance(t *testing.T) (*core.HyGraph, core.VID, core.VID) {
	t.Helper()
	h := core.New()
	st, err := h.AddVertex(tpg.Always, "Station")
	if err != nil {
		t.Fatal(err)
	}
	h.SetVertexProp(st, "name", lpg.Str("s0"))
	s := ts.New("availability")
	s.MustAppend(0, 10)
	tsv, err := h.AddTSVertexUni(s, "Availability")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddEdge(st, tsv, "HAS_SERIES", tpg.Always); err != nil {
		t.Fatal(err)
	}
	return h, st, tsv
}

func TestAppendAndUpsert(t *testing.T) {
	h, _, tsv := smallInstance(t)
	in := NewIngestor(h)
	for i := 1; i <= 10; i++ {
		if err := in.Apply(Update{Kind: Append, At: ts.Time(i) * ts.Minute, Vertex: tsv, Value: float64(10 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Stale replacement.
	if err := in.Apply(Update{Kind: Upsert, At: 5 * ts.Minute, Vertex: tsv, Value: 99}); err != nil {
		t.Fatal(err)
	}
	s, _ := h.Vertex(tsv).SeriesVar("")
	if s.Len() != 11 {
		t.Fatalf("len=%d", s.Len())
	}
	if v, _ := s.Lookup(5 * ts.Minute); v != 99 {
		t.Fatalf("upserted=%v", v)
	}
	st := in.Stats()
	if st.Appended != 10 || st.Upserted != 1 || st.Errors != 0 {
		t.Fatalf("stats=%+v", st)
	}
	if in.Now() != 10*ts.Minute {
		t.Fatalf("now=%v", in.Now())
	}
}

func TestOutOfOrderAppendCountsError(t *testing.T) {
	h, _, tsv := smallInstance(t)
	in := NewIngestor(h)
	in.Apply(Update{Kind: Append, At: 10 * ts.Minute, Vertex: tsv, Value: 1})
	if err := in.Apply(Update{Kind: Append, At: 5 * ts.Minute, Vertex: tsv, Value: 2}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if in.Stats().Errors != 1 {
		t.Fatalf("errors=%d", in.Stats().Errors)
	}
	// Upsert handles the same event.
	if err := in.Apply(Update{Kind: Upsert, At: 5 * ts.Minute, Vertex: tsv, Value: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestStructuralUpdates(t *testing.T) {
	h, st, _ := smallInstance(t)
	st2, _ := h.AddVertex(tpg.Always, "Station")
	in := NewIngestor(h)
	before := h.NumEdges()
	if err := in.Apply(Update{Kind: AddEdge, At: 100, From: st, To: st2, Label: "TRIP"}); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != before+1 {
		t.Fatal("edge not added")
	}
	var eid core.EID = -1
	h.Edges(func(e *core.Edge) bool {
		if e.Label == "TRIP" {
			eid = e.ID
		}
		return true
	})
	if h.Edge(eid).Valid.Start != 100 {
		t.Fatalf("edge start=%v", h.Edge(eid).Valid)
	}
	if err := in.Apply(Update{Kind: EndEdge, At: 200, Edge: eid}); err != nil {
		t.Fatal(err)
	}
	if h.Edge(eid).Valid.End != 200 {
		t.Fatalf("edge end=%v", h.Edge(eid).Valid)
	}
	// Ending before start errors.
	if err := in.Apply(Update{Kind: EndEdge, At: 50, Edge: eid}); err == nil {
		t.Fatal("EndEdge before start accepted")
	}
	// Unknown targets error but don't kill the stream.
	if err := in.Apply(Update{Kind: AddEdge, At: 1, From: 999, To: st, Label: "X"}); err == nil {
		t.Fatal("edge from missing vertex accepted")
	}
	if err := in.Apply(Update{Kind: Append, At: 1000, Vertex: 999, Value: 1}); err == nil {
		t.Fatal("append to missing vertex accepted")
	}
	if err := in.Apply(Update{Kind: Append, At: 1001, Vertex: st, Value: 1}); err == nil {
		t.Fatal("append to PG vertex accepted")
	}
}

func TestContinuousQueryFires(t *testing.T) {
	h, _, tsv := smallInstance(t)
	in := NewIngestor(h)
	var fired []ts.Time
	var lastMean float64
	c := &Continuous{
		Query: `MATCH (a:Availability) RETURN ts.mean(a) AS m`,
		Slide: 10 * ts.Minute,
		Emit: func(at ts.Time, res *hyql.Result) {
			fired = append(fired, at)
			if len(res.Rows) == 1 {
				lastMean, _ = res.Rows[0][0].AsFloat()
			}
		},
	}
	if err := in.Register(c, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 35; i++ {
		in.Apply(Update{Kind: Append, At: ts.Time(i) * ts.Minute, Vertex: tsv, Value: 20})
	}
	// Windows at 10, 20, 30 minutes.
	if len(fired) != 3 || c.Fires() != 3 {
		t.Fatalf("fired=%v", fired)
	}
	if fired[0] != 10*ts.Minute || fired[2] != 30*ts.Minute {
		t.Fatalf("fire times=%v", fired)
	}
	if lastMean < 19 {
		t.Fatalf("last mean=%v", lastMean)
	}
	// Bad queries and slides are rejected at registration.
	if err := in.Register(&Continuous{Query: "BOGUS", Slide: ts.Minute}, 0); err == nil {
		t.Fatal("bad query registered")
	}
	if err := in.Register(&Continuous{Query: c.Query, Slide: 0}, 0); err == nil {
		t.Fatal("zero slide registered")
	}
}

func TestContinuousSeesNewEdges(t *testing.T) {
	// A continuous structural count reflects streamed edges in later
	// windows but not earlier ones (the snapshot is taken as of window end).
	h, st, _ := smallInstance(t)
	st2, _ := h.AddVertex(tpg.Always, "Station")
	in := NewIngestor(h)
	var counts []float64
	c := &Continuous{
		Query: `MATCH (a:Station)-[:TRIP]->(b:Station) RETURN count(*) AS n`,
		Slide: 100,
		Emit: func(_ ts.Time, res *hyql.Result) {
			v, _ := res.Rows[0][0].AsFloat()
			counts = append(counts, v)
		},
	}
	if err := in.Register(c, 0); err != nil {
		t.Fatal(err)
	}
	in.Apply(Update{Kind: AddEdge, At: 150, From: st, To: st2, Label: "TRIP"})
	in.Apply(Update{Kind: AddEdge, At: 350, From: st2, To: st, Label: "TRIP"})
	in.Apply(Update{Kind: EndEdge, At: 399, Edge: lastEdge(h)})
	in.Apply(Update{Kind: AddEdge, At: 520, From: st, To: st2, Label: "TRIP"})
	// Windows: 100 (0 edges), 200 (1), 300 (1), 400 (1: second edge ended
	// at 399 before the window), 500 (1).
	want := []float64{0, 1, 1, 1, 1}
	if len(counts) != len(want) {
		t.Fatalf("counts=%v", counts)
	}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("window %d: count=%v want %v (all=%v)", i, counts[i], w, counts)
		}
	}
}

func lastEdge(h *core.HyGraph) core.EID {
	var last core.EID = -1
	h.Edges(func(e *core.Edge) bool {
		last = e.ID
		return true
	})
	return last
}

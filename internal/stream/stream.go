// Package stream addresses the paper's requirement R3 (timeliness): a
// HyGraph instance must absorb high-velocity updates — new observations,
// stale-value replacements and structural changes — without rebuilds, and
// support continuous (windowed) evaluation over the arriving data, in the
// spirit of the property-graph-stream systems the paper cites (Seraph).
package stream

import (
	"errors"
	"fmt"

	"hygraph/internal/core"
	"hygraph/internal/hyql"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// Update is one streamed event. Exactly one Kind-dependent field group is
// used.
type Update struct {
	Kind UpdateKind
	At   ts.Time

	// Append / Upsert: a new observation for a TS element.
	Vertex core.VID
	Edge   core.EID
	OnEdge bool // target the Edge instead of the Vertex
	Value  float64

	// AddEdge: a structural change.
	From, To core.VID
	Label    string

	// EndEdge closes Edge's validity at At.
}

// UpdateKind enumerates streamed event types.
type UpdateKind int

// Supported event kinds.
const (
	Append UpdateKind = iota // strictly newer observation
	Upsert                   // replace-or-insert (stale data replacement)
	AddEdge
	EndEdge
)

// Stats counts applied events.
type Stats struct {
	Appended, Upserted, EdgesAdded, EdgesEnded, Errors int
}

// Ingestor applies updates to a HyGraph instance and drives continuous
// queries as event time advances.
type Ingestor struct {
	H     *core.HyGraph
	stats Stats
	conts []*Continuous
	now   ts.Time
}

// NewIngestor wraps an instance.
func NewIngestor(h *core.HyGraph) *Ingestor { return &Ingestor{H: h} }

// Stats returns the event counters so far.
func (in *Ingestor) Stats() Stats { return in.stats }

// Now returns the high-water event time.
func (in *Ingestor) Now() ts.Time { return in.now }

// errNoSeries signals appends to elements without a series payload.
var errNoSeries = errors.New("stream: element has no series")

// Apply applies one update. Unknown targets and out-of-order appends count
// as Errors but do not stop the stream (at-least-once sources re-deliver).
func (in *Ingestor) Apply(u Update) error {
	if u.At > in.now {
		in.now = u.At
	}
	err := in.apply(u)
	if err != nil {
		in.stats.Errors++
	}
	for _, c := range in.conts {
		c.advance(in, in.now)
	}
	return err
}

func (in *Ingestor) apply(u Update) error {
	switch u.Kind {
	case Append, Upsert:
		m, err := in.targetSeries(u)
		if err != nil {
			return err
		}
		if m.Arity() != 1 {
			return fmt.Errorf("stream: element carries a %d-variate series; scalar updates need arity 1", m.Arity())
		}
		if u.Kind == Append {
			if err := m.Append(u.At, u.Value); err != nil {
				return err
			}
			in.stats.Appended++
		} else {
			if err := m.Upsert(u.At, u.Value); err != nil {
				return err
			}
			in.stats.Upserted++
		}
		// Series mutation bypasses the instance API; stamp it stale so
		// cached query views refresh.
		in.H.InvalidateViews()
		return nil
	case AddEdge:
		if _, err := in.H.AddEdge(u.From, u.To, u.Label, tpg.From(u.At)); err != nil {
			return err
		}
		in.stats.EdgesAdded++
		return nil
	case EndEdge:
		e := in.H.Edge(u.Edge)
		if e == nil {
			return core.ErrNoEdge
		}
		if u.At < e.Valid.Start {
			return fmt.Errorf("stream: EndEdge at %v before start %v", u.At, e.Valid.Start)
		}
		if u.At < e.Valid.End {
			e.Valid.End = u.At
		}
		in.H.InvalidateViews()
		in.stats.EdgesEnded++
		return nil
	}
	return fmt.Errorf("stream: unknown update kind %d", u.Kind)
}

// targetSeries resolves the target element's mutable series. Mutating the
// stored series in place is the whole point: no copies, no rebuilds (R3).
func (in *Ingestor) targetSeries(u Update) (*ts.MultiSeries, error) {
	var m *ts.MultiSeries
	if u.OnEdge {
		e := in.H.Edge(u.Edge)
		if e == nil {
			return nil, core.ErrNoEdge
		}
		m = e.Series
	} else {
		v := in.H.Vertex(u.Vertex)
		if v == nil {
			return nil, core.ErrNoVertex
		}
		m = v.Series
	}
	if m == nil {
		return nil, errNoSeries
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Continuous queries.

// Continuous re-evaluates a HyQL query every Slide of event time, as of the
// window end — a tumbling/hopping window in the RSP sense, but over the full
// hybrid model rather than triple streams.
type Continuous struct {
	Query string
	Slide ts.Time
	// Emit receives each evaluation: the window-end instant and the result.
	Emit func(at ts.Time, res *hyql.Result)

	parsed  *hyql.Query
	engine  *hyql.Engine
	nextDue ts.Time
	fires   int
}

// Register attaches a continuous query; the first evaluation fires once
// event time reaches start+Slide.
func (in *Ingestor) Register(c *Continuous, start ts.Time) error {
	if c.Slide <= 0 {
		return fmt.Errorf("stream: slide must be positive")
	}
	q, err := hyql.Parse(c.Query)
	if err != nil {
		return err
	}
	c.parsed = q
	c.engine = hyql.NewEngine(in.H)
	c.nextDue = start + c.Slide
	in.conts = append(in.conts, c)
	return nil
}

// Fires returns how many times the query has emitted.
func (c *Continuous) Fires() int { return c.fires }

func (c *Continuous) advance(in *Ingestor, now ts.Time) {
	// Watermark semantics: a window [p, at) closes when event time moves
	// strictly past `at`, so events stamped exactly at the boundary have all
	// been applied. Evaluation happens at the last instant inside the
	// window (at-1): TS elements are valid only through their newest
	// observation, so a snapshot exactly at the boundary would exclude
	// every series whose latest point predates it.
	for c.nextDue < now {
		at := c.nextDue
		res, err := c.engine.Exec(c.parsed, at-1)
		if err == nil && c.Emit != nil {
			c.Emit(at, res)
		}
		c.fires++
		c.nextDue += c.Slide
	}
}

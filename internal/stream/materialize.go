package stream

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hygraph/internal/storage/tsstore"
	"hygraph/internal/ts"
)

// AggSpec configures one materialized windowed aggregate: every entity of
// Metric gets a continuously maintained resampled view (ts.ContAgg) over
// [Start, End). End <= Start selects the unbounded window.
type AggSpec struct {
	Metric string
	Bucket ts.Time
	Agg    ts.AggFunc
	Start  ts.Time
	End    ts.Time
}

func (s AggSpec) window() (ts.Time, ts.Time) {
	if s.End <= s.Start {
		return s.Start, ts.MaxTime
	}
	return s.Start, s.End
}

// MatAgg is a live materialized aggregate. Deltas apply on the writer's
// goroutine under the store's shard lock; reads snapshot under the
// consumer's own mutex. The lock order is strictly shard.mu -> MatAgg.mu
// (never the reverse: reads never touch the store), so the consumer adds
// no cross-stripe lock edges.
//
// Unlike the tsstore resample cache — which finalizes dirty buckets lazily
// at read, under the same shard lock reads already take — MatAgg finalizes
// eagerly at write time via the Mutation's Scan closure: its readers don't
// hold store locks, so deferring the rescan to the read side would need a
// MatAgg.mu -> shard.mu edge, the exact deadlock the discipline forbids.
// The cost model is unchanged: tail appends of decomposable aggregates are
// O(1); only backfills and std/median pay a bucket-local rescan.
type MatAgg struct {
	spec       AggSpec
	start, end ts.Time

	mu       sync.Mutex
	byEntity map[uint32]*ts.ContAgg

	deltas  atomic.Int64 // O(1) in-place bucket updates
	rescans atomic.Int64 // bucket-local rescans (backfill, std/median)
}

func newMatAgg(spec AggSpec) *MatAgg {
	a := &MatAgg{spec: spec, byEntity: map[uint32]*ts.ContAgg{}}
	a.start, a.end = spec.window()
	return a
}

// Spec returns the registration spec.
func (a *MatAgg) Spec() AggSpec { return a.spec }

// Deltas reports how many points applied as O(1) bucket deltas.
func (a *MatAgg) Deltas() int64 { return a.deltas.Load() }

// Rescans reports how many points forced a bucket-local rescan.
func (a *MatAgg) Rescans() int64 { return a.rescans.Load() }

func (a *MatAgg) contFor(entity uint32) *ts.ContAgg {
	c, ok := a.byEntity[entity]
	if !ok {
		c = ts.NewContAgg(fmt.Sprintf("%s@%d", a.spec.Metric, entity), a.spec.Bucket, a.spec.Agg)
		a.byEntity[entity] = c
	}
	return c
}

// seed builds the initial per-entity views while every shard is locked
// (the Subscribe barrier), so the views plus the mutation stream cover
// every point exactly once.
func (a *MatAgg) seed(v tsstore.SeedView) {
	for _, k := range v.Keys() {
		if k.Metric != a.spec.Metric {
			continue
		}
		raw := ts.New(fmt.Sprintf("%s@%d", k.Metric, k.Entity))
		v.Scan(k, a.start, a.end, func(t ts.Time, val float64) { raw.MustAppend(t, val) })
		c := ts.NewContAgg("", a.spec.Bucket, a.spec.Agg)
		c.Seed(raw)
		a.byEntity[k.Entity] = c
	}
}

// OnMutation implements tsstore.Observer.
func (a *MatAgg) OnMutation(m tsstore.Mutation) {
	if m.Key.Metric != a.spec.Metric {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if m.Kind == tsstore.MutDeleteSeries {
		delete(a.byEntity, m.Key.Entity)
		return
	}
	if m.T < a.start || m.T >= a.end {
		return
	}
	c := a.contFor(m.Key.Entity)
	if c.Observe(m.T, m.V) {
		a.deltas.Add(1)
		return
	}
	a.rescans.Add(1)
	// Bucket-local rescan through the already-held shard lock; the store
	// reflects the mutation, so the fold is exact.
	var vals []float64
	for _, b := range c.DirtyBuckets() {
		lo, hi := b, b+a.spec.Bucket
		if lo < a.start {
			lo = a.start
		}
		if hi > a.end {
			hi = a.end
		}
		vals = vals[:0]
		m.Scan(lo, hi, func(_ ts.Time, val float64) { vals = append(vals, val) })
		c.Finalize(b, vals)
	}
}

// Series returns an owned snapshot of one entity's materialized view, or
// nil when the entity has no points in the window.
func (a *MatAgg) Series(entity uint32) *ts.Series {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.byEntity[entity]
	if !ok {
		return nil
	}
	return c.Snapshot()
}

// Value returns the materialized value of the bucket starting at b for one
// entity.
func (a *MatAgg) Value(entity uint32, b ts.Time) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.byEntity[entity]
	if !ok {
		return 0, false
	}
	return c.View().Lookup(b)
}

// Entities lists the entities with materialized state, ascending.
func (a *MatAgg) Entities() []uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]uint32, 0, len(a.byEntity))
	for e := range a.byEntity {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

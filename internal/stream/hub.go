package stream

import (
	"sync"

	"hygraph/internal/storage/tsstore"
)

// Hub is the engine-side streaming surface: it attaches materialized
// windowed aggregates and anomaly detectors to a tsstore.DB's observer
// layer, so they update incrementally per applied point — write-through,
// on the writer's goroutine, with no polling and no background goroutines
// (nothing to leak, nothing to drain on shutdown). Registrations are
// seeded under the store's subscription barrier, so a consumer's state
// plus its subsequent mutation stream cover every point exactly once —
// including after crash recovery, where the rebuild contract is simply
// "recover the store, then re-register" (docs/STREAMING.md).
//
// The demo-grade Ingestor/Continuous API in stream.go operates on a
// core.HyGraph view; the Hub operates on the storage engine itself and is
// what ttdb-backed deployments use.
type Hub struct {
	db *tsstore.DB

	mu   sync.Mutex
	subs []tsstore.Observer
}

// NewHub returns a hub over db. Close detaches everything it registered.
func NewHub(db *tsstore.DB) *Hub { return &Hub{db: db} }

// DB returns the underlying store.
func (h *Hub) DB() *tsstore.DB { return h.db }

// track records a registered observer for Close.
func (h *Hub) track(o tsstore.Observer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs = append(h.subs, o)
}

// Materialize registers a continuous windowed aggregate, seeded from the
// store's current contents, and returns the live view.
func (h *Hub) Materialize(spec AggSpec) *MatAgg {
	a := newMatAgg(spec)
	h.db.Subscribe(a, a.seed)
	h.track(a)
	return a
}

// Threshold registers a threshold crossing detector.
func (h *Hub) Threshold(spec ThresholdSpec) *ThresholdDetector {
	d := newThresholdDetector(spec)
	h.db.Subscribe(d, nil)
	h.track(d)
	return d
}

// ZScore registers a streaming z-score anomaly detector.
func (h *Hub) ZScore(spec ZScoreSpec) *ZScoreDetector {
	d := newZScoreDetector(spec)
	h.db.Subscribe(d, nil)
	h.track(d)
	return d
}

// Detach unsubscribes one consumer registered through this hub.
func (h *Hub) Detach(o tsstore.Observer) {
	h.db.Unsubscribe(o)
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, x := range h.subs {
		if x == o {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			return
		}
	}
}

// Close unsubscribes every consumer the hub registered. The consumers'
// accumulated state stays readable.
func (h *Hub) Close() {
	h.mu.Lock()
	subs := h.subs
	h.subs = nil
	h.mu.Unlock()
	for _, o := range subs {
		h.db.Unsubscribe(o)
	}
}

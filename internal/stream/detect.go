package stream

import (
	"math"
	"sync"
	"sync/atomic"

	"hygraph/internal/storage/tsstore"
	"hygraph/internal/ts"
)

// Event is one detected anomaly: the offending observation plus a score
// (threshold detectors report the value itself; z-score detectors the
// absolute z).
type Event struct {
	Key   tsstore.SeriesKey
	T     ts.Time
	V     float64
	Score float64
}

// defaultRing bounds retained events per detector; older events are
// dropped once drained or overwritten, with Total still counting them.
const defaultRing = 256

// eventRing is the shared bounded event buffer. Deliveries run under a
// shard lock, so it must be cheap: append with wraparound, no allocation
// after warm-up.
type eventRing struct {
	mu      sync.Mutex
	buf     []Event
	nextIdx int
	wrapped bool
	capHint int
	total   atomic.Int64
}

func newEventRing(capHint int) *eventRing {
	if capHint <= 0 {
		capHint = defaultRing
	}
	return &eventRing{capHint: capHint}
}

func (r *eventRing) add(e Event) {
	r.total.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < r.capHint {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.nextIdx] = e
	r.nextIdx = (r.nextIdx + 1) % len(r.buf)
	r.wrapped = true
}

// drain returns the retained events oldest-first and clears the buffer.
func (r *eventRing) drain() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	if r.wrapped {
		out = append(out, r.buf[r.nextIdx:]...)
		out = append(out, r.buf[:r.nextIdx]...)
	} else {
		out = append(out, r.buf...)
	}
	r.buf = r.buf[:0]
	r.nextIdx = 0
	r.wrapped = false
	return out
}

// ThresholdSpec configures a crossing detector for one metric: an event
// fires for every observation with V < Below or V > Above. Disable a
// bound explicitly with math.Inf(-1) / math.Inf(1) — a zero bound is a
// real bound at zero, not "unset".
type ThresholdSpec struct {
	Metric string
	Below  float64 // fire when v < Below (use math.Inf(-1) to disable)
	Above  float64 // fire when v > Above (use math.Inf(1) to disable)
	Ring   int     // retained events; <= 0 selects defaultRing
}

// ThresholdDetector fires on threshold crossings, updating per appended
// point with O(1) work.
type ThresholdDetector struct {
	spec ThresholdSpec
	ring *eventRing
}

func newThresholdDetector(spec ThresholdSpec) *ThresholdDetector {
	return &ThresholdDetector{spec: spec, ring: newEventRing(spec.Ring)}
}

// OnMutation implements tsstore.Observer.
func (d *ThresholdDetector) OnMutation(m tsstore.Mutation) {
	if m.Kind != tsstore.MutPoint || m.Key.Metric != d.spec.Metric {
		return
	}
	if m.V < d.spec.Below || m.V > d.spec.Above {
		d.ring.add(Event{Key: m.Key, T: m.T, V: m.V, Score: m.V})
	}
}

// Total counts every event since registration, drained or not.
func (d *ThresholdDetector) Total() int64 { return d.ring.total.Load() }

// Drain returns and clears the retained events, oldest first.
func (d *ThresholdDetector) Drain() []Event { return d.ring.drain() }

// ZScoreSpec configures a streaming z-score detector for one metric: an
// observation fires when it sits at least K standard deviations from the
// mean of the observations that arrived before it (per entity), once MinN
// prior observations exist. Statistics accumulate in arrival order — the
// prospective, stream-semantics counterpart of ts.ZScoreAnomalies, which
// scores retrospectively against the whole series.
type ZScoreSpec struct {
	Metric string
	K      float64 // threshold in standard deviations; <= 0 selects 3
	MinN   int     // prior observations required; <= 0 selects 10
	Ring   int     // retained events; <= 0 selects defaultRing
}

// zstats is one entity's running moments (naive sums; adequate for the
// detector's advisory role).
type zstats struct {
	n          int
	sum, sumsq float64
}

// ZScoreDetector flags observations far from each entity's running mean.
type ZScoreDetector struct {
	spec     ZScoreSpec
	mu       sync.Mutex
	byEntity map[uint32]*zstats
	ring     *eventRing
}

func newZScoreDetector(spec ZScoreSpec) *ZScoreDetector {
	if spec.K <= 0 {
		spec.K = 3
	}
	if spec.MinN <= 0 {
		spec.MinN = 10
	}
	return &ZScoreDetector{spec: spec, byEntity: map[uint32]*zstats{}, ring: newEventRing(spec.Ring)}
}

// OnMutation implements tsstore.Observer.
func (d *ZScoreDetector) OnMutation(m tsstore.Mutation) {
	if m.Key.Metric != d.spec.Metric {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if m.Kind == tsstore.MutDeleteSeries {
		delete(d.byEntity, m.Key.Entity)
		return
	}
	st, ok := d.byEntity[m.Key.Entity]
	if !ok {
		st = &zstats{}
		d.byEntity[m.Key.Entity] = st
	}
	if st.n >= d.spec.MinN {
		mu := st.sum / float64(st.n)
		sd := math.Sqrt(st.sumsq/float64(st.n) - mu*mu)
		if sd > 0 {
			if z := math.Abs(m.V-mu) / sd; z >= d.spec.K {
				d.ring.add(Event{Key: m.Key, T: m.T, V: m.V, Score: z})
			}
		}
	}
	st.n++
	st.sum += m.V
	st.sumsq += m.V * m.V
}

// Total counts every event since registration, drained or not.
func (d *ZScoreDetector) Total() int64 { return d.ring.total.Load() }

// Drain returns and clears the retained events, oldest first.
func (d *ZScoreDetector) Drain() []Event { return d.ring.drain() }

package ts

import (
	"math/rand"
	"testing"
)

// step series: three flat levels with noise.
func stepSeries(rng *rand.Rand, noise float64) *Series {
	s := New("step")
	t := Time(0)
	for _, level := range []float64{0, 10, -5} {
		for i := 0; i < 50; i++ {
			s.MustAppend(t, level+noise*rng.NormFloat64())
			t += 10
		}
	}
	return s
}

func TestSegmentizeFindsLevels(t *testing.T) {
	s := stepSeries(rand.New(rand.NewSource(1)), 0.1)
	segs := s.Segmentize(3, 0.001)
	if len(segs) != 3 {
		t.Fatalf("got %d segments", len(segs))
	}
	// Breakpoints near point indexes 50 and 100.
	if d := abs(segs[1].Lo - 50); d > 2 {
		t.Fatalf("first breakpoint at %d", segs[1].Lo)
	}
	if d := abs(segs[2].Lo - 100); d > 2 {
		t.Fatalf("second breakpoint at %d", segs[2].Lo)
	}
	// Segment means near the planted levels.
	for i, want := range []float64{0, 10, -5} {
		if !almost(segs[i].Mean, want, 0.5) {
			t.Fatalf("segment %d mean=%v want %v", i, segs[i].Mean, want)
		}
	}
}

func TestSegmentizePartition(t *testing.T) {
	s := stepSeries(rand.New(rand.NewSource(2)), 1)
	segs := s.Segmentize(5, 0.001)
	// Segments must partition [0, n) contiguously.
	if segs[0].Lo != 0 {
		t.Fatalf("first segment starts at %d", segs[0].Lo)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Lo != segs[i-1].Hi {
			t.Fatalf("gap between segments %d and %d", i-1, i)
		}
	}
	if segs[len(segs)-1].Hi != s.Len() {
		t.Fatalf("last segment ends at %d, n=%d", segs[len(segs)-1].Hi, s.Len())
	}
}

func TestSegmentizeStopsOnFlat(t *testing.T) {
	s := FromSamples("flat", 0, 1, make([]float64, 100))
	segs := s.Segmentize(10, 0.01)
	if len(segs) != 1 {
		t.Fatalf("flat series split into %d segments", len(segs))
	}
}

func TestSegmentizeDegenerate(t *testing.T) {
	if got := New("e").Segmentize(3, 0.01); got != nil {
		t.Fatalf("empty: %v", got)
	}
	one := FromSamples("one", 0, 1, []float64{5})
	segs := one.Segmentize(3, 0.01)
	if len(segs) != 1 || segs[0].Mean != 5 {
		t.Fatalf("single point: %v", segs)
	}
}

func TestBreakpoints(t *testing.T) {
	s := stepSeries(rand.New(rand.NewSource(3)), 0.1)
	segs := s.Segmentize(3, 0.001)
	bps := Breakpoints(segs)
	if len(bps) != 2 {
		t.Fatalf("breakpoints=%v", bps)
	}
	if bps[0] != segs[1].Start || bps[1] != segs[2].Start {
		t.Fatalf("breakpoints mismatch: %v vs %v/%v", bps, segs[1].Start, segs[2].Start)
	}
}

func TestTrend(t *testing.T) {
	s := FromSamples("lin", 0, 1, []float64{2, 4, 6, 8})
	a, b := s.Trend()
	if !almost(a, 2, 1e-9) || !almost(b, 2, 1e-9) {
		t.Fatalf("intercept=%v slope=%v", a, b)
	}
	c := FromSamples("const", 0, 1, []float64{5, 5, 5})
	_, slope := c.Trend()
	if !almost(slope, 0, 1e-12) {
		t.Fatalf("constant slope=%v", slope)
	}
	single := FromSamples("s", 0, 1, []float64{7})
	i1, s1 := single.Trend()
	if i1 != 7 || s1 != 0 {
		t.Fatalf("single point trend=%v,%v", i1, s1)
	}
}

// Property: more allowed segments never increases total cost.
func TestQuickSegmentCostMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 30; iter++ {
		n := 20 + rng.Intn(80)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 5
		}
		s := FromSamples("q", 0, 1, vals)
		total := func(segs []Segment) float64 {
			var c float64
			for _, sg := range segs {
				c += sg.Cost
			}
			return c
		}
		c2 := total(s.Segmentize(2, 0))
		c4 := total(s.Segmentize(4, 0))
		c8 := total(s.Segmentize(8, 0))
		if c4 > c2+1e-6 || c8 > c4+1e-6 {
			t.Fatalf("cost not monotone: %v %v %v", c2, c4, c8)
		}
	}
}

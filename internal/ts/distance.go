package ts

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned by distance functions requiring equal-length
// inputs.
var ErrLengthMismatch = errors.New("ts: series lengths differ")

// EuclideanDist returns the Euclidean distance between the value sequences
// of two equal-length series, ignoring timestamps.
func EuclideanDist(a, b *Series) (float64, error) {
	if a.Len() != b.Len() {
		return 0, ErrLengthMismatch
	}
	return euclidean(a.vals, b.vals), nil
}

func euclidean(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

// ZNormalizedDist returns the Euclidean distance between the z-normalized
// value sequences, the standard shape-based distance for subsequence
// matching.
func ZNormalizedDist(a, b *Series) (float64, error) {
	if a.Len() != b.Len() {
		return 0, ErrLengthMismatch
	}
	av := append([]float64(nil), a.vals...)
	bv := append([]float64(nil), b.vals...)
	znormInPlace(av)
	znormInPlace(bv)
	return euclidean(av, bv), nil
}

// DTW computes the dynamic time warping distance between the value
// sequences with a Sakoe-Chiba band of the given radius (in points);
// radius < 0 means unconstrained. Two rolling rows keep memory at O(m).
func DTW(a, b *Series, radius int) float64 { return dtw(a.vals, b.vals, radius) }

func dtw(a, b []float64, radius int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	if radius < 0 {
		radius = max(n, m)
	}
	// The band must be at least wide enough to connect the corners.
	if d := abs(n - m); radius < d {
		radius = d
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := max(1, i-radius)
		hi := min(m, i+radius)
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = d*d + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[m])
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SubMatch is one subsequence-match result: the window [Start, Start+Len)
// of the haystack (by point index) and its distance to the query.
type SubMatch struct {
	Start int
	Len   int
	Dist  float64
}

// SubsequenceMatches slides the query over the haystack and returns the k
// best non-overlapping windows by z-normalized Euclidean distance, sorted by
// ascending distance. This is the paper's Q1 time-series primitive
// (subsequence matching, Table 2) and the TS half of hybrid pattern
// matching. A k <= 0 returns all non-overlapping matches in distance order.
func SubsequenceMatches(haystack, query *Series, k int) []SubMatch {
	m := query.Len()
	n := haystack.Len()
	if m == 0 || n < m {
		return nil
	}
	q := append([]float64(nil), query.vals...)
	znormInPlace(q)
	dists := distanceProfile(haystack.vals, q)
	order := make([]int, len(dists))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return dists[order[i]] < dists[order[j]] })
	taken := make([]bool, n)
	var out []SubMatch
	for _, idx := range order {
		if k > 0 && len(out) >= k {
			break
		}
		overlap := false
		for p := idx; p < idx+m; p++ {
			if taken[p] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for p := idx; p < idx+m; p++ {
			taken[p] = true
		}
		out = append(out, SubMatch{Start: idx, Len: m, Dist: dists[idx]})
	}
	return out
}

// distanceProfile returns, for every window start i, the z-normalized
// Euclidean distance between haystack[i:i+m] and the already-normalized
// query qz. Rolling sums give O(n·m) worst case with O(1) normalization per
// window.
func distanceProfile(hay []float64, qz []float64) []float64 {
	m := len(qz)
	n := len(hay)
	out := make([]float64, n-m+1)
	var s, s2 float64
	for i := 0; i < m; i++ {
		s += hay[i]
		s2 += hay[i] * hay[i]
	}
	for i := 0; i+m <= n; i++ {
		if i > 0 {
			s += hay[i+m-1] - hay[i-1]
			s2 += hay[i+m-1]*hay[i+m-1] - hay[i-1]*hay[i-1]
		}
		mu := s / float64(m)
		va := s2/float64(m) - mu*mu
		if va < 0 {
			va = 0
		}
		sd := math.Sqrt(va)
		var acc float64
		if sd == 0 {
			// Constant window: its z-norm is all zeros.
			for j := 0; j < m; j++ {
				acc += qz[j] * qz[j]
			}
		} else {
			for j := 0; j < m; j++ {
				d := (hay[i+j]-mu)/sd - qz[j]
				acc += d * d
			}
		}
		out[i] = math.Sqrt(acc)
	}
	return out
}

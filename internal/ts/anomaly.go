package ts

import (
	"math"
	"sort"
)

// Anomaly is one detected outlier: the point (or window start for
// subsequence detectors) and a non-negative score where larger means more
// anomalous.
type Anomaly struct {
	Index int
	T     Time
	V     float64
	Score float64
}

// ZScoreAnomalies flags points whose |value - mean| exceeds threshold
// standard deviations. Score is the absolute z-score. This is the simplest
// distance-based detector in the paper's Listing 2 spirit.
func (s *Series) ZScoreAnomalies(threshold float64) []Anomaly {
	mu := s.Mean()
	sd := s.Std()
	if sd == 0 || math.IsNaN(sd) {
		return nil
	}
	var out []Anomaly
	for i, v := range s.vals {
		if z := math.Abs(v-mu) / sd; z > threshold {
			out = append(out, Anomaly{i, s.times[i], v, z})
		}
	}
	return out
}

// IQRAnomalies flags points outside [Q1-k·IQR, Q3+k·IQR] (k = 1.5 is the
// classic Tukey fence). Score is the distance beyond the fence in IQR units.
func (s *Series) IQRAnomalies(k float64) []Anomaly {
	if s.Len() < 4 {
		return nil
	}
	q1 := s.Quantile(0.25)
	q3 := s.Quantile(0.75)
	iqr := q3 - q1
	if iqr == 0 {
		return nil
	}
	lo, hi := q1-k*iqr, q3+k*iqr
	var out []Anomaly
	for i, v := range s.vals {
		var over float64
		switch {
		case v < lo:
			over = (lo - v) / iqr
		case v > hi:
			over = (v - hi) / iqr
		default:
			continue
		}
		out = append(out, Anomaly{i, s.times[i], v, over})
	}
	return out
}

// RollingZAnomalies flags points whose deviation from the trailing window
// mean exceeds threshold trailing standard deviations. window is in points
// and must be >= 2; the first window points are never flagged. Detects local
// bursts — the paper's "several significant peaks within a short interval".
func (s *Series) RollingZAnomalies(window int, threshold float64) []Anomaly {
	if window < 2 || s.Len() <= window {
		return nil
	}
	var out []Anomaly
	for i := window; i < s.Len(); i++ {
		w := s.vals[i-window : i]
		mu := mean(w)
		sd := std(w)
		if sd == 0 {
			continue
		}
		if z := math.Abs(s.vals[i]-mu) / sd; z > threshold {
			out = append(out, Anomaly{i, s.times[i], s.vals[i], z})
		}
	}
	return out
}

// SubsequenceAnomalies computes, for every window of length m, the distance
// to its nearest non-overlapping neighbor window (a discord score, the
// matrix-profile view of anomalies) and returns the k highest-scoring
// non-overlapping windows, most anomalous first. The returned Anomaly.Index
// is the window start.
func (s *Series) SubsequenceAnomalies(m, k int) []Anomaly {
	mp := s.MatrixProfile(m)
	if mp == nil {
		return nil
	}
	order := make([]int, len(mp))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return mp[order[i]] > mp[order[j]] })
	taken := make([]bool, s.Len())
	var out []Anomaly
	for _, idx := range order {
		if len(out) >= k {
			break
		}
		if math.IsInf(mp[idx], 1) {
			continue
		}
		overlap := false
		for p := idx; p < idx+m && p < len(taken); p++ {
			if taken[p] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for p := idx; p < idx+m && p < len(taken); p++ {
			taken[p] = true
		}
		out = append(out, Anomaly{Index: idx, T: s.times[idx], V: s.vals[idx], Score: mp[idx]})
	}
	return out
}

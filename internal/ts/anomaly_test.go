package ts

import (
	"math"
	"math/rand"
	"testing"
)

// noisySeriesWithSpikes returns a gaussian series with large spikes planted
// at the given indexes.
func noisySeriesWithSpikes(rng *rand.Rand, n int, spikeAt ...int) *Series {
	s := New("spiky")
	spikes := map[int]bool{}
	for _, i := range spikeAt {
		spikes[i] = true
	}
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		if spikes[i] {
			v += 25
		}
		s.MustAppend(Time(i)*Minute, v)
	}
	return s
}

func TestZScoreAnomalies(t *testing.T) {
	s := noisySeriesWithSpikes(rand.New(rand.NewSource(1)), 500, 100, 350)
	an := s.ZScoreAnomalies(5)
	if len(an) != 2 {
		t.Fatalf("anomalies=%v", an)
	}
	got := map[int]bool{an[0].Index: true, an[1].Index: true}
	if !got[100] || !got[350] {
		t.Fatalf("wrong positions: %v", an)
	}
	for _, a := range an {
		if a.Score <= 5 {
			t.Fatalf("score %v not above threshold", a.Score)
		}
	}
}

func TestZScoreConstantSeries(t *testing.T) {
	s := FromSamples("c", 0, 1, []float64{1, 1, 1, 1})
	if got := s.ZScoreAnomalies(1); got != nil {
		t.Fatalf("constant series flagged: %v", got)
	}
}

func TestIQRAnomalies(t *testing.T) {
	s := FromSamples("a", 0, 1, []float64{1, 2, 3, 4, 5, 6, 7, 8, 100})
	an := s.IQRAnomalies(1.5)
	if len(an) != 1 || an[0].V != 100 {
		t.Fatalf("IQR anomalies=%v", an)
	}
	short := FromSamples("s", 0, 1, []float64{1, 100})
	if got := short.IQRAnomalies(1.5); got != nil {
		t.Fatalf("too-short series flagged: %v", got)
	}
}

func TestRollingZAnomalies(t *testing.T) {
	// Gentle drift plus one sudden burst: global z-score may miss it, the
	// rolling detector must not.
	s := New("drift")
	for i := 0; i < 300; i++ {
		v := float64(i) * 0.1
		if i == 200 {
			v += 30
		}
		s.MustAppend(Time(i), v+0.01*math.Sin(float64(i)))
	}
	an := s.RollingZAnomalies(20, 6)
	found := false
	for _, a := range an {
		if a.Index == 200 {
			found = true
		}
	}
	if !found {
		t.Fatalf("burst at 200 not found: %v", an)
	}
	if got := s.RollingZAnomalies(1, 6); got != nil {
		t.Fatal("window<2 should return nil")
	}
}

func TestSubsequenceAnomalies(t *testing.T) {
	// Periodic signal with one distorted cycle → that window is the discord.
	n := 400
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(2 * math.Pi * float64(i) / 20)
	}
	for i := 200; i < 220; i++ {
		vals[i] = 1.5 // flatten one cycle
	}
	s := FromSamples("p", 0, 1, vals)
	an := s.SubsequenceAnomalies(20, 1)
	if len(an) != 1 {
		t.Fatalf("anomalies=%v", an)
	}
	if an[0].Index < 180 || an[0].Index > 225 {
		t.Fatalf("discord at %d, want near 200", an[0].Index)
	}
}

func TestMatrixProfileShape(t *testing.T) {
	n := 120
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(2 * math.Pi * float64(i) / 15)
	}
	s := FromSamples("p", 0, 1, vals)
	m := 15
	mp := s.MatrixProfile(m)
	if len(mp) != n-m+1 {
		t.Fatalf("profile len=%d want %d", len(mp), n-m+1)
	}
	// A perfectly periodic series has near-zero profile values everywhere.
	for i, v := range mp {
		if v > 0.5 {
			t.Fatalf("mp[%d]=%v for periodic signal", i, v)
		}
	}
	if got := s.MatrixProfile(100); got != nil {
		t.Fatal("window too large should return nil")
	}
	if got := s.MatrixProfile(1); got != nil {
		t.Fatal("window < 2 should return nil")
	}
}

func TestMotifsFindPlantedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 300
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 0.3
	}
	shape := []float64{0, 2, 4, 6, 4, 2, 0, -2, -4, -2}
	copy(vals[50:], shape)
	copy(vals[200:], shape)
	s := FromSamples("m", 0, 1, vals)
	motifs := s.Motifs(len(shape), 1)
	if len(motifs) != 1 {
		t.Fatalf("motifs=%v", motifs)
	}
	mo := motifs[0]
	near := func(x, want int) bool { return abs(x-want) <= 2 }
	ok := (near(mo.A, 50) && near(mo.B, 200)) || (near(mo.A, 200) && near(mo.B, 50))
	if !ok {
		t.Fatalf("motif pair (%d,%d), want (50,200)", mo.A, mo.B)
	}
	if mo.Dist > 1 {
		t.Fatalf("motif distance %v too large", mo.Dist)
	}
}

func TestMotifsExclusionZone(t *testing.T) {
	// Smooth sine: trivially-overlapping windows must not form the motif pair.
	n := 200
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i) / 30)
	}
	s := FromSamples("sm", 0, 1, vals)
	m := 20
	for _, mo := range s.Motifs(m, 3) {
		if abs(mo.A-mo.B) <= m/2 {
			t.Fatalf("trivial match pair (%d,%d) with m=%d", mo.A, mo.B, m)
		}
	}
}

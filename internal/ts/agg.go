package ts

import (
	"fmt"
	"math"
	"sort"
)

// AggFunc identifies an aggregation over a window of values. The same
// vocabulary is used by resampling, rolling windows, storage pushdown
// (internal/storage/tsstore) and the HyQL ts.* functions.
type AggFunc int

// Supported aggregation functions.
const (
	AggMean AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggCount
	AggFirst
	AggLast
	AggStd
	AggMedian
)

// String returns the lower-case name of the aggregation.
func (a AggFunc) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggFirst:
		return "first"
	case AggLast:
		return "last"
	case AggStd:
		return "std"
	case AggMedian:
		return "median"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// ParseAggFunc resolves an aggregation name as used in HyQL and CLI flags.
func ParseAggFunc(name string) (AggFunc, error) {
	switch name {
	case "mean", "avg":
		return AggMean, nil
	case "sum":
		return AggSum, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "count":
		return AggCount, nil
	case "first":
		return AggFirst, nil
	case "last":
		return AggLast, nil
	case "std", "stddev":
		return AggStd, nil
	case "median":
		return AggMedian, nil
	}
	return 0, fmt.Errorf("ts: unknown aggregation %q", name)
}

// Apply computes the aggregation over vals. Empty input yields NaN except
// for count and sum, which yield 0.
func (a AggFunc) Apply(vals []float64) float64 {
	switch a {
	case AggCount:
		return float64(len(vals))
	case AggSum:
		return sum(vals)
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	switch a {
	case AggMean:
		return sum(vals) / float64(len(vals))
	case AggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case AggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case AggFirst:
		return vals[0]
	case AggLast:
		return vals[len(vals)-1]
	case AggStd:
		return std(vals)
	case AggMedian:
		return median(vals)
	default:
		return math.NaN()
	}
}

func sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	return sum(vals) / float64(len(vals))
}

// std is the population standard deviation.
func std(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	mu := mean(vals)
	var acc float64
	for _, v := range vals {
		d := v - mu
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(vals)))
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	tmp := append([]float64(nil), vals...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Mean returns the arithmetic mean of all values (NaN if empty).
func (s *Series) Mean() float64 { return mean(s.vals) }

// Sum returns the sum of all values.
func (s *Series) Sum() float64 { return sum(s.vals) }

// Min returns the minimum value (NaN if empty).
func (s *Series) Min() float64 { return AggMin.Apply(s.vals) }

// Max returns the maximum value (NaN if empty).
func (s *Series) Max() float64 { return AggMax.Apply(s.vals) }

// Std returns the population standard deviation (NaN if empty).
func (s *Series) Std() float64 { return std(s.vals) }

// Median returns the median value (NaN if empty).
func (s *Series) Median() float64 { return median(s.vals) }

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics.
func (s *Series) Quantile(q float64) float64 {
	if len(s.vals) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	tmp := append([]float64(nil), s.vals...)
	sort.Float64s(tmp)
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo]
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// Aggregate applies an AggFunc over the whole series.
func (s *Series) Aggregate(f AggFunc) float64 { return f.Apply(s.vals) }

// AggregateRange applies an AggFunc over the window start <= t < end without
// copying values.
func (s *Series) AggregateRange(f AggFunc, start, end Time) float64 {
	lo := s.searchTime(start)
	hi := s.searchTime(end)
	return f.Apply(s.vals[lo:hi])
}

// Rolling applies f over a sliding window of the given length (in points)
// and returns a series stamped at each window's last timestamp.
func (s *Series) Rolling(window int, f AggFunc) *Series {
	out := New(fmt.Sprintf("%s_%s%d", s.name, f, window))
	if window <= 0 || s.Len() < window {
		return out
	}
	for i := window; i <= s.Len(); i++ {
		out.times = append(out.times, s.times[i-1])
		out.vals = append(out.vals, f.Apply(s.vals[i-window:i]))
	}
	return out
}

// RollingDuration applies f over a trailing time window of the given
// duration ending at each observation (inclusive).
func (s *Series) RollingDuration(window Time, f AggFunc) *Series {
	out := New(fmt.Sprintf("%s_%s", s.name, f))
	lo := 0
	for i := range s.times {
		for s.times[lo] <= s.times[i]-window {
			lo++
		}
		out.times = append(out.times, s.times[i])
		out.vals = append(out.vals, f.Apply(s.vals[lo:i+1]))
	}
	return out
}

// ZNormalize returns the series standardized to zero mean and unit variance.
// A constant series normalizes to all zeros.
func (s *Series) ZNormalize() *Series {
	out := s.Clone()
	znormInPlace(out.vals)
	return out
}

func znormInPlace(vals []float64) {
	mu := mean(vals)
	sd := std(vals)
	for i := range vals {
		if sd == 0 || math.IsNaN(sd) {
			vals[i] = 0
		} else {
			vals[i] = (vals[i] - mu) / sd
		}
	}
}

package ts

import (
	"testing"
)

func TestMultiSeriesBasics(t *testing.T) {
	m := MustNewMulti("cc", "amount", "balance")
	if m.Arity() != 2 || m.Len() != 0 {
		t.Fatalf("fresh multiseries: k=%d n=%d", m.Arity(), m.Len())
	}
	m.MustAppend(10, 100, 900)
	m.MustAppend(20, 50, 850)
	if m.Len() != 2 {
		t.Fatalf("len=%d", m.Len())
	}
	tup := m.Tuple(1)
	if tup[0] != 50 || tup[1] != 850 {
		t.Fatalf("tuple=%v", tup)
	}
	if m.Start() != 10 || m.End() != 20 {
		t.Fatalf("range %v..%v", m.Start(), m.End())
	}
}

func TestMultiSeriesErrors(t *testing.T) {
	if _, err := NewMulti("dup", "x", "x"); err == nil {
		t.Fatal("duplicate variable accepted")
	}
	m := MustNewMulti("m", "x", "y")
	if err := m.Append(10, 1); err != ErrArity {
		t.Fatalf("arity: %v", err)
	}
	m.MustAppend(10, 1, 2)
	if err := m.Append(10, 3, 4); err != ErrOutOfOrder {
		t.Fatalf("order: %v", err)
	}
}

func TestMultiSeriesVarExtraction(t *testing.T) {
	m := MustNewMulti("cc", "amount", "balance")
	m.MustAppend(10, 100, 900)
	m.MustAppend(20, 50, 850)
	b := m.MustVar("balance")
	if b.Name() != "cc.balance" {
		t.Fatalf("var name=%q", b.Name())
	}
	if b.Len() != 2 || b.ValueAt(0) != 900 || b.ValueAt(1) != 850 {
		t.Fatalf("var values: %v", b.Points())
	}
	if _, ok := m.Var("nope"); ok {
		t.Fatal("missing variable found")
	}
	// Extraction copies: mutating the extraction must not touch the parent.
	b.vals[0] = -1
	if m.Tuple(0)[1] == -1 {
		t.Fatal("Var aliases parent")
	}
}

func TestMultiSeriesSliceCloneEqual(t *testing.T) {
	m := MustNewMulti("m", "x", "y")
	for i := 0; i < 10; i++ {
		m.MustAppend(Time(i)*10, float64(i), float64(-i))
	}
	sl := m.Slice(20, 50)
	if sl.Len() != 3 || sl.TimeAt(0) != 20 {
		t.Fatalf("slice: n=%d first=%d", sl.Len(), sl.TimeAt(0))
	}
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.cols[0][0] = 99
	if m.Equal(c) {
		t.Fatal("mutated clone equal")
	}
}

func TestCombine(t *testing.T) {
	a := FromSamples("a", 0, 10, []float64{1, 2, 3})
	b := FromSamples("b", 0, 10, []float64{4, 5, 6})
	m, err := Combine("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Arity() != 2 || m.Len() != 3 {
		t.Fatalf("combined k=%d n=%d", m.Arity(), m.Len())
	}
	if got := m.MustVar("b"); got.ValueAt(2) != 6 {
		t.Fatalf("combined var: %v", got.Points())
	}
	// Mismatched lengths.
	if _, err := Combine("x", a, FromSamples("c", 0, 10, []float64{1})); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Mismatched timestamps.
	if _, err := Combine("x", a, FromSamples("c", 5, 10, []float64{1, 2, 3})); err == nil {
		t.Fatal("timestamp mismatch accepted")
	}
	// Empty combine.
	e, err := Combine("empty")
	if err != nil || e.Arity() != 0 {
		t.Fatalf("empty combine: %v %v", e, err)
	}
}

func TestMultiSeriesUpsert(t *testing.T) {
	m := MustNewMulti("m", "x", "y")
	m.MustAppend(10, 1, 2)
	m.MustAppend(30, 3, 4)
	// Insert in the middle.
	if err := m.Upsert(20, 9, 8); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 || m.TimeAt(1) != 20 {
		t.Fatalf("after insert: n=%d times=%v", m.Len(), m.TimeAt(1))
	}
	tup := m.Tuple(1)
	if tup[0] != 9 || tup[1] != 8 {
		t.Fatalf("inserted tuple=%v", tup)
	}
	// Replace an existing timestamp.
	if err := m.Upsert(10, -1, -2); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("replace changed length to %d", m.Len())
	}
	if got := m.Tuple(0); got[0] != -1 || got[1] != -2 {
		t.Fatalf("replaced tuple=%v", got)
	}
	// Arity checked.
	if err := m.Upsert(40, 1); err != ErrArity {
		t.Fatalf("arity: %v", err)
	}
	// Timestamps stay sorted after many upserts.
	for _, tt := range []Time{5, 35, 15, 25} {
		if err := m.Upsert(tt, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < m.Len(); i++ {
		if m.TimeAt(i) <= m.TimeAt(i-1) {
			t.Fatal("times not strictly increasing")
		}
	}
}

package ts

import "math"

// Segment is one piece of a segmentation: the half-open point-index range
// [Lo, Hi) with its mean value and the corresponding time span.
type Segment struct {
	Lo, Hi     int
	Start, End Time // Start = time of first point, End = time of last point
	Mean       float64
	Cost       float64 // sum of squared residuals within the segment
}

// Segmentize splits the series into at most maxSegments pieces using greedy
// top-down binary segmentation on squared-error cost: repeatedly split the
// segment whose best split reduces total cost the most, stopping early when
// the best relative improvement falls below minGain (e.g. 0.01 for 1%).
// This implements the paper's Q4 time-series primitive (segmentation,
// Table 2); core.SegmentSnapshots pairs the returned breakpoints with TPG
// snapshots.
func (s *Series) Segmentize(maxSegments int, minGain float64) []Segment {
	n := s.Len()
	if n == 0 || maxSegments <= 0 {
		return nil
	}
	// Prefix sums for O(1) segment cost.
	ps := make([]float64, n+1)  // sum of values
	ps2 := make([]float64, n+1) // sum of squares
	for i, v := range s.vals {
		ps[i+1] = ps[i] + v
		ps2[i+1] = ps2[i] + v*v
	}
	cost := func(lo, hi int) float64 { // SSE of vals[lo:hi] about its mean
		c := float64(hi - lo)
		if c == 0 {
			return 0
		}
		su := ps[hi] - ps[lo]
		return (ps2[hi] - ps2[lo]) - su*su/c
	}
	type piece struct{ lo, hi int }
	pieces := []piece{{0, n}}
	total := cost(0, n)
	for len(pieces) < maxSegments {
		bestGain := 0.0
		bestPiece, bestSplit := -1, -1
		for pi, p := range pieces {
			if p.hi-p.lo < 2 {
				continue
			}
			base := cost(p.lo, p.hi)
			for k := p.lo + 1; k < p.hi; k++ {
				if g := base - cost(p.lo, k) - cost(k, p.hi); g > bestGain {
					bestGain = g
					bestPiece = pi
					bestSplit = k
				}
			}
		}
		if bestPiece < 0 {
			break
		}
		if total > 0 && bestGain/total < minGain {
			break
		}
		p := pieces[bestPiece]
		pieces[bestPiece] = piece{p.lo, bestSplit}
		pieces = append(pieces, piece{bestSplit, p.hi})
		total -= bestGain
		if total < 0 {
			total = 0
		}
	}
	// Order pieces by position and materialize.
	ordered := make([]Segment, 0, len(pieces))
	for _, p := range pieces {
		ordered = append(ordered, Segment{
			Lo: p.lo, Hi: p.hi,
			Start: s.times[p.lo], End: s.times[p.hi-1],
			Mean: (ps[p.hi] - ps[p.lo]) / float64(p.hi-p.lo),
			Cost: cost(p.lo, p.hi),
		})
	}
	sortSegments(ordered)
	return ordered
}

func sortSegments(segs []Segment) {
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].Lo < segs[j-1].Lo; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}

// Breakpoints returns the timestamps at which a new segment begins
// (excluding the very first segment), i.e. the "significant time intervals"
// the paper's Q4 operator snapshots at.
func Breakpoints(segs []Segment) []Time {
	var out []Time
	for i := 1; i < len(segs); i++ {
		out = append(out, segs[i].Start)
	}
	return out
}

// Trend fits an ordinary least squares line v = a + b·x over the point
// indexes and returns intercept a and slope b (per point step). Slope is the
// basic "trend" feature used for classification (Table 2, C1).
func (s *Series) Trend() (intercept, slope float64) {
	n := float64(s.Len())
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	if n == 1 {
		return s.vals[0], 0
	}
	var sx, sy, sxx, sxy float64
	for i, v := range s.vals {
		x := float64(i)
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return intercept, slope
}

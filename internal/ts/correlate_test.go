package ts

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonKnownValues(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if r := Pearson(a, a); !almost(r, 1, 1e-12) {
		t.Fatalf("self correlation=%v", r)
	}
	b := []float64{5, 4, 3, 2, 1}
	if r := Pearson(a, b); !almost(r, -1, 1e-12) {
		t.Fatalf("anti correlation=%v", r)
	}
	if r := Pearson(a, []float64{7, 7, 7, 7, 7}); !math.IsNaN(r) {
		t.Fatalf("constant side should be NaN, got %v", r)
	}
	if r := Pearson(a, []float64{1, 2}); !math.IsNaN(r) {
		t.Fatalf("length mismatch should be NaN, got %v", r)
	}
}

func TestCorrelationAligned(t *testing.T) {
	a := FromSamples("a", 0, 10, []float64{1, 2, 3, 4, 5, 6})
	b := a.Map(func(v float64) float64 { return 3*v - 1 })
	b.SetName("b")
	if r := Correlation(a, b, 10); !almost(r, 1, 1e-9) {
		t.Fatalf("affine correlation=%v", r)
	}
	// Disjoint time ranges → no shared buckets → NaN.
	c := FromSamples("c", 10000, 10, []float64{1, 2, 3})
	if r := Correlation(a, c, 10); !math.IsNaN(r) {
		t.Fatalf("disjoint correlation=%v", r)
	}
}

func TestCrossCorrelationFindsLag(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	base := make([]float64, n+5)
	for i := range base {
		base[i] = math.Sin(float64(i)/7) + 0.05*rng.NormFloat64()
	}
	a := FromSamples("a", 0, 1, base[:n])
	bb := FromSamples("b", 0, 1, base[3:n+3]) // b leads a by 3 buckets
	lag, r := BestLag(a, bb, 1, 6)
	if lag != -3 && lag != 3 {
		t.Fatalf("best lag=%d (r=%v), want ±3", lag, r)
	}
	if math.Abs(r) < 0.9 {
		t.Fatalf("best correlation too weak: %v", r)
	}
}

func TestCrossCorrelationShape(t *testing.T) {
	a := FromSamples("a", 0, 1, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	cc := CrossCorrelation(a, a, 1, 2)
	if len(cc) != 5 {
		t.Fatalf("len=%d want 5", len(cc))
	}
	if !almost(cc[2], 1, 1e-12) { // lag 0
		t.Fatalf("lag0=%v", cc[2])
	}
}

func TestAutoCorrelation(t *testing.T) {
	// Period-4 square wave → strong positive ACF at lag 4, negative at lag 2.
	vals := make([]float64, 64)
	for i := range vals {
		if i%4 < 2 {
			vals[i] = 1
		} else {
			vals[i] = -1
		}
	}
	s := FromSamples("sq", 0, 1, vals)
	acf := s.AutoCorrelation(2, 4)
	if acf[0] > -0.9 {
		t.Fatalf("acf(2)=%v want strongly negative", acf[0])
	}
	if acf[1] < 0.9 {
		t.Fatalf("acf(4)=%v want strongly positive", acf[1])
	}
}

// Property: Pearson is symmetric, bounded in [-1,1], and invariant under
// positive affine transforms.
func TestQuickPearsonProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		n := 3 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r := Pearson(a, b)
		if math.IsNaN(r) {
			continue
		}
		if r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("r=%v out of range", r)
		}
		if !almost(Pearson(b, a), r, 1e-12) {
			t.Fatal("pearson asymmetric")
		}
		scaled := make([]float64, n)
		for i := range a {
			scaled[i] = 2.5*a[i] + 7
		}
		if !almost(Pearson(scaled, b), r, 1e-9) {
			t.Fatal("pearson not affine invariant")
		}
	}
}

// Degenerate inputs must never yield a value a caller could mistake for a
// real correlation: constant series, disjoint series, empty series, and
// invalid parameters all surface as NaN or nil, and BestLag's all-NaN case
// is r=NaN — not "r=0 at lag 0", which reads as perfectly uncorrelated.
func TestCorrelateDegenerateInputs(t *testing.T) {
	mk := func(start Time, vals ...float64) *Series {
		s := New("s")
		for i, v := range vals {
			s.MustAppend(start+Time(i)*10, v)
		}
		return s
	}
	ramp := mk(0, 1, 2, 3, 4, 5, 6, 7, 8)
	flat := mk(0, 5, 5, 5, 5, 5, 5, 5, 5)
	far := mk(100000, 1, 2, 3, 4) // no shared buckets with ramp
	empty := New("empty")

	cases := []struct {
		name string
		a, b *Series
	}{
		{"constant side", ramp, flat},
		{"both constant", flat, flat},
		{"disjoint", ramp, far},
		{"empty side", ramp, empty},
		{"both empty", empty, empty},
	}
	for _, tc := range cases {
		if r := Correlation(tc.a, tc.b, 10); !math.IsNaN(r) {
			t.Errorf("Correlation %s: got %v, want NaN", tc.name, r)
		}
		lag, r := BestLag(tc.a, tc.b, 10, 2)
		if !math.IsNaN(r) {
			t.Errorf("BestLag %s: r=%v, want NaN", tc.name, r)
		}
		if lag != 0 {
			t.Errorf("BestLag %s: lag=%d, want 0 placeholder", tc.name, lag)
		}
	}

	// CrossCorrelation guards: negative maxLag and empty alignments yield
	// nil, never a window of garbage.
	if cc := CrossCorrelation(ramp, ramp, 10, -1); cc != nil {
		t.Errorf("negative maxLag: got %v, want nil", cc)
	}
	if cc := CrossCorrelation(ramp, far, 10, 2); cc != nil {
		t.Errorf("disjoint series: got %v, want nil", cc)
	}
	if cc := CrossCorrelation(empty, empty, 10, 2); cc != nil {
		t.Errorf("empty series: got %v, want nil", cc)
	}
	if cc := CrossCorrelation(ramp, ramp, 0, 2); cc != nil {
		t.Errorf("non-positive bucket: got %v, want nil", cc)
	}
	// Constant series still produce the window (alignment is non-empty);
	// every lag is NaN.
	if cc := CrossCorrelation(ramp, flat, 10, 2); len(cc) != 5 {
		t.Errorf("constant side window: %v", cc)
	} else {
		for i, v := range cc {
			if !math.IsNaN(v) {
				t.Errorf("constant side lag %d: %v, want NaN", i-2, v)
			}
		}
	}
	// A healthy pair is unaffected by the guards. (Not a ramp: every lag of
	// a ramp against itself is still perfectly linear, which ties at |r|=1.)
	wavy := mk(0, 1, 5, 2, 8, 3, 9, 4, 7)
	if lag, r := BestLag(wavy, wavy, 10, 2); lag != 0 || math.Abs(r-1) > 1e-12 {
		t.Errorf("identical series: lag=%d r=%v", lag, r)
	}
}

package ts

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonKnownValues(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if r := Pearson(a, a); !almost(r, 1, 1e-12) {
		t.Fatalf("self correlation=%v", r)
	}
	b := []float64{5, 4, 3, 2, 1}
	if r := Pearson(a, b); !almost(r, -1, 1e-12) {
		t.Fatalf("anti correlation=%v", r)
	}
	if r := Pearson(a, []float64{7, 7, 7, 7, 7}); !math.IsNaN(r) {
		t.Fatalf("constant side should be NaN, got %v", r)
	}
	if r := Pearson(a, []float64{1, 2}); !math.IsNaN(r) {
		t.Fatalf("length mismatch should be NaN, got %v", r)
	}
}

func TestCorrelationAligned(t *testing.T) {
	a := FromSamples("a", 0, 10, []float64{1, 2, 3, 4, 5, 6})
	b := a.Map(func(v float64) float64 { return 3*v - 1 })
	b.SetName("b")
	if r := Correlation(a, b, 10); !almost(r, 1, 1e-9) {
		t.Fatalf("affine correlation=%v", r)
	}
	// Disjoint time ranges → no shared buckets → NaN.
	c := FromSamples("c", 10000, 10, []float64{1, 2, 3})
	if r := Correlation(a, c, 10); !math.IsNaN(r) {
		t.Fatalf("disjoint correlation=%v", r)
	}
}

func TestCrossCorrelationFindsLag(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	base := make([]float64, n+5)
	for i := range base {
		base[i] = math.Sin(float64(i)/7) + 0.05*rng.NormFloat64()
	}
	a := FromSamples("a", 0, 1, base[:n])
	bb := FromSamples("b", 0, 1, base[3:n+3]) // b leads a by 3 buckets
	lag, r := BestLag(a, bb, 1, 6)
	if lag != -3 && lag != 3 {
		t.Fatalf("best lag=%d (r=%v), want ±3", lag, r)
	}
	if math.Abs(r) < 0.9 {
		t.Fatalf("best correlation too weak: %v", r)
	}
}

func TestCrossCorrelationShape(t *testing.T) {
	a := FromSamples("a", 0, 1, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	cc := CrossCorrelation(a, a, 1, 2)
	if len(cc) != 5 {
		t.Fatalf("len=%d want 5", len(cc))
	}
	if !almost(cc[2], 1, 1e-12) { // lag 0
		t.Fatalf("lag0=%v", cc[2])
	}
}

func TestAutoCorrelation(t *testing.T) {
	// Period-4 square wave → strong positive ACF at lag 4, negative at lag 2.
	vals := make([]float64, 64)
	for i := range vals {
		if i%4 < 2 {
			vals[i] = 1
		} else {
			vals[i] = -1
		}
	}
	s := FromSamples("sq", 0, 1, vals)
	acf := s.AutoCorrelation(2, 4)
	if acf[0] > -0.9 {
		t.Fatalf("acf(2)=%v want strongly negative", acf[0])
	}
	if acf[1] < 0.9 {
		t.Fatalf("acf(4)=%v want strongly positive", acf[1])
	}
}

// Property: Pearson is symmetric, bounded in [-1,1], and invariant under
// positive affine transforms.
func TestQuickPearsonProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		n := 3 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r := Pearson(a, b)
		if math.IsNaN(r) {
			continue
		}
		if r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("r=%v out of range", r)
		}
		if !almost(Pearson(b, a), r, 1e-12) {
			t.Fatal("pearson asymmetric")
		}
		scaled := make([]float64, n)
		for i := range a {
			scaled[i] = 2.5*a[i] + 7
		}
		if !almost(Pearson(scaled, b), r, 1e-9) {
			t.Fatal("pearson not affine invariant")
		}
	}
}

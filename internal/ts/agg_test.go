package ts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestAggregations(t *testing.T) {
	s := FromSamples("a", 0, 1, []float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Mean(); !almost(got, 5, 1e-12) {
		t.Fatalf("mean=%v", got)
	}
	if got := s.Std(); !almost(got, 2, 1e-12) {
		t.Fatalf("std=%v", got)
	}
	if s.Min() != 2 || s.Max() != 9 || s.Sum() != 40 {
		t.Fatalf("min/max/sum = %v/%v/%v", s.Min(), s.Max(), s.Sum())
	}
	if got := s.Median(); !almost(got, 4.5, 1e-12) {
		t.Fatalf("median=%v", got)
	}
}

func TestAggFuncApplyTable(t *testing.T) {
	vals := []float64{3, 1, 2}
	cases := []struct {
		f    AggFunc
		want float64
	}{
		{AggMean, 2}, {AggSum, 6}, {AggMin, 1}, {AggMax, 3},
		{AggCount, 3}, {AggFirst, 3}, {AggLast, 2}, {AggMedian, 2},
	}
	for _, c := range cases {
		if got := c.f.Apply(vals); !almost(got, c.want, 1e-12) {
			t.Errorf("%s(%v)=%v want %v", c.f, vals, got, c.want)
		}
	}
	if got := AggStd.Apply([]float64{1, 1, 1}); got != 0 {
		t.Errorf("std of constant = %v", got)
	}
	// Empty input conventions.
	if got := AggCount.Apply(nil); got != 0 {
		t.Errorf("count(nil)=%v", got)
	}
	if got := AggSum.Apply(nil); got != 0 {
		t.Errorf("sum(nil)=%v", got)
	}
	if got := AggMean.Apply(nil); !math.IsNaN(got) {
		t.Errorf("mean(nil)=%v want NaN", got)
	}
}

func TestParseAggFuncRoundTrip(t *testing.T) {
	for _, f := range []AggFunc{AggMean, AggSum, AggMin, AggMax, AggCount, AggFirst, AggLast, AggStd, AggMedian} {
		got, err := ParseAggFunc(f.String())
		if err != nil || got != f {
			t.Errorf("round trip %v: got %v err %v", f, got, err)
		}
	}
	if _, err := ParseAggFunc("bogus"); err == nil {
		t.Error("bogus aggregation accepted")
	}
	if got, _ := ParseAggFunc("avg"); got != AggMean {
		t.Error("avg alias broken")
	}
}

func TestQuantile(t *testing.T) {
	s := FromSamples("a", 0, 1, []float64{1, 2, 3, 4})
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0=%v", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Fatalf("q1=%v", got)
	}
	if got := s.Quantile(0.5); !almost(got, 2.5, 1e-12) {
		t.Fatalf("q.5=%v", got)
	}
	if got := s.Quantile(-0.1); !math.IsNaN(got) {
		t.Fatalf("q(-0.1)=%v want NaN", got)
	}
}

func TestAggregateRange(t *testing.T) {
	s := FromSamples("a", 0, 10, []float64{1, 2, 3, 4, 5})
	if got := s.AggregateRange(AggSum, 10, 40); got != 9 { // points at 10,20,30
		t.Fatalf("sum[10,40)=%v", got)
	}
	if got := s.AggregateRange(AggCount, 100, 200); got != 0 {
		t.Fatalf("count of empty range=%v", got)
	}
}

func TestRollingWindows(t *testing.T) {
	s := FromSamples("a", 0, 1, []float64{1, 2, 3, 4})
	r := s.Rolling(2, AggMean)
	if r.Len() != 3 {
		t.Fatalf("rolling len=%d", r.Len())
	}
	want := []float64{1.5, 2.5, 3.5}
	for i, w := range want {
		if !almost(r.ValueAt(i), w, 1e-12) {
			t.Fatalf("rolling[%d]=%v want %v", i, r.ValueAt(i), w)
		}
	}
	if got := s.Rolling(10, AggMean); got.Len() != 0 {
		t.Fatal("window larger than series should be empty")
	}
	rd := s.RollingDuration(2, AggSum) // trailing 2ms window
	if rd.Len() != 4 {
		t.Fatalf("rollingDuration len=%d", rd.Len())
	}
	// At t=3: window (1,3] contains points at t=2,3 → 3+4=7.
	if got := rd.ValueAt(3); got != 7 {
		t.Fatalf("rollingDuration[3]=%v want 7", got)
	}
}

func TestZNormalize(t *testing.T) {
	s := FromSamples("a", 0, 1, []float64{1, 2, 3, 4, 5})
	z := s.ZNormalize()
	if !almost(z.Mean(), 0, 1e-12) || !almost(z.Std(), 1, 1e-12) {
		t.Fatalf("znorm mean=%v std=%v", z.Mean(), z.Std())
	}
	c := FromSamples("c", 0, 1, []float64{7, 7, 7})
	zc := c.ZNormalize()
	for _, v := range zc.Values() {
		if v != 0 {
			t.Fatalf("constant znorm has %v", v)
		}
	}
}

// Property: min <= mean <= max, median within [min,max], std >= 0.
func TestQuickAggregateBounds(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			// Keep magnitudes bounded so sums cannot overflow; the property
			// is about ordering, not extreme-value arithmetic.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := FromSamples("q", 0, 1, clean)
		mn, mx, mu := s.Min(), s.Max(), s.Mean()
		med := s.Median()
		return mn <= mx && mu >= mn-1e-9 && mu <= mx+1e-9 &&
			med >= mn && med <= mx && s.Std() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: rolling sum over the full window equals total sum.
func TestQuickRollingFullWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		s := FromSamples("q", 0, 1, vals)
		r := s.Rolling(n, AggSum)
		if r.Len() != 1 || !almost(r.ValueAt(0), s.Sum(), 1e-9) {
			t.Fatalf("full-window rolling sum %v != %v", r.Points(), s.Sum())
		}
	}
}

package ts

import (
	"fmt"
	"sort"
)

// ContAgg maintains the resampled view of one series incrementally: the
// continuous-aggregate core shared by the tsstore resample cache and the
// stream layer's materialized aggregates. The materialized output is, at
// every quiescent point, element-wise identical to
// raw.Resample(width, agg) over the observed points — not merely within
// tolerance. Exactness comes from preserving fold order:
//
//   - A point past the watermark (a tail append) extends the per-bucket
//     left fold Apply performs: sum/count/mean accumulate the same
//     additions in the same order, min/max continue the same comparison
//     chain (including NaN poisoning), first is fixed, last is replaced.
//     These are the O(1) delta aggregates.
//   - A point at or before the watermark (upsert or out-of-order insert)
//     lands mid-fold, so the owning bucket — and only that bucket — is
//     marked dirty; Finalize replays Apply over the bucket's points in
//     time order, restoring exactness with a bucket-local rescan.
//   - std and median are not decomposable, so any second point in a
//     bucket marks it dirty; a single-point bucket is exact immediately.
//
// ContAgg never reads the underlying store itself: the owner rescans dirty
// buckets (under whatever lock it already holds) and feeds the values back
// through Finalize. Zero-width aggregators ignore all input.
type ContAgg struct {
	width Time
	agg   AggFunc
	out   *Series
	// counts and sums carry the per-bucket fold state parallel to out.
	// sums is the running left fold Apply(AggMean) divides; counts the
	// point count. Both are rebuilt by Finalize for dirty buckets.
	counts []int
	sums   []float64
	wm     Time // largest observed timestamp; valid when hasWM
	hasWM  bool
	dirty  map[Time]struct{}
	one    [1]float64 // scratch for Apply on a single new point
}

// NewContAgg returns an empty aggregator over buckets of the given width.
// name is the raw series name; the materialized view takes the same
// "<name>_per_<width>ms" name Resample produces.
func NewContAgg(name string, width Time, agg AggFunc) *ContAgg {
	return &ContAgg{
		width: width,
		agg:   agg,
		out:   New(fmt.Sprintf("%s_per_%dms", name, width)),
	}
}

// Seed resets the aggregator and materializes raw's resampled view with
// full per-bucket fold state, as if every point had been observed in
// order. The view equals raw.Resample(width, agg) exactly.
func (c *ContAgg) Seed(raw *Series) {
	c.out = New(fmt.Sprintf("%s_per_%dms", raw.name, c.width))
	c.counts = c.counts[:0]
	c.sums = c.sums[:0]
	c.dirty = nil
	c.hasWM = false
	if c.width <= 0 || raw.Len() == 0 {
		return
	}
	start := 0
	cur := BucketStart(raw.times[0], c.width)
	flush := func(hi int) {
		if hi > start {
			vals := raw.vals[start:hi]
			c.out.times = append(c.out.times, cur)
			c.out.vals = append(c.out.vals, c.agg.Apply(vals))
			c.counts = append(c.counts, len(vals))
			c.sums = append(c.sums, sum(vals))
		}
		start = hi
	}
	for i, t := range raw.times {
		if b := BucketStart(t, c.width); b != cur {
			flush(i)
			cur = b
		}
	}
	flush(raw.Len())
	c.wm = raw.times[raw.Len()-1]
	c.hasWM = true
}

// Observe routes one applied write into its bucket. It returns true when
// the materialized value stayed exact (an O(1) delta or an exact new
// bucket), false when the bucket was marked dirty and needs Finalize
// before the next read. The caller must route every point of the
// underlying series (within its window) through Observe — the "missing
// bucket means empty bucket" invariant is what makes backfill into a gap
// exact without a rescan.
func (c *ContAgg) Observe(t Time, v float64) bool {
	if c.width <= 0 {
		return true
	}
	b := BucketStart(t, c.width)
	if !c.hasWM || t > c.wm {
		c.wm, c.hasWM = t, true
		n := c.out.Len()
		if n == 0 || b > c.out.times[n-1] {
			c.appendBucket(b, v)
			return true
		}
		// t > wm implies b >= the last bucket, so this is a tail append
		// into the newest bucket: the delta recurrences continue Apply's
		// fold exactly.
		i := n - 1
		c.counts[i]++
		c.sums[i] += v
		switch c.agg {
		case AggCount:
			c.out.vals[i]++
		case AggSum:
			c.out.vals[i] += v
		case AggMean:
			c.out.vals[i] = c.sums[i] / float64(c.counts[i])
		case AggMin:
			if v < c.out.vals[i] {
				c.out.vals[i] = v
			}
		case AggMax:
			if v > c.out.vals[i] {
				c.out.vals[i] = v
			}
		case AggFirst:
			// first is fixed once the bucket exists
		case AggLast:
			c.out.vals[i] = v
		default: // std, median: not decomposable
			c.markDirty(b)
			return false
		}
		return true
	}
	// Upsert or out-of-order: the point lands mid-fold.
	i := sort.Search(c.out.Len(), func(k int) bool { return c.out.times[k] >= b })
	if i == c.out.Len() || c.out.times[i] != b {
		// The bucket was empty, so the new point is its only point and
		// Apply over a single value is exact.
		c.insertBucket(i, b, v)
		return true
	}
	c.markDirty(b)
	return false
}

// appendBucket materializes a new trailing bucket holding exactly v.
func (c *ContAgg) appendBucket(b Time, v float64) {
	c.one[0] = v
	c.out.times = append(c.out.times, b)
	c.out.vals = append(c.out.vals, c.agg.Apply(c.one[:]))
	c.counts = append(c.counts, 1)
	c.sums = append(c.sums, v)
}

// insertBucket materializes a new bucket at position i holding exactly v.
func (c *ContAgg) insertBucket(i int, b Time, v float64) {
	c.one[0] = v
	c.out.times = append(c.out.times, 0)
	copy(c.out.times[i+1:], c.out.times[i:])
	c.out.times[i] = b
	c.out.vals = append(c.out.vals, 0)
	copy(c.out.vals[i+1:], c.out.vals[i:])
	c.out.vals[i] = c.agg.Apply(c.one[:])
	c.counts = append(c.counts, 0)
	copy(c.counts[i+1:], c.counts[i:])
	c.counts[i] = 1
	c.sums = append(c.sums, 0)
	copy(c.sums[i+1:], c.sums[i:])
	c.sums[i] = v
}

func (c *ContAgg) markDirty(b Time) {
	if c.dirty == nil {
		c.dirty = make(map[Time]struct{})
	}
	c.dirty[b] = struct{}{}
}

// HasDirty reports whether any bucket awaits Finalize.
func (c *ContAgg) HasDirty() bool { return len(c.dirty) > 0 }

// DirtyBuckets returns the bucket starts awaiting Finalize in ascending
// order (deterministic for callers that fold over them).
func (c *ContAgg) DirtyBuckets() []Time {
	if len(c.dirty) == 0 {
		return nil
	}
	bs := make([]Time, 0, len(c.dirty))
	for b := range c.dirty {
		bs = append(bs, b)
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return bs
}

// Width returns the bucket width.
func (c *ContAgg) Width() Time { return c.width }

// Agg returns the aggregation function.
func (c *ContAgg) Agg() AggFunc { return c.agg }

// Watermark returns the largest observed timestamp; ok is false before the
// first point.
func (c *ContAgg) Watermark() (Time, bool) { return c.wm, c.hasWM }

// Finalize recomputes one dirty bucket from vals — the bucket's point
// values in time order, as rescanned by the owner. An empty rescan removes
// the bucket (the owner deleted its points).
func (c *ContAgg) Finalize(b Time, vals []float64) {
	delete(c.dirty, b)
	i := sort.Search(c.out.Len(), func(k int) bool { return c.out.times[k] >= b })
	present := i < c.out.Len() && c.out.times[i] == b
	if len(vals) == 0 {
		if present {
			c.out.times = append(c.out.times[:i], c.out.times[i+1:]...)
			c.out.vals = append(c.out.vals[:i], c.out.vals[i+1:]...)
			c.counts = append(c.counts[:i], c.counts[i+1:]...)
			c.sums = append(c.sums[:i], c.sums[i+1:]...)
		}
		return
	}
	if !present {
		c.insertBucket(i, b, vals[0])
	}
	c.out.vals[i] = c.agg.Apply(vals)
	c.counts[i] = len(vals)
	c.sums[i] = sum(vals)
}

// View returns the live materialized series. The caller owns the
// aggregator and must not read it while buckets are dirty or mutate the
// result; use Snapshot for an owned copy.
func (c *ContAgg) View() *Series { return c.out }

// Snapshot returns an owned copy of the materialized view.
func (c *ContAgg) Snapshot() *Series { return c.out.Clone() }

package ts

import (
	"math"
	"sort"
)

// MatrixProfile computes, for every window start i of length m, the
// z-normalized Euclidean distance to the most similar *non-trivially
// overlapping* window elsewhere in the series (exclusion zone m/2 around i).
// Small values indicate motifs, large values discords. This is the
// brute-force O(n²·m) profile — adequate for the scales the benchmarks use
// and dependency-free.
func (s *Series) MatrixProfile(m int) []float64 {
	n := s.Len()
	if m < 2 || n < 2*m {
		return nil
	}
	nw := n - m + 1
	// Precompute z-normalized windows once: O(n·m) memory traded for the
	// inner loop doing pure float math.
	norm := make([][]float64, nw)
	for i := 0; i < nw; i++ {
		w := append([]float64(nil), s.vals[i:i+m]...)
		znormInPlace(w)
		norm[i] = w
	}
	excl := m / 2
	mp := make([]float64, nw)
	for i := range mp {
		mp[i] = math.Inf(1)
	}
	for i := 0; i < nw; i++ {
		for j := i + excl + 1; j < nw; j++ {
			var acc float64
			wi, wj := norm[i], norm[j]
			for p := 0; p < m; p++ {
				d := wi[p] - wj[p]
				acc += d * d
			}
			d := math.Sqrt(acc)
			if d < mp[i] {
				mp[i] = d
			}
			if d < mp[j] {
				mp[j] = d
			}
		}
	}
	return mp
}

// Motif is one recurring pattern: the two closest windows (by z-normalized
// Euclidean distance) and all additional windows within 2× that distance.
type Motif struct {
	A, B      int // window starts of the defining pair
	Len       int // window length m
	Dist      float64
	Neighbors []int // other window starts within 2·Dist of window A
}

// Motifs returns the k best motifs of window length m, best (smallest
// defining distance) first. Windows of already-reported motifs are excluded
// from later ones. This is the paper's PM time-series primitive (Table 2).
func (s *Series) Motifs(m, k int) []Motif {
	n := s.Len()
	if m < 2 || n < 2*m || k <= 0 {
		return nil
	}
	nw := n - m + 1
	norm := make([][]float64, nw)
	for i := 0; i < nw; i++ {
		w := append([]float64(nil), s.vals[i:i+m]...)
		znormInPlace(w)
		norm[i] = w
	}
	excl := m / 2
	dist := func(i, j int) float64 {
		var acc float64
		wi, wj := norm[i], norm[j]
		for p := 0; p < m; p++ {
			d := wi[p] - wj[p]
			acc += d * d
		}
		return math.Sqrt(acc)
	}
	type pair struct {
		i, j int
		d    float64
	}
	var pairs []pair
	for i := 0; i < nw; i++ {
		for j := i + excl + 1; j < nw; j++ {
			pairs = append(pairs, pair{i, j, dist(i, j)})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].d < pairs[b].d })
	taken := make([]bool, nw)
	overlapTaken := func(w int) bool {
		for p := max(0, w-excl); p <= min(nw-1, w+excl); p++ {
			if taken[p] {
				return true
			}
		}
		return false
	}
	var out []Motif
	for _, p := range pairs {
		if len(out) >= k {
			break
		}
		if overlapTaken(p.i) || overlapTaken(p.j) {
			continue
		}
		mo := Motif{A: p.i, B: p.j, Len: m, Dist: p.d}
		for w := 0; w < nw; w++ {
			if w == p.i || w == p.j || overlapTaken(w) {
				continue
			}
			if abs(w-p.i) <= excl || abs(w-p.j) <= excl {
				continue
			}
			if dist(p.i, w) <= 2*p.d {
				mo.Neighbors = append(mo.Neighbors, w)
			}
		}
		taken[p.i] = true
		taken[p.j] = true
		out = append(out, mo)
	}
	return out
}

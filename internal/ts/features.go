package ts

import "math"

// FeatureNames lists, in order, the statistical features produced by
// Features. They are the "temporal FAT, trends" style descriptors the paper
// cites for time-series classification (Table 2, C1) and feed the hybrid
// embeddings of internal/embed.
var FeatureNames = []string{
	"mean", "std", "min", "max", "median",
	"iqr", "slope", "acf1", "acf24", "burstiness",
	"crossings", "entropy",
}

// NumFeatures is the length of the vector returned by Features.
const NumFeatures = 12

// Features extracts a fixed-length statistical feature vector from the
// series. An empty series yields a zero vector. All features are finite
// (NaNs from degenerate inputs are mapped to 0) so downstream ML never sees
// non-finite values.
func (s *Series) Features() []float64 {
	f := make([]float64, NumFeatures)
	if s.Len() == 0 {
		return f
	}
	_, slope := s.Trend()
	acf := s.AutoCorrelation(1, 24)
	f[0] = s.Mean()
	f[1] = s.Std()
	f[2] = s.Min()
	f[3] = s.Max()
	f[4] = s.Median()
	f[5] = s.Quantile(0.75) - s.Quantile(0.25)
	f[6] = slope
	f[7] = acf[0]
	f[8] = acf[1]
	f[9] = s.burstiness()
	f[10] = float64(s.meanCrossings())
	f[11] = s.binnedEntropy(10)
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			f[i] = 0
		}
	}
	return f
}

// burstiness is (σ−μ)/(σ+μ) of the inter-event magnitude proxy |diff|;
// near +1 for bursty signals, near −1 for periodic ones.
func (s *Series) burstiness() float64 {
	d := s.Diff()
	if d.Len() == 0 {
		return 0
	}
	absd := d.Map(math.Abs)
	mu := absd.Mean()
	sd := absd.Std()
	if mu+sd == 0 {
		return 0
	}
	return (sd - mu) / (sd + mu)
}

// meanCrossings counts sign changes of the mean-removed series.
func (s *Series) meanCrossings() int {
	mu := s.Mean()
	count := 0
	prev := 0.0
	for _, v := range s.vals {
		c := v - mu
		if prev*c < 0 {
			count++
		}
		if c != 0 {
			prev = c
		}
	}
	return count
}

// binnedEntropy is the Shannon entropy of the value histogram with the given
// number of equal-width bins, in nats.
func (s *Series) binnedEntropy(bins int) float64 {
	if s.Len() == 0 || bins < 2 {
		return 0
	}
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		return 0
	}
	counts := make([]int, bins)
	for _, v := range s.vals {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b == bins {
			b--
		}
		counts[b]++
	}
	var h float64
	n := float64(s.Len())
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	return h
}

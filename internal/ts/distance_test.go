package ts

import (
	"math"
	"math/rand"
	"testing"
)

func TestEuclideanDist(t *testing.T) {
	a := FromSamples("a", 0, 1, []float64{0, 0})
	b := FromSamples("b", 0, 1, []float64{3, 4})
	d, err := EuclideanDist(a, b)
	if err != nil || !almost(d, 5, 1e-12) {
		t.Fatalf("euclid=%v err=%v", d, err)
	}
	if _, err := EuclideanDist(a, FromSamples("c", 0, 1, []float64{1})); err != ErrLengthMismatch {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}

func TestZNormalizedDistShapeInvariance(t *testing.T) {
	a := FromSamples("a", 0, 1, []float64{1, 2, 3, 4, 5})
	// Same shape, scaled and shifted.
	b := a.Map(func(v float64) float64 { return 10*v + 100 })
	d, err := ZNormalizedDist(a, b)
	if err != nil || !almost(d, 0, 1e-9) {
		t.Fatalf("znorm dist of affine copy = %v err=%v", d, err)
	}
}

func TestDTWBasics(t *testing.T) {
	a := FromSamples("a", 0, 1, []float64{1, 2, 3})
	if d := DTW(a, a, -1); !almost(d, 0, 1e-12) {
		t.Fatalf("self DTW=%v", d)
	}
	// DTW <= Euclidean for equal lengths.
	b := FromSamples("b", 0, 1, []float64{2, 3, 5})
	eu, _ := EuclideanDist(a, b)
	if d := DTW(a, b, -1); d > eu+1e-12 {
		t.Fatalf("DTW %v > Euclid %v", d, eu)
	}
	// Time-shifted copies should be near zero under DTW.
	x := FromSamples("x", 0, 1, []float64{0, 0, 1, 2, 3, 0, 0})
	y := FromSamples("y", 0, 1, []float64{0, 1, 2, 3, 0, 0, 0})
	if d := DTW(x, y, -1); !almost(d, 0, 1e-9) {
		t.Fatalf("shifted DTW=%v", d)
	}
}

func TestDTWEmptyAndMismatched(t *testing.T) {
	e := New("e")
	if d := DTW(e, e, -1); d != 0 {
		t.Fatalf("DTW(empty,empty)=%v", d)
	}
	a := FromSamples("a", 0, 1, []float64{1})
	if d := DTW(e, a, -1); !math.IsInf(d, 1) {
		t.Fatalf("DTW(empty,nonempty)=%v", d)
	}
	// Different lengths are fine.
	b := FromSamples("b", 0, 1, []float64{1, 1, 1, 1})
	if d := DTW(a, b, -1); !almost(d, 0, 1e-12) {
		t.Fatalf("DTW const different lengths = %v", d)
	}
}

func TestDTWBandWidening(t *testing.T) {
	// Band narrower than the length difference must still connect corners.
	a := FromSamples("a", 0, 1, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	b := FromSamples("b", 0, 1, []float64{1, 8})
	if d := DTW(a, b, 1); math.IsInf(d, 1) {
		t.Fatal("banded DTW returned +Inf for valid alignment")
	}
}

// Property: DTW with unconstrained band <= banded DTW (more freedom can only
// reduce cost), and both are symmetric.
func TestQuickDTWProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(20)
		m := 2 + rng.Intn(20)
		av := make([]float64, n)
		bv := make([]float64, m)
		for i := range av {
			av[i] = rng.NormFloat64()
		}
		for i := range bv {
			bv[i] = rng.NormFloat64()
		}
		a := FromSamples("a", 0, 1, av)
		b := FromSamples("b", 0, 1, bv)
		free := DTW(a, b, -1)
		band := DTW(a, b, 2)
		if free > band+1e-9 {
			t.Fatalf("free DTW %v > banded %v", free, band)
		}
		if !almost(DTW(b, a, -1), free, 1e-9) {
			t.Fatalf("DTW asymmetric")
		}
	}
}

func TestSubsequenceMatches(t *testing.T) {
	// Haystack with the query shape planted at positions 10 and 40.
	hay := make([]float64, 60)
	shape := []float64{0, 3, 6, 3, 0}
	for i := range hay {
		hay[i] = 0.01 * float64(i%3)
	}
	copy(hay[10:], shape)
	copy(hay[40:], shape)
	h := FromSamples("h", 0, 1, hay)
	q := FromSamples("q", 0, 1, shape)
	matches := SubsequenceMatches(h, q, 2)
	if len(matches) != 2 {
		t.Fatalf("matches=%v", matches)
	}
	found := map[int]bool{}
	for _, m := range matches {
		found[m.Start] = true
		if m.Dist > 0.5 {
			t.Fatalf("planted match has distance %v", m.Dist)
		}
	}
	if !found[10] || !found[40] {
		t.Fatalf("wrong match positions: %v", matches)
	}
}

func TestSubsequenceMatchesNonOverlap(t *testing.T) {
	hay := make([]float64, 30)
	for i := range hay {
		hay[i] = math.Sin(float64(i))
	}
	h := FromSamples("h", 0, 1, hay)
	q := h.Slice(5, 11) // 6-point query taken from the haystack
	ms := SubsequenceMatches(h, q, 0)
	for i := range ms {
		for j := i + 1; j < len(ms); j++ {
			a, b := ms[i], ms[j]
			if a.Start < b.Start+b.Len && b.Start < a.Start+a.Len {
				t.Fatalf("overlapping matches %v %v", a, b)
			}
		}
	}
	if len(ms) == 0 || ms[0].Dist > 1e-9 {
		t.Fatalf("exact subsequence not found first: %v", ms)
	}
}

func TestSubsequenceMatchesDegenerate(t *testing.T) {
	h := FromSamples("h", 0, 1, []float64{1, 2})
	q := FromSamples("q", 0, 1, []float64{1, 2, 3})
	if got := SubsequenceMatches(h, q, 1); got != nil {
		t.Fatalf("query longer than haystack: %v", got)
	}
	if got := SubsequenceMatches(h, New("e"), 1); got != nil {
		t.Fatalf("empty query: %v", got)
	}
}

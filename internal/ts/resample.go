package ts

import "fmt"

// BucketStart returns the start of the width-aligned bucket containing t:
// the largest multiple of width that is <= t, correct for negative times.
// Resample and the incremental ContAgg share this alignment so a
// materialized view and a from-scratch recompute land points in identical
// buckets.
func BucketStart(t, width Time) Time {
	b := t / width * width
	if t < 0 && t%width != 0 {
		b -= width
	}
	return b
}

// Resample downsamples the series to buckets of the given width, applying f
// within each bucket. Bucket boundaries are aligned to multiples of width;
// the output point for a bucket is stamped at the bucket start. Empty
// buckets produce no output point. This is the paper's Q2 "downsampling"
// primitive (Table 2) and is paired with graph aggregation by
// core.Aggregate.
func (s *Series) Resample(width Time, f AggFunc) *Series {
	out := New(fmt.Sprintf("%s_per_%d%s", s.name, width, "ms"))
	if width <= 0 || s.Len() == 0 {
		return out
	}
	bucketOf := func(t Time) Time { return BucketStart(t, width) }
	start := 0
	cur := bucketOf(s.times[0])
	flush := func(hi int) {
		if hi > start {
			out.times = append(out.times, cur)
			out.vals = append(out.vals, f.Apply(s.vals[start:hi]))
		}
		start = hi
	}
	for i, t := range s.times {
		if b := bucketOf(t); b != cur {
			flush(i)
			cur = b
		}
	}
	flush(s.Len())
	return out
}

// Align resamples both series onto the shared bucket grid of the given width
// using f, keeping only buckets present in both. The returned slices have
// equal length and correspond position-wise; the bucket timestamps are also
// returned. Alignment is the prerequisite for correlation between
// irregularly sampled series.
func Align(a, b *Series, width Time, f AggFunc) (av, bv []float64, buckets []Time) {
	ra := a.Resample(width, f)
	rb := b.Resample(width, f)
	i, j := 0, 0
	for i < ra.Len() && j < rb.Len() {
		switch {
		case ra.times[i] < rb.times[j]:
			i++
		case ra.times[i] > rb.times[j]:
			j++
		default:
			buckets = append(buckets, ra.times[i])
			av = append(av, ra.vals[i])
			bv = append(bv, rb.vals[j])
			i++
			j++
		}
	}
	return av, bv, buckets
}

// PAA computes the piecewise aggregate approximation with the given number
// of segments: the series is split into nSeg equal-count segments and each is
// replaced by its mean. It returns the segment means; used by SAX and as a
// cheap dimensionality reduction for subsequence search.
func (s *Series) PAA(nSeg int) []float64 {
	n := s.Len()
	if nSeg <= 0 || n == 0 {
		return nil
	}
	if nSeg > n {
		nSeg = n
	}
	out := make([]float64, nSeg)
	for k := 0; k < nSeg; k++ {
		lo := k * n / nSeg
		hi := (k + 1) * n / nSeg
		out[k] = mean(s.vals[lo:hi])
	}
	return out
}

// saxBreakpoints holds the standard normal breakpoints for alphabet sizes
// 2..8 used by SAX.
var saxBreakpoints = map[int][]float64{
	2: {0},
	3: {-0.43, 0.43},
	4: {-0.67, 0, 0.67},
	5: {-0.84, -0.25, 0.25, 0.84},
	6: {-0.97, -0.43, 0, 0.43, 0.97},
	7: {-1.07, -0.57, -0.18, 0.18, 0.57, 1.07},
	8: {-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15},
}

// SAX computes the symbolic aggregate approximation of the series:
// z-normalize, PAA to nSeg segments, then quantize each segment mean into an
// alphabet of the given size (2..8), returning a string over 'a', 'b', ...
// SAX words let graph-side operators treat series as discrete labels.
func (s *Series) SAX(nSeg, alphabet int) (string, error) {
	bps, ok := saxBreakpoints[alphabet]
	if !ok {
		return "", fmt.Errorf("ts: SAX alphabet size %d not in [2,8]", alphabet)
	}
	paa := s.ZNormalize().PAAOn(nSeg)
	word := make([]byte, len(paa))
	for i, v := range paa {
		sym := 0
		for _, bp := range bps {
			if v > bp {
				sym++
			}
		}
		word[i] = byte('a' + sym)
	}
	return string(word), nil
}

// PAAOn is PAA exposed on an already-normalized receiver; identical to PAA
// but named to make z-normalized call sites explicit.
func (s *Series) PAAOn(nSeg int) []float64 { return s.PAA(nSeg) }

package ts

import (
	"errors"
	"math"
)

// ErrTooShort is returned by forecasters when the series has too few points
// to fit the model.
var ErrTooShort = errors.New("ts: series too short for this model")

// SES fits simple exponential smoothing with factor alpha in (0,1] and
// forecasts steps future points at the given step width, continuing from the
// series end. The forecast of SES is flat at the last smoothed level.
func (s *Series) SES(alpha float64, steps int, step Time) (*Series, error) {
	if s.Len() < 1 {
		return nil, ErrTooShort
	}
	if alpha <= 0 || alpha > 1 {
		return nil, errors.New("ts: SES alpha must be in (0,1]")
	}
	level := s.vals[0]
	for _, v := range s.vals[1:] {
		level = alpha*v + (1-alpha)*level
	}
	out := New(s.name + "_ses")
	t := s.End()
	for i := 0; i < steps; i++ {
		t += step
		out.MustAppend(t, level)
	}
	return out, nil
}

// Holt fits Holt's linear-trend double exponential smoothing (level factor
// alpha, trend factor beta, both in (0,1]) and forecasts steps future points.
func (s *Series) Holt(alpha, beta float64, steps int, step Time) (*Series, error) {
	if s.Len() < 2 {
		return nil, ErrTooShort
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, errors.New("ts: Holt factors must be in (0,1]")
	}
	level := s.vals[0]
	trend := s.vals[1] - s.vals[0]
	for _, v := range s.vals[1:] {
		prev := level
		level = alpha*v + (1-alpha)*(level+trend)
		trend = beta*(level-prev) + (1-beta)*trend
	}
	out := New(s.name + "_holt")
	t := s.End()
	for i := 1; i <= steps; i++ {
		t += step
		out.MustAppend(t, level+float64(i)*trend)
	}
	return out, nil
}

// HoltWinters fits additive triple exponential smoothing with the given
// season length (in points) and smoothing factors alpha (level), beta
// (trend), gamma (seasonal), each in (0,1], and forecasts steps future
// points. Initial seasonals come from the first season against the first
// season's mean; at least two full seasons of data are required. This is
// the model of choice for the bike-sharing workload's daily cycle.
func (s *Series) HoltWinters(alpha, beta, gamma float64, season, steps int, step Time) (*Series, error) {
	if season < 2 || s.Len() < 2*season {
		return nil, ErrTooShort
	}
	for _, f := range []float64{alpha, beta, gamma} {
		if f <= 0 || f > 1 {
			return nil, errors.New("ts: Holt-Winters factors must be in (0,1]")
		}
	}
	vals := s.vals
	// Initial level: mean of season 1. Initial trend: mean per-step change
	// between season 1 and season 2. Initial seasonals: deviation of season
	// 1 from its mean.
	var mean1 float64
	for i := 0; i < season; i++ {
		mean1 += vals[i]
	}
	mean1 /= float64(season)
	level := mean1
	trend := 0.0
	for i := 0; i < season; i++ {
		trend += (vals[season+i] - vals[i]) / float64(season)
	}
	trend /= float64(season)
	seas := make([]float64, season)
	for i := 0; i < season; i++ {
		seas[i] = vals[i] - mean1
	}
	for t := season; t < len(vals); t++ {
		si := t % season
		prevLevel := level
		level = alpha*(vals[t]-seas[si]) + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
		seas[si] = gamma*(vals[t]-level) + (1-gamma)*seas[si]
	}
	out := New(s.name + "_hw")
	t := s.End()
	n := len(vals)
	for i := 1; i <= steps; i++ {
		t += step
		si := (n + i - 1) % season
		out.MustAppend(t, level+float64(i)*trend+seas[si])
	}
	return out, nil
}

// ARForecast fits an AR(p) model on the mean-removed series via Yule-Walker
// (Levinson-Durbin) and forecasts steps future points.
func (s *Series) ARForecast(p, steps int, step Time) (*Series, error) {
	if p < 1 || s.Len() < p+2 {
		return nil, ErrTooShort
	}
	mu := s.Mean()
	x := make([]float64, s.Len())
	for i, v := range s.vals {
		x[i] = v - mu
	}
	// Autocovariance up to lag p.
	r := make([]float64, p+1)
	for lag := 0; lag <= p; lag++ {
		var acc float64
		for i := lag; i < len(x); i++ {
			acc += x[i] * x[i-lag]
		}
		r[lag] = acc / float64(len(x))
	}
	if r[0] == 0 {
		// Constant series: forecast the constant.
		out := New(s.name + "_ar")
		t := s.End()
		for i := 0; i < steps; i++ {
			t += step
			out.MustAppend(t, mu)
		}
		return out, nil
	}
	phi, err := levinsonDurbin(r, p)
	if err != nil {
		return nil, err
	}
	hist := append([]float64(nil), x...)
	out := New(s.name + "_ar")
	t := s.End()
	for i := 0; i < steps; i++ {
		var pred float64
		for j := 0; j < p; j++ {
			pred += phi[j] * hist[len(hist)-1-j]
		}
		hist = append(hist, pred)
		t += step
		out.MustAppend(t, pred+mu)
	}
	return out, nil
}

// levinsonDurbin solves the Yule-Walker equations for AR coefficients
// phi[0..p-1] from autocovariances r[0..p].
func levinsonDurbin(r []float64, p int) ([]float64, error) {
	phi := make([]float64, p)
	prev := make([]float64, p)
	e := r[0]
	for k := 1; k <= p; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * r[k-j]
		}
		if e == 0 {
			return nil, errors.New("ts: Yule-Walker system is singular")
		}
		kappa := acc / e
		phi[k-1] = kappa
		for j := 1; j < k; j++ {
			phi[j-1] = prev[j-1] - kappa*prev[k-j-1]
		}
		e *= 1 - kappa*kappa
		copy(prev, phi[:k])
	}
	for _, c := range phi {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, errors.New("ts: AR fit diverged")
		}
	}
	return phi, nil
}

// MAE returns the mean absolute error between a forecast and actual values
// at matching timestamps; timestamps present in only one series are ignored.
// NaN is returned when there is no overlap.
func MAE(forecast, actual *Series) float64 {
	var acc float64
	var n int
	for i := 0; i < forecast.Len(); i++ {
		if v, ok := actual.Lookup(forecast.TimeAt(i)); ok {
			acc += math.Abs(forecast.ValueAt(i) - v)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return acc / float64(n)
}

package ts

import "math"

// Pearson returns the Pearson correlation coefficient between two
// equal-length float sequences, or NaN when either is constant or empty.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	ma, mb := mean(a), mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da := a[i] - ma
		db := b[i] - mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return math.NaN()
	}
	return sab / math.Sqrt(saa*sbb)
}

// Correlation aligns two series onto a shared bucket grid (bucket mean) and
// returns their Pearson correlation. It is the paper's Q3 time-series
// primitive (Table 2); core.CorrelationEdges uses it to build similarity
// edges between time-series vertices. NaN is returned when fewer than two
// shared buckets exist or a side is constant.
func Correlation(a, b *Series, bucket Time) float64 {
	av, bv, _ := Align(a, b, bucket, AggMean)
	if len(av) < 2 {
		return math.NaN()
	}
	return Pearson(av, bv)
}

// CrossCorrelation returns the Pearson correlation of a against b shifted by
// lag buckets, for each lag in [-maxLag, maxLag], after aligning both onto a
// shared grid. Index i of the result corresponds to lag i-maxLag. Lags with
// fewer than two overlapping buckets yield NaN. A negative maxLag or an
// empty alignment (disjoint series, non-positive bucket) yields nil rather
// than a window of meaningless values.
func CrossCorrelation(a, b *Series, bucket Time, maxLag int) []float64 {
	if maxLag < 0 {
		return nil
	}
	av, bv, _ := Align(a, b, bucket, AggMean)
	if len(av) == 0 {
		return nil
	}
	out := make([]float64, 2*maxLag+1)
	for l := -maxLag; l <= maxLag; l++ {
		out[l+maxLag] = laggedPearson(av, bv, l)
	}
	return out
}

// BestLag returns the lag in [-maxLag, maxLag] with the highest absolute
// cross-correlation and that correlation value. When no lag yields a
// defined correlation (constant or non-overlapping series), it returns
// lag=0 with r=NaN — callers must not read the all-NaN case as "perfectly
// uncorrelated at lag 0".
func BestLag(a, b *Series, bucket Time, maxLag int) (lag int, r float64) {
	r = math.NaN()
	cc := CrossCorrelation(a, b, bucket, maxLag)
	bestAbs := math.Inf(-1)
	for i, v := range cc {
		if !math.IsNaN(v) && math.Abs(v) > bestAbs {
			bestAbs = math.Abs(v)
			lag = i - maxLag
			r = v
		}
	}
	return lag, r
}

// laggedPearson correlates a[i] with b[i+lag] over the overlapping range.
func laggedPearson(a, b []float64, lag int) float64 {
	var xa, xb []float64
	for i := range a {
		j := i + lag
		if j < 0 || j >= len(b) {
			continue
		}
		xa = append(xa, a[i])
		xb = append(xb, b[j])
	}
	if len(xa) < 2 {
		return math.NaN()
	}
	return Pearson(xa, xb)
}

// AutoCorrelation returns the autocorrelation of the series at the given
// point lags; index i corresponds to lags[i].
func (s *Series) AutoCorrelation(lags ...int) []float64 {
	out := make([]float64, len(lags))
	for i, l := range lags {
		out[i] = laggedPearson(s.vals, s.vals, l)
	}
	return out
}

package ts

import (
	"math"
	"math/rand"
	"testing"
)

func TestResampleBasic(t *testing.T) {
	s := New("a")
	// Two points in bucket [0,10), one in [10,20), one in [30,40).
	s.MustAppend(1, 2)
	s.MustAppend(9, 4)
	s.MustAppend(10, 10)
	s.MustAppend(35, 7)
	r := s.Resample(10, AggMean)
	if r.Len() != 3 {
		t.Fatalf("buckets=%d want 3: %v", r.Len(), r.Points())
	}
	if r.TimeAt(0) != 0 || r.ValueAt(0) != 3 {
		t.Fatalf("bucket0=%v", r.At(0))
	}
	if r.TimeAt(1) != 10 || r.ValueAt(1) != 10 {
		t.Fatalf("bucket1=%v", r.At(1))
	}
	if r.TimeAt(2) != 30 || r.ValueAt(2) != 7 {
		t.Fatalf("bucket2=%v", r.At(2))
	}
}

func TestResampleNegativeTimes(t *testing.T) {
	s := New("a")
	s.MustAppend(-15, 1)
	s.MustAppend(-5, 3)
	s.MustAppend(5, 5)
	r := s.Resample(10, AggSum)
	// Buckets: [-20,-10) -> 1, [-10,0) -> 3, [0,10) -> 5.
	if r.Len() != 3 || r.TimeAt(0) != -20 || r.TimeAt(1) != -10 || r.TimeAt(2) != 0 {
		t.Fatalf("negative-time buckets: %v", r.Points())
	}
}

func TestResampleDegenerate(t *testing.T) {
	s := FromSamples("a", 0, 1, []float64{1, 2})
	if got := s.Resample(0, AggMean); got.Len() != 0 {
		t.Fatal("width 0 should be empty")
	}
	if got := New("e").Resample(10, AggMean); got.Len() != 0 {
		t.Fatal("empty series should resample to empty")
	}
}

// Property: sum-resampling preserves total mass; count-resampling preserves
// total count; every bucket mean is within [min, max] of the original.
func TestQuickResampleInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		s := New("q")
		tt := Time(rng.Intn(100))
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			tt += Time(1 + rng.Intn(30))
			s.MustAppend(tt, rng.NormFloat64()*10)
		}
		width := Time(1 + rng.Intn(100))
		if got := s.Resample(width, AggSum).Sum(); !almost(got, s.Sum(), 1e-6) {
			t.Fatalf("mass not preserved: %v vs %v", got, s.Sum())
		}
		if got := s.Resample(width, AggCount).Sum(); got != float64(s.Len()) {
			t.Fatalf("count not preserved: %v vs %v", got, s.Len())
		}
		mn, mx := s.Min(), s.Max()
		for _, p := range s.Resample(width, AggMean).Points() {
			if p.V < mn-1e-9 || p.V > mx+1e-9 {
				t.Fatalf("bucket mean %v outside [%v,%v]", p.V, mn, mx)
			}
		}
	}
}

func TestAlign(t *testing.T) {
	a := FromSamples("a", 0, 10, []float64{1, 2, 3, 4})  // buckets 0,10,20,30
	b := FromSamples("b", 20, 10, []float64{30, 40, 50}) // buckets 20,30,40
	av, bv, buckets := Align(a, b, 10, AggMean)
	if len(buckets) != 2 || buckets[0] != 20 || buckets[1] != 30 {
		t.Fatalf("buckets=%v", buckets)
	}
	if av[0] != 3 || av[1] != 4 || bv[0] != 30 || bv[1] != 40 {
		t.Fatalf("aligned values %v %v", av, bv)
	}
}

func TestPAA(t *testing.T) {
	s := FromSamples("a", 0, 1, []float64{1, 1, 5, 5})
	paa := s.PAA(2)
	if len(paa) != 2 || paa[0] != 1 || paa[1] != 5 {
		t.Fatalf("paa=%v", paa)
	}
	// nSeg > n clamps to n.
	if got := s.PAA(10); len(got) != 4 {
		t.Fatalf("clamped paa len=%d", len(got))
	}
	if got := s.PAA(0); got != nil {
		t.Fatalf("paa(0)=%v", got)
	}
	// Overall mean is preserved for equal-size segments.
	s2 := FromSamples("b", 0, 1, []float64{1, 2, 3, 4, 5, 6})
	p2 := s2.PAA(3)
	if !almost(mean(p2), s2.Mean(), 1e-12) {
		t.Fatalf("paa mean %v != %v", mean(p2), s2.Mean())
	}
}

func TestSAX(t *testing.T) {
	// Ramp: low then high → word should be nondecreasing symbols.
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := FromSamples("a", 0, 1, vals)
	w, err := s.SAX(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 8 {
		t.Fatalf("word len=%d", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] < w[i-1] {
			t.Fatalf("ramp SAX not monotone: %q", w)
		}
	}
	if w[0] != 'a' || w[7] != 'd' {
		t.Fatalf("ramp SAX extremes: %q", w)
	}
	if _, err := s.SAX(4, 1); err == nil {
		t.Fatal("alphabet=1 should error")
	}
	if _, err := s.SAX(4, 9); err == nil {
		t.Fatal("alphabet=9 should error")
	}
}

func TestSAXConstantSeries(t *testing.T) {
	s := FromSamples("c", 0, 1, []float64{3, 3, 3, 3})
	w, err := s.SAX(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Constant z-normalizes to zeros → middle symbol everywhere.
	if w != "bb" && w != "cc" {
		t.Fatalf("constant SAX=%q", w)
	}
}

func TestResampleVsAggregateRangeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New("q")
	tt := Time(0)
	for i := 0; i < 500; i++ {
		tt += Time(1 + rng.Intn(5))
		s.MustAppend(tt, rng.Float64()*100)
	}
	width := Time(50)
	for _, p := range s.Resample(width, AggMax).Points() {
		if got := s.AggregateRange(AggMax, p.T, p.T+width); !almost(got, p.V, 1e-12) {
			t.Fatalf("bucket %d: resample %v vs range %v", p.T, p.V, got)
		}
	}
	_ = math.Pi
}

package ts

import (
	"math"
	"math/rand"
	"testing"
)

// finalizeDirty replays the owner's side of the ContAgg contract: rescan
// each dirty bucket from the authoritative series and feed the values back.
func finalizeDirty(c *ContAgg, raw *Series) {
	for _, b := range c.DirtyBuckets() {
		w := c.Width()
		view := raw.SliceView(b, b+w)
		vals := make([]float64, 0, view.Len())
		for i := 0; i < view.Len(); i++ {
			vals = append(vals, view.ValueAt(i))
		}
		c.Finalize(b, vals)
	}
}

// sameSeries is element-wise equality with NaN == NaN, plus the name.
func sameSeries(a, b *Series) bool {
	if a.Name() != b.Name() || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.TimeAt(i) != b.TimeAt(i) {
			return false
		}
		av, bv := a.ValueAt(i), b.ValueAt(i)
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			return false
		}
	}
	return true
}

// The incremental view must stay bit-identical to a from-scratch Resample
// across every aggregate under random interleavings of tail appends,
// upserts, and out-of-order inserts (including NaN values).
func TestContAggMatchesResample(t *testing.T) {
	aggs := []AggFunc{AggMean, AggSum, AggMin, AggMax, AggCount, AggFirst, AggLast, AggStd, AggMedian}
	for _, agg := range aggs {
		for trial := 0; trial < 6; trial++ {
			rng := rand.New(rand.NewSource(int64(100*int(agg) + trial)))
			width := Time(10 + rng.Intn(20))
			raw := New("m@1")
			c := NewContAgg("m@1", width, agg)
			deltas, rescans := 0, 0
			for op := 0; op < 300; op++ {
				var pt Time
				switch rng.Intn(4) {
				case 0, 1: // tail append
					pt = raw.End() + Time(1+rng.Intn(15))
				case 2: // upsert of an existing point
					if raw.Len() == 0 {
						pt = 0
					} else {
						pt = raw.TimeAt(rng.Intn(raw.Len()))
					}
				default: // out-of-order insert anywhere seen so far
					pt = Time(rng.Intn(int(raw.End() + 2)))
				}
				v := rng.Float64() * 100
				if rng.Intn(20) == 0 {
					v = math.NaN()
				}
				raw.Upsert(pt, v)
				if c.Observe(pt, v) {
					deltas++
				} else {
					rescans++
				}
				if op%37 == 0 {
					finalizeDirty(c, raw)
					if got, want := c.View(), raw.Resample(width, agg); !sameSeries(got, want) {
						t.Fatalf("agg=%v trial=%d op=%d: view diverged from Resample\n got %v\nwant %v",
							agg, trial, op, got, want)
					}
				}
			}
			finalizeDirty(c, raw)
			if got, want := c.View(), raw.Resample(width, agg); !sameSeries(got, want) {
				t.Fatalf("agg=%v trial=%d: final view diverged", agg, trial)
			}
			if deltas == 0 {
				t.Fatalf("agg=%v trial=%d: no O(1) deltas applied", agg, trial)
			}
			switch agg {
			case AggStd, AggMedian:
				if rescans == 0 {
					t.Fatalf("agg=%v trial=%d: non-decomposable agg never rescanned", agg, trial)
				}
			}
		}
	}
}

// Seeding from an existing series must equal Resample and leave the
// aggregator able to continue with exact deltas.
func TestContAggSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	raw := New("avail@3")
	for i := 0; i < 200; i++ {
		raw.MustAppend(Time(i*7), rng.Float64()*50)
	}
	for _, agg := range []AggFunc{AggMean, AggMin, AggStd} {
		c := NewContAgg("ignored", 60, agg)
		c.Seed(raw)
		if !sameSeries(c.View(), raw.Resample(60, agg)) {
			t.Fatalf("agg=%v: seeded view != Resample", agg)
		}
		if wm, ok := c.Watermark(); !ok || wm != raw.End() {
			t.Fatalf("agg=%v: watermark %v/%v, want %v", agg, wm, ok, raw.End())
		}
		// Continue past the seed.
		for i := 0; i < 50; i++ {
			pt := raw.End() + Time(1+rng.Intn(9))
			v := rng.Float64() * 50
			raw.Upsert(pt, v)
			c.Observe(pt, v)
		}
		finalizeDirty(c, raw)
		if !sameSeries(c.View(), raw.Resample(60, agg)) {
			t.Fatalf("agg=%v: post-seed continuation diverged", agg)
		}
	}
}

// A backfill into a bucket with no prior points is exact without a rescan;
// an empty Finalize removes a bucket whose points were deleted.
func TestContAggGapAndEmptyFinalize(t *testing.T) {
	c := NewContAgg("m", 10, AggSum)
	c.Observe(5, 1)
	c.Observe(35, 2)
	if !c.Observe(15, 3) { // gap bucket [10,20): single point, exact
		t.Fatal("gap backfill should not need a rescan")
	}
	if c.HasDirty() {
		t.Fatal("no bucket should be dirty")
	}
	want := New("w")
	want.MustAppend(0, 1)
	want.MustAppend(10, 3)
	want.MustAppend(30, 2)
	got := c.Snapshot()
	if got.Len() != 3 {
		t.Fatalf("got %d buckets", got.Len())
	}
	for i := 0; i < 3; i++ {
		if got.TimeAt(i) != want.TimeAt(i) || got.ValueAt(i) != want.ValueAt(i) {
			t.Fatalf("bucket %d: got %v want %v", i, got.At(i), want.At(i))
		}
	}
	c.Finalize(10, nil)
	if c.View().Len() != 2 {
		t.Fatalf("empty finalize did not remove the bucket: %d", c.View().Len())
	}
	// Zero-width aggregators ignore input.
	z := NewContAgg("m", 0, AggSum)
	z.Observe(1, 1)
	if z.View().Len() != 0 {
		t.Fatal("zero-width aggregator materialized a bucket")
	}
}

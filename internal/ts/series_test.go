package ts

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	gotime "time"
)

func TestAppendEnforcesOrder(t *testing.T) {
	s := New("a")
	if err := s.Append(10, 1); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := s.Append(20, 2); err != nil {
		t.Fatalf("second append: %v", err)
	}
	if err := s.Append(20, 3); err != ErrOutOfOrder {
		t.Fatalf("equal timestamp: got %v, want ErrOutOfOrder", err)
	}
	if err := s.Append(5, 3); err != ErrOutOfOrder {
		t.Fatalf("earlier timestamp: got %v, want ErrOutOfOrder", err)
	}
	if s.Len() != 2 {
		t.Fatalf("rejected appends must not mutate: len=%d", s.Len())
	}
}

func TestUpsertKeepsOrderAndReplaces(t *testing.T) {
	s := New("a")
	for _, tt := range []Time{50, 10, 30, 20, 40} {
		s.Upsert(tt, float64(tt))
	}
	want := []Time{10, 20, 30, 40, 50}
	for i, w := range want {
		if s.TimeAt(i) != w {
			t.Fatalf("times[%d]=%d want %d", i, s.TimeAt(i), w)
		}
	}
	s.Upsert(30, 999) // replace, not insert
	if s.Len() != 5 {
		t.Fatalf("upsert of existing timestamp changed length to %d", s.Len())
	}
	if v, _ := s.Lookup(30); v != 999 {
		t.Fatalf("lookup(30)=%v want 999", v)
	}
}

func TestDelete(t *testing.T) {
	s := FromSamples("a", 0, 10, []float64{1, 2, 3})
	if !s.Delete(10) {
		t.Fatal("delete existing returned false")
	}
	if s.Delete(10) {
		t.Fatal("delete missing returned true")
	}
	if s.Len() != 2 {
		t.Fatalf("len=%d want 2", s.Len())
	}
	if _, ok := s.Lookup(10); ok {
		t.Fatal("deleted point still present")
	}
}

func TestFromPointsSortsAndDedups(t *testing.T) {
	s := FromPoints("a", []Point{{30, 3}, {10, 1}, {30, 33}, {20, 2}})
	if s.Len() != 3 {
		t.Fatalf("len=%d want 3", s.Len())
	}
	if v, _ := s.Lookup(30); v != 33 {
		t.Fatalf("duplicate timestamp should keep last value, got %v", v)
	}
}

func TestSliceHalfOpen(t *testing.T) {
	s := FromSamples("a", 0, 10, []float64{0, 1, 2, 3, 4})
	sl := s.Slice(10, 30)
	if sl.Len() != 2 || sl.TimeAt(0) != 10 || sl.TimeAt(1) != 20 {
		t.Fatalf("slice [10,30) = %v", sl.Points())
	}
	// Slice must not alias.
	sl.vals[0] = -1
	if s.ValueAt(1) == -1 {
		t.Fatal("Slice aliases parent storage")
	}
	v := s.SliceView(10, 30)
	if v.Len() != 2 {
		t.Fatalf("view len=%d", v.Len())
	}
}

func TestValueAtOrBefore(t *testing.T) {
	s := FromSamples("a", 100, 100, []float64{1, 2, 3})
	if _, ok := s.ValueAtOrBefore(99); ok {
		t.Fatal("before first point should miss")
	}
	for _, tc := range []struct {
		t    Time
		want float64
	}{{100, 1}, {150, 1}, {200, 2}, {5000, 3}} {
		if v, ok := s.ValueAtOrBefore(tc.t); !ok || v != tc.want {
			t.Fatalf("ValueAtOrBefore(%d)=%v,%v want %v", tc.t, v, ok, tc.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	now := gotime.Date(2024, 3, 1, 12, 0, 0, 0, gotime.UTC)
	tt := FromGoTime(now)
	if got := tt.GoTime(); !got.Equal(now) {
		t.Fatalf("round trip %v != %v", got, now)
	}
	if MaxTime.String() != "max" {
		t.Fatalf("MaxTime.String()=%q", MaxTime.String())
	}
}

func TestDiffAndMapAndFilter(t *testing.T) {
	s := FromSamples("a", 0, 1, []float64{1, 4, 9})
	d := s.Diff()
	if d.Len() != 2 || d.ValueAt(0) != 3 || d.ValueAt(1) != 5 {
		t.Fatalf("diff=%v", d.Points())
	}
	m := s.Map(math.Sqrt)
	if m.ValueAt(2) != 3 {
		t.Fatalf("map sqrt: %v", m.Points())
	}
	f := s.Filter(func(p Point) bool { return p.V > 2 })
	if f.Len() != 2 {
		t.Fatalf("filter: %v", f.Points())
	}
}

func TestEmptySeriesEdges(t *testing.T) {
	s := New("e")
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero series should be empty")
	}
	if s.Start() != MaxTime || s.End() != -1 {
		t.Fatalf("empty start/end = %v/%v", s.Start(), s.End())
	}
	if !math.IsNaN(s.Mean()) {
		t.Fatal("mean of empty should be NaN")
	}
	if s.Sum() != 0 {
		t.Fatal("sum of empty should be 0")
	}
	if got := s.Slice(0, 100); got.Len() != 0 {
		t.Fatal("slice of empty should be empty")
	}
}

// Property: Upsert in any order produces strictly increasing timestamps and
// lookup finds the last written value for each key.
func TestQuickUpsertOrdering(t *testing.T) {
	f := func(raw []int16) bool {
		s := New("q")
		last := map[Time]float64{}
		for i, r := range raw {
			tt := Time(r)
			v := float64(i)
			s.Upsert(tt, v)
			last[tt] = v
		}
		if s.Len() != len(last) {
			return false
		}
		for i := 1; i < s.Len(); i++ {
			if s.TimeAt(i) <= s.TimeAt(i-1) {
				return false
			}
		}
		for k, v := range last {
			if got, ok := s.Lookup(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Slice(a,b) contains exactly the points with a <= t < b.
func TestQuickSliceMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		s := New("q")
		n := rng.Intn(50)
		tt := Time(0)
		for i := 0; i < n; i++ {
			tt += Time(1 + rng.Intn(10))
			s.MustAppend(tt, rng.Float64())
		}
		a := Time(rng.Intn(300))
		b := a + Time(rng.Intn(300))
		sl := s.Slice(a, b)
		want := 0
		for _, p := range s.Points() {
			if p.T >= a && p.T < b {
				want++
			}
		}
		if sl.Len() != want {
			t.Fatalf("slice(%d,%d) len=%d want %d", a, b, sl.Len(), want)
		}
		for _, p := range sl.Points() {
			if p.T < a || p.T >= b {
				t.Fatalf("point %v outside [%d,%d)", p, a, b)
			}
		}
	}
}

// Property: FromPoints result is sorted regardless of input order.
func TestQuickFromPointsSorted(t *testing.T) {
	f := func(raw []int16) bool {
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{Time(r), float64(i)}
		}
		s := FromPoints("q", pts)
		return sort.SliceIsSorted(s.Times(), func(i, j int) bool {
			return s.Times()[i] < s.Times()[j]
		})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := FromSamples("a", 0, 10, []float64{1, math.NaN(), 3})
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal (NaN-aware)")
	}
	c.vals[0] = 99
	if s.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if s.ValueAt(0) == 99 {
		t.Fatal("clone aliases parent")
	}
}

package ts

import (
	"math"
	"math/rand"
	"testing"
)

func TestFeaturesLengthAndFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range []*Series{
		New("empty"),
		FromSamples("one", 0, 1, []float64{3}),
		FromSamples("const", 0, 1, []float64{2, 2, 2, 2}),
		noisySeriesWithSpikes(rng, 200, 50),
	} {
		f := s.Features()
		if len(f) != NumFeatures || len(f) != len(FeatureNames) {
			t.Fatalf("%s: feature len=%d", s.Name(), len(f))
		}
		for i, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: feature %s non-finite", s.Name(), FeatureNames[i])
			}
		}
	}
}

func TestFeaturesDiscriminate(t *testing.T) {
	// A smooth sine and a bursty spike train must differ in burstiness.
	n := 256
	smooth := New("smooth")
	bursty := New("bursty")
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		smooth.MustAppend(Time(i), math.Sin(float64(i)/10))
		v := 0.0
		if rng.Intn(20) == 0 {
			v = 50
		}
		bursty.MustAppend(Time(i), v)
	}
	fs := smooth.Features()
	fb := bursty.Features()
	// burstiness is index 9.
	if fb[9] <= fs[9] {
		t.Fatalf("burstiness: bursty=%v smooth=%v", fb[9], fs[9])
	}
	// acf1 (index 7) is high for the smooth signal.
	if fs[7] < 0.8 {
		t.Fatalf("smooth acf1=%v", fs[7])
	}
}

func TestFeatureValues(t *testing.T) {
	s := FromSamples("lin", 0, 1, []float64{0, 1, 2, 3, 4, 5, 6, 7})
	f := s.Features()
	if !almost(f[0], 3.5, 1e-9) { // mean
		t.Fatalf("mean feature=%v", f[0])
	}
	if !almost(f[6], 1, 1e-9) { // slope
		t.Fatalf("slope feature=%v", f[6])
	}
	if f[2] != 0 || f[3] != 7 { // min, max
		t.Fatalf("min/max features=%v/%v", f[2], f[3])
	}
}

func TestBinnedEntropy(t *testing.T) {
	// Uniform over bins has higher entropy than concentrated.
	uniform := New("u")
	for i := 0; i < 100; i++ {
		uniform.MustAppend(Time(i), float64(i%10))
	}
	concentrated := New("c")
	for i := 0; i < 100; i++ {
		v := 0.0
		if i == 50 {
			v = 9
		}
		concentrated.MustAppend(Time(i), v)
	}
	if uniform.binnedEntropy(10) <= concentrated.binnedEntropy(10) {
		t.Fatal("entropy ordering wrong")
	}
	if got := FromSamples("k", 0, 1, []float64{5, 5}).binnedEntropy(10); got != 0 {
		t.Fatalf("constant entropy=%v", got)
	}
}

func TestMeanCrossings(t *testing.T) {
	s := FromSamples("alt", 0, 1, []float64{1, -1, 1, -1, 1})
	if got := s.meanCrossings(); got != 4 {
		t.Fatalf("crossings=%d want 4", got)
	}
	c := FromSamples("c", 0, 1, []float64{3, 3, 3})
	if got := c.meanCrossings(); got != 0 {
		t.Fatalf("constant crossings=%d", got)
	}
}

// Package ts implements the time-series substrate of the HyGraph
// reproduction: univariate and multivariate series with chronologically
// ordered timestamps, range queries, resampling, aggregation, correlation,
// distance measures, segmentation, anomaly detection, motif discovery and
// simple forecasting.
//
// A series is an ordered set of (timestamp, value) observations, matching the
// paper's definition ts = {(t1,y1), ..., (tn,yn)}. Timestamps are int64
// milliseconds since the Unix epoch (see Time). Chronological integrity —
// requirement R2 of the paper — is enforced on every mutation: Append rejects
// out-of-order points while Upsert replaces stale values in place
// (requirement R3).
package ts

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	gotime "time"
)

// Time is a timestamp in milliseconds since the Unix epoch. The paper's set T
// of ordered timestamps is modeled by the natural order of this type.
type Time int64

// Common durations expressed in Time units (milliseconds).
const (
	Second Time = 1000
	Minute Time = 60 * Second
	Hour   Time = 60 * Minute
	Day    Time = 24 * Hour
	Week   Time = 7 * Day
)

// MaxTime is the largest representable timestamp. The paper initializes
// t_end of valid intervals to max(T); callers use MaxTime for that purpose.
const MaxTime Time = math.MaxInt64

// FromGoTime converts a time.Time to a Time.
func FromGoTime(t gotime.Time) Time { return Time(t.UnixMilli()) }

// GoTime converts a Time back to a time.Time in UTC.
func (t Time) GoTime() gotime.Time { return gotime.UnixMilli(int64(t)).UTC() }

// String renders the timestamp as RFC 3339 for debugging and reports.
func (t Time) String() string {
	if t == MaxTime {
		return "max"
	}
	return t.GoTime().Format(gotime.RFC3339)
}

// Point is a single univariate observation.
type Point struct {
	T Time
	V float64
}

// Series is a univariate time series. The zero value is an empty, usable
// series. All mutating methods preserve the invariant that timestamps are
// strictly increasing.
type Series struct {
	name  string
	times []Time
	vals  []float64
}

// ErrOutOfOrder is returned by Append when a point does not extend the
// series chronologically.
var ErrOutOfOrder = errors.New("ts: appended point is not after the last timestamp")

// New returns an empty series with the given name.
func New(name string) *Series { return &Series{name: name} }

// FromPoints builds a series from points, sorting them by timestamp and
// keeping the last value for duplicate timestamps.
func FromPoints(name string, pts []Point) *Series {
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	s := New(name)
	for _, p := range sorted {
		s.Upsert(p.T, p.V)
	}
	return s
}

// FromSamples builds a series with regularly spaced timestamps starting at
// start with the given step between consecutive samples.
func FromSamples(name string, start, step Time, vals []float64) *Series {
	s := &Series{
		name:  name,
		times: make([]Time, len(vals)),
		vals:  make([]float64, len(vals)),
	}
	copy(s.vals, vals)
	for i := range vals {
		s.times[i] = start + Time(i)*step
	}
	return s
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// SetName renames the series.
func (s *Series) SetName(name string) { s.name = name }

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.times) }

// Empty reports whether the series has no observations.
func (s *Series) Empty() bool { return len(s.times) == 0 }

// At returns the i-th observation.
func (s *Series) At(i int) Point { return Point{s.times[i], s.vals[i]} }

// TimeAt returns the i-th timestamp.
func (s *Series) TimeAt(i int) Time { return s.times[i] }

// ValueAt returns the i-th value.
func (s *Series) ValueAt(i int) float64 { return s.vals[i] }

// Start returns the first timestamp, or MaxTime if the series is empty.
func (s *Series) Start() Time {
	if len(s.times) == 0 {
		return MaxTime
	}
	return s.times[0]
}

// End returns the last timestamp, or a negative sentinel if empty.
func (s *Series) End() Time {
	if len(s.times) == 0 {
		return -1
	}
	return s.times[len(s.times)-1]
}

// Append adds a point that must be strictly after the current last
// timestamp. It returns ErrOutOfOrder otherwise, enforcing chronological
// integrity (R2).
func (s *Series) Append(t Time, v float64) error {
	if n := len(s.times); n > 0 && t <= s.times[n-1] {
		return ErrOutOfOrder
	}
	s.times = append(s.times, t)
	s.vals = append(s.vals, v)
	return nil
}

// MustAppend is Append that panics on error; intended for tests and
// generators where ordering is known by construction.
func (s *Series) MustAppend(t Time, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(fmt.Sprintf("ts: MustAppend(%d) on series ending at %d: %v", t, s.End(), err))
	}
}

// Upsert inserts a point at its chronological position, replacing the value
// if the timestamp already exists. This is the paper's "replacing stale data
// without compromising the structure's integrity" (R3). Appends at the end
// are O(1); interior inserts are O(n).
func (s *Series) Upsert(t Time, v float64) {
	i := s.searchTime(t)
	if i < len(s.times) && s.times[i] == t {
		s.vals[i] = v
		return
	}
	s.times = append(s.times, 0)
	s.vals = append(s.vals, 0)
	copy(s.times[i+1:], s.times[i:])
	copy(s.vals[i+1:], s.vals[i:])
	s.times[i] = t
	s.vals[i] = v
}

// Delete removes the observation at timestamp t, reporting whether one
// existed.
func (s *Series) Delete(t Time) bool {
	i := s.searchTime(t)
	if i >= len(s.times) || s.times[i] != t {
		return false
	}
	s.times = append(s.times[:i], s.times[i+1:]...)
	s.vals = append(s.vals[:i], s.vals[i+1:]...)
	return true
}

// searchTime returns the smallest index i with times[i] >= t.
func (s *Series) searchTime(t Time) int {
	return sort.Search(len(s.times), func(i int) bool { return s.times[i] >= t })
}

// Lookup returns the value at exactly t.
func (s *Series) Lookup(t Time) (float64, bool) {
	i := s.searchTime(t)
	if i < len(s.times) && s.times[i] == t {
		return s.vals[i], true
	}
	return 0, false
}

// ValueAtOrBefore returns the most recent value at or before t, the usual
// "as of" lookup in temporal databases.
func (s *Series) ValueAtOrBefore(t Time) (float64, bool) {
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > t })
	if i == 0 {
		return 0, false
	}
	return s.vals[i-1], true
}

// Slice returns the observations with start <= t < end as a new series
// sharing no storage with s.
func (s *Series) Slice(start, end Time) *Series {
	lo := s.searchTime(start)
	hi := s.searchTime(end)
	out := &Series{
		name:  s.name,
		times: append([]Time(nil), s.times[lo:hi]...),
		vals:  append([]float64(nil), s.vals[lo:hi]...),
	}
	return out
}

// SliceView returns a read-only view of the observations with
// start <= t < end without copying. The view aliases s and must not be
// mutated while s is in use.
func (s *Series) SliceView(start, end Time) *Series {
	lo := s.searchTime(start)
	hi := s.searchTime(end)
	return &Series{name: s.name, times: s.times[lo:hi], vals: s.vals[lo:hi]}
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	return &Series{
		name:  s.name,
		times: append([]Time(nil), s.times...),
		vals:  append([]float64(nil), s.vals...),
	}
}

// Points materializes all observations.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.times))
	for i := range s.times {
		out[i] = Point{s.times[i], s.vals[i]}
	}
	return out
}

// Times returns a copy of the timestamps.
func (s *Series) Times() []Time { return append([]Time(nil), s.times...) }

// Values returns a copy of the values.
func (s *Series) Values() []float64 { return append([]float64(nil), s.vals...) }

// valuesRef returns the internal value slice for package-local hot paths.
func (s *Series) valuesRef() []float64 { return s.vals }

// Map returns a new series with f applied to every value.
func (s *Series) Map(f func(float64) float64) *Series {
	out := s.Clone()
	for i, v := range out.vals {
		out.vals[i] = f(v)
	}
	return out
}

// Filter returns a new series keeping the points for which keep returns true.
func (s *Series) Filter(keep func(Point) bool) *Series {
	out := New(s.name)
	for i := range s.times {
		if p := (Point{s.times[i], s.vals[i]}); keep(p) {
			out.times = append(out.times, p.T)
			out.vals = append(out.vals, p.V)
		}
	}
	return out
}

// Diff returns the series of first differences v[i]-v[i-1] stamped at t[i].
func (s *Series) Diff() *Series {
	out := New(s.name + "_diff")
	for i := 1; i < len(s.vals); i++ {
		out.times = append(out.times, s.times[i])
		out.vals = append(out.vals, s.vals[i]-s.vals[i-1])
	}
	return out
}

// Equal reports whether two series have identical names, timestamps, and
// values (NaNs compare equal to NaNs so round-trip tests can use it).
func (s *Series) Equal(o *Series) bool {
	if s.name != o.name || len(s.times) != len(o.times) {
		return false
	}
	for i := range s.times {
		if s.times[i] != o.times[i] {
			return false
		}
		a, b := s.vals[i], o.vals[i]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			return false
		}
	}
	return true
}

// String renders a compact debug representation.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Series(%s, n=%d", s.name, len(s.times))
	if len(s.times) > 0 {
		fmt.Fprintf(&b, ", %s..%s", s.Start(), s.End())
	}
	b.WriteString(")")
	return b.String()
}

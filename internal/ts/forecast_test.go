package ts

import (
	"math"
	"math/rand"
	"testing"
)

func TestSESFlatForecast(t *testing.T) {
	s := FromSamples("a", 0, 10, []float64{5, 5, 5, 5})
	f, err := s.SES(0.5, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("steps=%d", f.Len())
	}
	for _, p := range f.Points() {
		if !almost(p.V, 5, 1e-9) {
			t.Fatalf("SES of constant should be constant: %v", p)
		}
	}
	if f.TimeAt(0) != 40 || f.TimeAt(2) != 60 {
		t.Fatalf("forecast timestamps: %v", f.Times())
	}
	if _, err := New("e").SES(0.5, 1, 10); err != ErrTooShort {
		t.Fatalf("empty series: %v", err)
	}
	if _, err := s.SES(0, 1, 10); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestHoltExtendsTrend(t *testing.T) {
	s := New("lin")
	for i := 0; i < 50; i++ {
		s.MustAppend(Time(i)*10, 3+2*float64(i))
	}
	f, err := s.Holt(0.8, 0.8, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect line: forecast continues it.
	for i, p := range f.Points() {
		want := 3 + 2*float64(50+i)
		if !almost(p.V, want, 0.5) {
			t.Fatalf("holt[%d]=%v want %v", i, p.V, want)
		}
	}
	if _, err := FromSamples("one", 0, 1, []float64{1}).Holt(0.5, 0.5, 1, 1); err != ErrTooShort {
		t.Fatalf("short series: %v", err)
	}
}

func TestARForecastSine(t *testing.T) {
	n := 400
	s := New("sine")
	for i := 0; i < n; i++ {
		s.MustAppend(Time(i), math.Sin(2*math.Pi*float64(i)/24))
	}
	f, err := s.ARForecast(6, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	// AR on a pure sinusoid should continue it closely.
	var worst float64
	for i, p := range f.Points() {
		want := math.Sin(2 * math.Pi * float64(n+i) / 24)
		if d := math.Abs(p.V - want); d > worst {
			worst = d
		}
	}
	if worst > 0.15 {
		t.Fatalf("AR sine forecast error %v", worst)
	}
}

func TestARForecastConstant(t *testing.T) {
	s := FromSamples("c", 0, 1, []float64{4, 4, 4, 4, 4, 4})
	f, err := s.ARForecast(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f.Points() {
		if !almost(p.V, 4, 1e-9) {
			t.Fatalf("constant AR forecast=%v", p)
		}
	}
}

func TestARForecastErrors(t *testing.T) {
	s := FromSamples("s", 0, 1, []float64{1, 2})
	if _, err := s.ARForecast(3, 1, 1); err != ErrTooShort {
		t.Fatalf("short: %v", err)
	}
	if _, err := s.ARForecast(0, 1, 1); err != ErrTooShort {
		t.Fatalf("p=0: %v", err)
	}
}

func TestMAE(t *testing.T) {
	f := FromSamples("f", 0, 1, []float64{1, 2, 3})
	a := FromSamples("a", 0, 1, []float64{2, 2, 5})
	if got := MAE(f, a); !almost(got, (1+0+2)/3.0, 1e-12) {
		t.Fatalf("mae=%v", got)
	}
	disjoint := FromSamples("d", 100, 1, []float64{1})
	if got := MAE(f, disjoint); !math.IsNaN(got) {
		t.Fatalf("disjoint mae=%v", got)
	}
}

func TestForecastBeatsNaiveOnTrend(t *testing.T) {
	// Holt should beat SES (flat) on a strongly trending series.
	rng := rand.New(rand.NewSource(2))
	train := New("tr")
	actual := New("ac")
	for i := 0; i < 100; i++ {
		v := float64(i)*1.5 + rng.NormFloat64()
		train.MustAppend(Time(i), v)
	}
	for i := 100; i < 120; i++ {
		actual.MustAppend(Time(i), float64(i)*1.5)
	}
	holt, err := train.Holt(0.5, 0.3, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := train.SES(0.5, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if MAE(holt, actual) >= MAE(ses, actual) {
		t.Fatalf("holt MAE %v should beat SES MAE %v on a trend",
			MAE(holt, actual), MAE(ses, actual))
	}
}

func TestHoltWintersSeasonal(t *testing.T) {
	// Seasonal signal with trend: v = 0.1*t + 10*sin(2πt/24).
	n := 24 * 8
	train := New("hw")
	for i := 0; i < n; i++ {
		train.MustAppend(Time(i)*Hour, 0.1*float64(i)+10*math.Sin(2*math.Pi*float64(i)/24))
	}
	f, err := train.HoltWinters(0.3, 0.05, 0.4, 24, 24, Hour)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 24 {
		t.Fatalf("steps=%d", f.Len())
	}
	var worst float64
	for i, p := range f.Points() {
		want := 0.1*float64(n+i) + 10*math.Sin(2*math.Pi*float64(n+i)/24)
		if d := math.Abs(p.V - want); d > worst {
			worst = d
		}
	}
	if worst > 2.0 {
		t.Fatalf("worst seasonal error %v", worst)
	}
	// Holt-Winters must beat non-seasonal Holt on this signal.
	holt, err := train.Holt(0.3, 0.05, 24, Hour)
	if err != nil {
		t.Fatal(err)
	}
	actual := New("a")
	for i := 0; i < 24; i++ {
		actual.MustAppend(Time(n+i)*Hour, 0.1*float64(n+i)+10*math.Sin(2*math.Pi*float64(n+i)/24))
	}
	if MAE(f, actual) >= MAE(holt, actual) {
		t.Fatalf("HW MAE %v >= Holt MAE %v on seasonal data", MAE(f, actual), MAE(holt, actual))
	}
}

func TestHoltWintersErrors(t *testing.T) {
	s := FromSamples("s", 0, 1, make([]float64, 30))
	if _, err := s.HoltWinters(0.3, 0.1, 0.1, 24, 5, 1); err != ErrTooShort {
		t.Fatalf("short: %v", err)
	}
	long := FromSamples("l", 0, 1, make([]float64, 100))
	if _, err := long.HoltWinters(0, 0.1, 0.1, 24, 5, 1); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := long.HoltWinters(0.3, 0.1, 0.1, 1, 5, 1); err != ErrTooShort {
		t.Fatalf("season=1: %v", err)
	}
}

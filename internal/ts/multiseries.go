package ts

import (
	"errors"
	"fmt"
	"sort"
)

// MultiSeries is a multivariate time series: at each timestamp a tuple
// y = (val_1, ..., val_k) of values is observed, one per named variable.
// This models the paper's multi-variate series where y in Y is a tuple.
// Storage is column-major: one float64 slice per variable, all sharing the
// timestamp slice.
type MultiSeries struct {
	name  string
	vars  []string
	index map[string]int
	times []Time
	cols  [][]float64
}

// ErrArity is returned when a tuple has a different arity than the series.
var ErrArity = errors.New("ts: tuple arity does not match variable count")

// NewMulti returns an empty multivariate series over the given variables.
// Variable names must be unique.
func NewMulti(name string, vars ...string) (*MultiSeries, error) {
	m := &MultiSeries{
		name:  name,
		vars:  append([]string(nil), vars...),
		index: make(map[string]int, len(vars)),
		cols:  make([][]float64, len(vars)),
	}
	for i, v := range vars {
		if _, dup := m.index[v]; dup {
			return nil, fmt.Errorf("ts: duplicate variable %q", v)
		}
		m.index[v] = i
	}
	return m, nil
}

// MustNewMulti is NewMulti that panics on error.
func MustNewMulti(name string, vars ...string) *MultiSeries {
	m, err := NewMulti(name, vars...)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the series name.
func (m *MultiSeries) Name() string { return m.name }

// SetName renames the series.
func (m *MultiSeries) SetName(name string) { m.name = name }

// Vars returns the variable names in column order.
func (m *MultiSeries) Vars() []string { return append([]string(nil), m.vars...) }

// Arity returns the number of variables k.
func (m *MultiSeries) Arity() int { return len(m.vars) }

// Len returns the number of observations.
func (m *MultiSeries) Len() int { return len(m.times) }

// Start returns the first timestamp, or MaxTime if empty.
func (m *MultiSeries) Start() Time {
	if len(m.times) == 0 {
		return MaxTime
	}
	return m.times[0]
}

// End returns the last timestamp, or a negative sentinel if empty.
func (m *MultiSeries) End() Time {
	if len(m.times) == 0 {
		return -1
	}
	return m.times[len(m.times)-1]
}

// TimeAt returns the i-th timestamp.
func (m *MultiSeries) TimeAt(i int) Time { return m.times[i] }

// Tuple returns the i-th observation tuple in variable order.
func (m *MultiSeries) Tuple(i int) []float64 {
	out := make([]float64, len(m.cols))
	for c := range m.cols {
		out[c] = m.cols[c][i]
	}
	return out
}

// Append adds an observation strictly after the current end, mirroring
// Series.Append.
func (m *MultiSeries) Append(t Time, tuple ...float64) error {
	if len(tuple) != len(m.vars) {
		return ErrArity
	}
	if n := len(m.times); n > 0 && t <= m.times[n-1] {
		return ErrOutOfOrder
	}
	m.times = append(m.times, t)
	for c := range m.cols {
		m.cols[c] = append(m.cols[c], tuple[c])
	}
	return nil
}

// MustAppend is Append that panics on error.
func (m *MultiSeries) MustAppend(t Time, tuple ...float64) {
	if err := m.Append(t, tuple...); err != nil {
		panic(err)
	}
}

// Upsert inserts an observation at its chronological position, replacing
// the tuple when the timestamp already exists — the multivariate analogue
// of Series.Upsert (stale data replacement, requirement R3).
func (m *MultiSeries) Upsert(t Time, tuple ...float64) error {
	if len(tuple) != len(m.vars) {
		return ErrArity
	}
	i := sort.Search(len(m.times), func(i int) bool { return m.times[i] >= t })
	if i < len(m.times) && m.times[i] == t {
		for c := range m.cols {
			m.cols[c][i] = tuple[c]
		}
		return nil
	}
	m.times = append(m.times, 0)
	copy(m.times[i+1:], m.times[i:])
	m.times[i] = t
	for c := range m.cols {
		m.cols[c] = append(m.cols[c], 0)
		copy(m.cols[c][i+1:], m.cols[c][i:])
		m.cols[c][i] = tuple[c]
	}
	return nil
}

// Var extracts one variable as a univariate Series named "name.var". The
// result copies the data.
func (m *MultiSeries) Var(v string) (*Series, bool) {
	c, ok := m.index[v]
	if !ok {
		return nil, false
	}
	return &Series{
		name:  m.name + "." + v,
		times: append([]Time(nil), m.times...),
		vals:  append([]float64(nil), m.cols[c]...),
	}, true
}

// MustVar is Var that panics when the variable is missing.
func (m *MultiSeries) MustVar(v string) *Series {
	s, ok := m.Var(v)
	if !ok {
		panic(fmt.Sprintf("ts: no variable %q in %s", v, m.name))
	}
	return s
}

// Slice returns observations with start <= t < end as a new MultiSeries.
func (m *MultiSeries) Slice(start, end Time) *MultiSeries {
	lo := sort.Search(len(m.times), func(i int) bool { return m.times[i] >= start })
	hi := sort.Search(len(m.times), func(i int) bool { return m.times[i] >= end })
	out := MustNewMulti(m.name, m.vars...)
	out.times = append([]Time(nil), m.times[lo:hi]...)
	for c := range m.cols {
		out.cols[c] = append([]float64(nil), m.cols[c][lo:hi]...)
	}
	return out
}

// Clone returns a deep copy.
func (m *MultiSeries) Clone() *MultiSeries {
	out := MustNewMulti(m.name, m.vars...)
	out.times = append([]Time(nil), m.times...)
	for c := range m.cols {
		out.cols[c] = append([]float64(nil), m.cols[c]...)
	}
	return out
}

// Equal reports structural equality of two multivariate series.
func (m *MultiSeries) Equal(o *MultiSeries) bool {
	if m.name != o.name || len(m.vars) != len(o.vars) || len(m.times) != len(o.times) {
		return false
	}
	for i, v := range m.vars {
		if o.vars[i] != v {
			return false
		}
	}
	for i := range m.times {
		if m.times[i] != o.times[i] {
			return false
		}
	}
	for c := range m.cols {
		for i := range m.cols[c] {
			if m.cols[c][i] != o.cols[c][i] {
				return false
			}
		}
	}
	return true
}

// Combine zips univariate series with identical timestamps into one
// multivariate series whose variables are the input series names.
func Combine(name string, parts ...*Series) (*MultiSeries, error) {
	if len(parts) == 0 {
		return NewMulti(name)
	}
	n := parts[0].Len()
	vars := make([]string, len(parts))
	for i, p := range parts {
		if p.Len() != n {
			return nil, fmt.Errorf("ts: Combine length mismatch: %d vs %d", p.Len(), n)
		}
		vars[i] = p.Name()
	}
	m, err := NewMulti(name, vars...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 1; j < len(parts); j++ {
			if parts[j].TimeAt(i) != parts[0].TimeAt(i) {
				return nil, fmt.Errorf("ts: Combine timestamp mismatch at index %d", i)
			}
		}
	}
	m.times = parts[0].Times()
	for j, p := range parts {
		m.cols[j] = p.Values()
	}
	return m, nil
}

// String renders a compact debug representation.
func (m *MultiSeries) String() string {
	return fmt.Sprintf("MultiSeries(%s, k=%d, n=%d)", m.name, len(m.vars), len(m.times))
}

package pipeline

import (
	"strings"
	"testing"

	"hygraph/internal/core"
	"hygraph/internal/dataset"
)

func run(t *testing.T, seed int64) (*dataset.FraudData, *Report) {
	t.Helper()
	cfg := dataset.DefaultFraud()
	cfg.Seed = seed
	d := dataset.GenerateFraud(cfg)
	return d, Run(d, DefaultParams())
}

func asSet(us []int) map[int]bool {
	m := map[int]bool{}
	for _, u := range us {
		m[u] = true
	}
	return m
}

// TestGraphOnlyFlagsBait reproduces Figure 2's "graph way": the structural
// query flags every fraudster but also the heavy users.
func TestGraphOnlyFlagsBait(t *testing.T) {
	d, r := run(t, 1)
	got := asSet(r.GraphOnly)
	for _, u := range d.TruePositives() {
		if !got[u] {
			t.Fatalf("graph-only missed fraudster %d", u)
		}
	}
	baited := 0
	for _, u := range d.FalsePositiveBait() {
		if got[u] {
			baited++
		}
	}
	if baited == 0 {
		t.Fatal("graph-only flagged no heavy user: the false-positive story needs bait")
	}
}

// TestSeriesOnlyFlagsVolatile reproduces Figure 2's "time-series way".
func TestSeriesOnlyFlagsVolatile(t *testing.T) {
	d, r := run(t, 1)
	got := asSet(r.SeriesOnly)
	for _, u := range d.TruePositives() {
		if !got[u] {
			t.Fatalf("series-only missed fraudster %d", u)
		}
	}
	baited := 0
	for _, u := range d.VolatileBait() {
		if got[u] {
			baited++
		}
	}
	if baited == 0 {
		t.Fatal("series-only flagged no volatile user")
	}
}

// TestHybridExact reproduces Figure 4's claim: the pipeline flags exactly
// the planted fraudsters — "User 3" (heavy) exonerated, "User 1" confirmed.
func TestHybridExact(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		d, r := run(t, seed)
		got := asSet(r.Hybrid)
		want := asSet(d.TruePositives())
		for u := range want {
			if !got[u] {
				t.Fatalf("seed %d: hybrid missed fraudster %d", seed, u)
			}
		}
		for u := range got {
			if !want[u] {
				t.Fatalf("seed %d: hybrid false positive %d (%s)", seed, u, d.Truth[u])
			}
		}
		if r.HybridMetrics.F1() != 1 {
			t.Fatalf("seed %d: hybrid F1=%v", seed, r.HybridMetrics.F1())
		}
	}
}

// TestHybridBeatsBaselines: the quantitative Figure-4 claim.
func TestHybridBeatsBaselines(t *testing.T) {
	_, r := run(t, 2)
	if r.HybridMetrics.F1() <= r.GraphMetrics.F1() {
		t.Fatalf("hybrid F1 %v <= graph-only %v", r.HybridMetrics.F1(), r.GraphMetrics.F1())
	}
	if r.HybridMetrics.F1() <= r.SeriesMetrics.F1() {
		t.Fatalf("hybrid F1 %v <= series-only %v", r.HybridMetrics.F1(), r.SeriesMetrics.F1())
	}
	// Recall must not be sacrificed for precision.
	if r.HybridMetrics.Recall() < 1 {
		t.Fatalf("hybrid recall=%v", r.HybridMetrics.Recall())
	}
}

func TestClustersAndSubgraphs(t *testing.T) {
	d, r := run(t, 1)
	if len(r.Clusters) != len(d.Users) {
		t.Fatalf("cluster assignment len=%d", len(r.Clusters))
	}
	if len(r.SuspiciousClusters) == 0 {
		t.Fatal("no suspicious clusters")
	}
	// The pipeline materialized logical subgraphs on the instance.
	if d.H.NumSubgraphs() < DefaultParams().Clusters {
		t.Fatalf("subgraphs=%d", d.H.NumSubgraphs())
	}
	// Suspicious clusters carry the annotation property.
	annotated := 0
	d.H.Subgraphs(func(s *core.Subgraph) bool {
		if s.Prop("state").String() == "suspicious" {
			annotated++
		}
		return true
	})
	if annotated != len(r.SuspiciousClusters) {
		t.Fatalf("annotated=%d suspicious=%d", annotated, len(r.SuspiciousClusters))
	}
}

func TestFormatReport(t *testing.T) {
	d, r := run(t, 1)
	out := FormatReport(d, r)
	for _, want := range []string{"graph-only", "series-only", "hybrid", "precision", "suspicious clusters"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

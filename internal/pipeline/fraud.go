// Package pipeline implements the paper's Figure 4: the HyGraph pipeline
// that solves the credit-card fraud running example. It exposes the three
// baselines side by side —
//
//   - GraphOnly: the Listing-1 structural query (≥3 high-amount transactions
//     to nearby merchants within an hour). Flags fraudsters AND legitimate
//     heavy spenders (false positives).
//   - SeriesOnly: the Listing-2 outlier detection on card balances. Flags
//     fraudsters AND legitimately volatile balances (false positives).
//   - Hybrid: the HyGraph pipeline — ingest, enrich (similarity edges,
//     metric evolution), cluster on hybrid embeddings, then classify
//     clusters and members using both evidence channels. Flags exactly the
//     planted fraudsters on well-formed workloads.
//
// The package is used by cmd/fraudpipe, examples/fraud, the integration
// tests, and the Figure-2/Figure-4 benchmarks.
package pipeline

import (
	"fmt"
	"math"
	"sort"

	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/embed"
	"hygraph/internal/lpg"
	"hygraph/internal/ml"
	"hygraph/internal/tpg"
	"hygraph/internal/ts"
)

// Params tune the detectors.
type Params struct {
	HighAmount  float64 // Listing-1 amount threshold
	MaxDistance float64 // Listing-1 merchant distance threshold
	MinFanOut   int     // Listing-1 distinct merchants within the window
	Window      ts.Time // Listing-1 time window
	AnomalyZ    float64 // Listing-2 rolling z-score threshold
	AnomalyWin  int     // Listing-2 rolling window (points)
	DrainFrac   float64 // hybrid: balance min must fall below frac·mean
	Clusters    int     // hybrid: k for k-means over hybrid embeddings
	Seed        int64
}

// DefaultParams matches the running example's thresholds.
func DefaultParams() Params {
	return Params{
		HighAmount:  1000,
		MaxDistance: 1000,
		MinFanOut:   3,
		Window:      ts.Hour,
		AnomalyZ:    6,
		AnomalyWin:  24,
		DrainFrac:   0.25,
		Clusters:    4,
		Seed:        1,
	}
}

// Report is the pipeline output.
type Report struct {
	GraphOnly  []int // user indexes flagged by the structural query
	SeriesOnly []int // user indexes flagged by balance outliers
	Hybrid     []int // final hybrid verdicts
	// Clusters maps each user index to its hybrid cluster.
	Clusters []int
	// SuspiciousClusters lists cluster ids classified as suspicious.
	SuspiciousClusters []int
	// Metrics scores each detector against planted ground truth.
	GraphMetrics  ml.BinaryMetrics
	SeriesMetrics ml.BinaryMetrics
	HybridMetrics ml.BinaryMetrics
}

// Run executes the full Figure 4 pipeline on a generated fraud workload.
func Run(d *dataset.FraudData, p Params) *Report {
	r := &Report{}
	r.GraphOnly = GraphOnly(d, p)
	r.SeriesOnly = SeriesOnly(d, p)
	r.Hybrid, r.Clusters, r.SuspiciousClusters = Hybrid(d, p)

	truth := make([]int, len(d.Truth))
	for i, c := range d.Truth {
		if c == dataset.Fraudster {
			truth[i] = 1
		}
	}
	toPred := func(flagged []int) []int {
		pred := make([]int, len(d.Truth))
		for _, u := range flagged {
			pred[u] = 1
		}
		return pred
	}
	r.GraphMetrics = ml.Evaluate(toPred(r.GraphOnly), truth)
	r.SeriesMetrics = ml.Evaluate(toPred(r.SeriesOnly), truth)
	r.HybridMetrics = ml.Evaluate(toPred(r.Hybrid), truth)
	return r
}

// GraphOnly runs the Listing-1 structural detector: a user is suspicious
// when their card sends >= MinFanOut transactions above HighAmount to
// distinct merchants within MaxDistance of each other inside one Window.
func GraphOnly(d *dataset.FraudData, p Params) []int {
	var out []int
	for u := range d.Users {
		if graphEvidence(d, u, p) {
			out = append(out, u)
		}
	}
	return out
}

// txEvent is one high-amount transaction of a card.
type txEvent struct {
	t   ts.Time
	loc float64
	m   core.VID
}

func graphEvidence(d *dataset.FraudData, u int, p Params) bool {
	h := d.H
	card := d.Cards[u]
	var events []txEvent
	for _, e := range h.OutEdges(card) {
		if e.Label != "TX_FLOW" || e.Kind != core.TS {
			continue
		}
		s, ok := e.SeriesVar("")
		if !ok {
			continue
		}
		loc, _ := h.Vertex(e.To).Prop("loc").AsFloat()
		for i := 0; i < s.Len(); i++ {
			if s.ValueAt(i) > p.HighAmount {
				events = append(events, txEvent{s.TimeAt(i), loc, e.To})
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	// Slide the window; count distinct nearby merchants.
	for i := range events {
		merchants := map[core.VID]bool{events[i].m: true}
		for j := i + 1; j < len(events) && events[j].t <= events[i].t+p.Window; j++ {
			if math.Abs(events[j].loc-events[i].loc) < p.MaxDistance {
				merchants[events[j].m] = true
			}
		}
		if len(merchants) >= p.MinFanOut {
			return true
		}
	}
	return false
}

// SeriesOnly runs the Listing-2 detector: a user is suspicious when their
// card balance shows rolling z-score outliers.
func SeriesOnly(d *dataset.FraudData, p Params) []int {
	var out []int
	for u := range d.Users {
		if seriesEvidence(d, u, p) {
			out = append(out, u)
		}
	}
	return out
}

func seriesEvidence(d *dataset.FraudData, u int, p Params) bool {
	s, ok := d.H.Vertex(d.Cards[u]).SeriesVar("")
	if !ok {
		return false
	}
	return len(s.RollingZAnomalies(p.AnomalyWin, p.AnomalyZ)) > 0
}

// Hybrid runs the Figure-4 HyGraph pipeline:
//
//  1. Enrich: add SIMILAR TS edges between correlated card balances
//     (CorrelationEdges) so related cards share cluster context.
//  2. Embed: FastRP over the instant view (structure) ++ balance features
//     (temporal), standardized — the paper's hybrid embedding (E).
//  3. Cluster: k-means over hybrid embeddings; each cluster becomes a
//     logical subgraph with meta-properties (C2).
//  4. Classify: a cluster is suspicious when a member has BOTH evidence
//     channels (structural fan-out AND balance drain); within suspicious
//     clusters, members are flagged only with both evidences — the
//     cross-checking that clears "User 3" and keeps "User 1" (C1).
func Hybrid(d *dataset.FraudData, p Params) (flagged []int, clusters []int, suspicious []int) {
	h := d.H
	// Stage 1: enrichment. Correlated balances get similarity edges.
	if _, err := h.CorrelationEdges(0.97, ts.Hour, 24); err != nil {
		panic(err)
	}
	// Stage 2: hybrid embeddings over the mid-series view.
	mid := midInstant(d)
	view := h.SnapshotAt(mid)
	structEmb, idx := embed.FastRP(view.Graph, embed.FastRPConfig{
		Dim: 16, Weights: []float64{0.5, 1}, Seed: p.Seed, NormalizeL2: true,
	})
	rows := make([][]float64, len(d.Users))
	series := make([]*ts.Series, len(d.Users))
	for u := range d.Users {
		series[u], _ = h.Vertex(d.Cards[u]).SeriesVar("")
	}
	feat := embed.SeriesFeatures(series)
	embed.StandardizeColumns(feat)
	for u := range d.Users {
		var structural []float64
		if sid, ok := view.VertexOf[d.Cards[u]]; ok {
			structural = structEmb.Row(idx[sid])
		} else {
			structural = make([]float64, 16)
		}
		rows[u] = append(append([]float64(nil), structural...), feat.Row(u)...)
	}
	// Stage 3: cluster and materialize logical subgraphs.
	km := ml.KMeans(rows, p.Clusters, 100, p.Seed)
	clusters = km.Assign
	subOf := map[int]core.SID{}
	for cl := 0; cl < len(km.Centroids); cl++ {
		sid, err := h.AddSubgraph(tpg.Always, "Cluster")
		if err != nil {
			panic(err)
		}
		subOf[cl] = sid
	}
	for u, cl := range clusters {
		if err := h.AddVertexMember(subOf[cl], d.Users[u], tpg.Always); err != nil {
			panic(err)
		}
		if err := h.AddVertexMember(subOf[cl], d.Cards[u], tpg.Always); err != nil {
			panic(err)
		}
	}
	// Stage 4: temporal classification of clusters and members.
	suspiciousSet := map[int]bool{}
	for u := range d.Users {
		if graphEvidence(d, u, p) && drainEvidence(d, u, p) {
			suspiciousSet[clusters[u]] = true
		}
	}
	for cl := range suspiciousSet {
		suspicious = append(suspicious, cl)
		h.SetSubgraphProp(subOf[cl], "state", lpg.Str("suspicious"))
	}
	sort.Ints(suspicious)
	for u := range d.Users {
		if suspiciousSet[clusters[u]] && graphEvidence(d, u, p) && drainEvidence(d, u, p) {
			flagged = append(flagged, u)
		}
	}
	return flagged, clusters, suspicious
}

// drainEvidence checks the hybrid balance criterion: the balance floor falls
// below DrainFrac of its mean (a drain, not mere volatility) AND the drain
// is an anomaly against the local history.
func drainEvidence(d *dataset.FraudData, u int, p Params) bool {
	s, ok := d.H.Vertex(d.Cards[u]).SeriesVar("")
	if !ok {
		return false
	}
	return s.Min() < p.DrainFrac*s.Mean() && len(s.RollingZAnomalies(p.AnomalyWin, p.AnomalyZ)) > 0
}

func midInstant(d *dataset.FraudData) ts.Time {
	return ts.Time(d.Config.Hours/2) * ts.Hour
}

// FormatReport renders the three detectors' verdicts and scores.
func FormatReport(d *dataset.FraudData, r *Report) string {
	name := func(us []int) []string {
		out := make([]string, len(us))
		for i, u := range us {
			out[i] = fmt.Sprintf("user-%03d(%s)", u, d.Truth[u])
		}
		return out
	}
	s := ""
	s += fmt.Sprintf("graph-only  flags %v\n  precision=%.2f recall=%.2f F1=%.2f\n",
		name(r.GraphOnly), r.GraphMetrics.Precision(), r.GraphMetrics.Recall(), r.GraphMetrics.F1())
	s += fmt.Sprintf("series-only flags %v\n  precision=%.2f recall=%.2f F1=%.2f\n",
		name(r.SeriesOnly), r.SeriesMetrics.Precision(), r.SeriesMetrics.Recall(), r.SeriesMetrics.F1())
	s += fmt.Sprintf("hybrid      flags %v\n  precision=%.2f recall=%.2f F1=%.2f\n",
		name(r.Hybrid), r.HybridMetrics.Precision(), r.HybridMetrics.Recall(), r.HybridMetrics.F1())
	s += fmt.Sprintf("suspicious clusters: %v of %d\n", r.SuspiciousClusters, max0(r.Clusters))
	return s
}

func max0(assign []int) int {
	m := 0
	for _, a := range assign {
		if a+1 > m {
			m = a + 1
		}
	}
	return m
}

package index

import (
	"math"
	"math/rand"
	"testing"

	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/ts"
)

func randVectors(n, d int, seed int64) ([][]float64, []int64) {
	rng := rand.New(rand.NewSource(seed))
	vs := make([][]float64, n)
	ids := make([]int64, n)
	for i := range vs {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vs[i] = v
		ids[i] = int64(i * 10)
	}
	return vs, ids
}

func TestFlatIndexExact(t *testing.T) {
	vs, ids := randVectors(100, 8, 1)
	ix, err := BuildVectorIndex(vs, ids, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Self-query: nearest must be itself at distance 0.
	for i := 0; i < 100; i += 17 {
		hits, err := ix.Nearest(vs[i], 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != 3 || hits[0].ID != ids[i] || hits[0].Dist != 0 {
			t.Fatalf("self query %d: %v", i, hits)
		}
		// Distances nondecreasing.
		for j := 1; j < len(hits); j++ {
			if hits[j].Dist < hits[j-1].Dist {
				t.Fatalf("unsorted hits: %v", hits)
			}
		}
	}
}

func TestIVFRecall(t *testing.T) {
	vs, ids := randVectors(500, 8, 2)
	ix, err := BuildVectorIndex(vs, ids, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := ix.Recall(5, 4, 50); r < 0.8 {
		t.Fatalf("recall@nProbe=4 is %v", r)
	}
	// Probing all cells is exact.
	if r := ix.Recall(5, 0, 50); r != 1 {
		t.Fatalf("exhaustive recall=%v", r)
	}
}

func TestVectorIndexErrors(t *testing.T) {
	vs, ids := randVectors(10, 4, 3)
	if _, err := BuildVectorIndex(vs, ids[:5], 1, 1); err == nil {
		t.Fatal("mismatched ids accepted")
	}
	bad := append(vs[:9:9], []float64{1})
	if _, err := BuildVectorIndex(bad, ids, 1, 1); err != ErrDimension {
		t.Fatalf("ragged vectors: %v", err)
	}
	ix, _ := BuildVectorIndex(vs, ids, 1, 1)
	if _, err := ix.Nearest([]float64{1}, 3, 0); err != ErrDimension {
		t.Fatalf("short query: %v", err)
	}
	empty, _ := BuildVectorIndex(nil, nil, 4, 1)
	if hits, err := empty.Nearest([]float64{1}, 3, 0); err != nil || hits != nil {
		t.Fatalf("empty index: %v %v", hits, err)
	}
}

func TestCosineNearest(t *testing.T) {
	vs := [][]float64{{1, 0}, {0.9, 0.1}, {0, 1}, {-1, 0}}
	ids := []int64{0, 1, 2, 3}
	ix, _ := BuildVectorIndex(vs, ids, 1, 1)
	hits, err := ix.CosineNearest([]float64{2, 0}, 2) // scale-invariant
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].ID != 0 || hits[1].ID != 1 {
		t.Fatalf("cosine hits=%v", hits)
	}
	if math.Abs(hits[0].Dist) > 1e-12 {
		t.Fatalf("parallel distance=%v", hits[0].Dist)
	}
}

func TestSemanticSimilarFindsSameClass(t *testing.T) {
	d := dataset.GenerateFraud(dataset.DefaultFraud())
	mid := ts.Time(d.Config.Hours/2) * ts.Hour
	sem, err := BuildSemantic(d.H, DefaultSemantic(mid))
	if err != nil {
		t.Fatal(err)
	}
	// A fraudster's card should have another fraudster's card among its
	// nearest TS peers more often than chance: the drain dominates the
	// standardized feature space.
	frauds := d.TruePositives()
	if len(frauds) < 2 {
		t.Skip("need 2 fraudsters")
	}
	fraudCards := map[core.VID]bool{}
	for _, u := range frauds {
		fraudCards[d.Cards[u]] = true
	}
	found := 0
	for _, u := range frauds {
		peers, err := sem.Similar(d.Cards[u], 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range peers {
			if fraudCards[p] {
				found++
				break
			}
		}
	}
	if found < len(frauds)-1 {
		t.Fatalf("only %d/%d fraud cards found a fraud peer", found, len(frauds))
	}
	// Retrieval by raw vector works and returns the vertex itself first.
	vec, _ := sem.Vector(d.Cards[frauds[0]])
	got, err := sem.Retrieve(vec, 1)
	if err != nil || len(got) != 1 || got[0] != d.Cards[frauds[0]] {
		t.Fatalf("retrieve=%v err=%v", got, err)
	}
	// Unknown vertex errors.
	if _, err := sem.Similar(core.VID(1<<40), 3); err == nil {
		t.Fatal("unknown vertex accepted")
	}
}

func TestCombinedIndexGroupsByShapeAndLevel(t *testing.T) {
	h := core.New()
	mk := func(base float64, rising bool) *ts.Series {
		s := ts.New("s")
		for i := 0; i < 64; i++ {
			v := base
			if rising {
				v += float64(i)
			} else {
				v -= float64(i)
			}
			s.MustAppend(ts.Time(i), v)
		}
		return s
	}
	r1, _ := h.AddTSVertexUni(mk(10, true), "S")
	r2, _ := h.AddTSVertexUni(mk(12, true), "S")
	f1, _ := h.AddTSVertexUni(mk(10, false), "S")
	hi, _ := h.AddTSVertexUni(mk(10000, true), "S")
	ci := BuildCombined(h, 4, 3)
	// Rising low-level series share a bucket.
	b1, ok1 := ci.Bucket(r1)
	b2, ok2 := ci.Bucket(r2)
	if !ok1 || !ok2 || b1 != b2 {
		t.Fatalf("rising twins split: %q vs %q", b1, b2)
	}
	// Falling series lands elsewhere (different SAX word).
	if bf, _ := ci.Bucket(f1); bf == b1 {
		t.Fatalf("falling series shares bucket %q", bf)
	}
	// Same shape, different level → different quantile bucket.
	if bh, _ := ci.Bucket(hi); bh == b1 {
		t.Fatalf("high-level series shares bucket %q", bh)
	}
	// Peers and lookup agree.
	peers := ci.Peers(r1)
	if len(peers) != 1 || peers[0] != r2 {
		t.Fatalf("peers=%v", peers)
	}
	if got := ci.Lookup(b1); len(got) != 2 {
		t.Fatalf("lookup=%v", got)
	}
	if len(ci.Buckets()) < 3 {
		t.Fatalf("buckets=%v", ci.Buckets())
	}
	// PG vertices are not indexed.
	if _, ok := ci.Bucket(core.VID(999)); ok {
		t.Fatal("phantom bucket")
	}
}

package index

import (
	"fmt"
	"math"
	"sort"

	"hygraph/internal/core"
	"hygraph/internal/embed"
	"hygraph/internal/ts"
)

// SemanticConfig configures a semantic index over a HyGraph instance.
type SemanticConfig struct {
	// At is the instant whose structural view is embedded.
	At ts.Time
	// StructDim is the FastRP dimension for the structural half.
	StructDim int
	// Cells is the IVF cell count (<=1 = exact index).
	Cells int
	Seed  int64
}

// DefaultSemantic returns a reasonable configuration for mid-sized graphs.
func DefaultSemantic(at ts.Time) SemanticConfig {
	return SemanticConfig{At: at, StructDim: 16, Cells: 8, Seed: 1}
}

// Semantic is the paper's "semantic index": every vertex gets a hybrid
// embedding — FastRP over the instant's structural view concatenated with
// its series' statistical features (zeros for PG vertices without series) —
// and a vector index over them supports similarity retrieval. This is the
// retrieval substrate the roadmap's HyGraph-RAG step needs: "relevant nodes
// are found by similar embeddings".
type Semantic struct {
	cfg   SemanticConfig
	index *VectorIndex
	vecOf map[core.VID][]float64
}

// BuildSemantic embeds every vertex of the instance and indexes the result.
func BuildSemantic(h *core.HyGraph, cfg SemanticConfig) (*Semantic, error) {
	if cfg.StructDim <= 0 {
		cfg.StructDim = 16
	}
	view := h.SnapshotAt(cfg.At)
	structEmb, rowOf := embed.FastRP(view.Graph, embed.FastRPConfig{
		Dim: cfg.StructDim, Weights: []float64{0.5, 1}, Seed: cfg.Seed, NormalizeL2: true,
	})
	// Series features for TS vertices, standardized across all of them.
	var tsIDs []core.VID
	var tsSeries []*ts.Series
	h.Vertices(func(v *core.Vertex) bool {
		if v.Kind == core.TS {
			if s, ok := v.SeriesVar(""); ok {
				tsIDs = append(tsIDs, v.ID)
				tsSeries = append(tsSeries, s)
			}
		}
		return true
	})
	feat := embed.SeriesFeatures(tsSeries)
	embed.StandardizeColumns(feat)
	featOf := map[core.VID][]float64{}
	for i, id := range tsIDs {
		featOf[id] = feat.Row(i)
	}

	sem := &Semantic{cfg: cfg, vecOf: map[core.VID][]float64{}}
	var vectors [][]float64
	var ids []int64
	h.Vertices(func(v *core.Vertex) bool {
		vec := make([]float64, cfg.StructDim+ts.NumFeatures)
		if sid, ok := view.VertexOf[v.ID]; ok {
			copy(vec, structEmb.Row(rowOf[sid]))
		}
		if f, ok := featOf[v.ID]; ok {
			copy(vec[cfg.StructDim:], f)
		}
		sem.vecOf[v.ID] = vec
		vectors = append(vectors, vec)
		ids = append(ids, int64(v.ID))
		return true
	})
	ix, err := BuildVectorIndex(vectors, ids, cfg.Cells, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sem.index = ix
	return sem, nil
}

// Vector returns a vertex's hybrid embedding.
func (s *Semantic) Vector(v core.VID) ([]float64, bool) {
	vec, ok := s.vecOf[v]
	return vec, ok
}

// Similar returns up to k vertices most similar to v (excluding v itself),
// nearest first.
func (s *Semantic) Similar(v core.VID, k int) ([]core.VID, error) {
	vec, ok := s.vecOf[v]
	if !ok {
		return nil, fmt.Errorf("index: vertex %d not embedded", v)
	}
	hits, err := s.index.Nearest(vec, k+1, 2)
	if err != nil {
		return nil, err
	}
	out := make([]core.VID, 0, k)
	for _, h := range hits {
		if core.VID(h.ID) == v {
			continue
		}
		out = append(out, core.VID(h.ID))
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// Retrieve is the GraphRAG entry point: nearest vertices to an arbitrary
// query vector (e.g. the embedding of a natural-language question in a full
// deployment), each expandable into its neighborhood as LLM context.
func (s *Semantic) Retrieve(query []float64, k int) ([]core.VID, error) {
	hits, err := s.index.Nearest(query, k, 2)
	if err != nil {
		return nil, err
	}
	out := make([]core.VID, len(hits))
	for i, h := range hits {
		out[i] = core.VID(h.ID)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Combined property + series-feature index.

// CombinedIndex groups TS vertices by discretized aggregate features — the
// roadmap's "property index extended to include aggregated time-series
// features, enabling the grouping of nodes by shared characteristics".
// Buckets are (SAX word, level) pairs, where level is the order of
// magnitude of the series mean (stable under small mean perturbations,
// unlike rank-based quantiles).
type CombinedIndex struct {
	byBucket map[string][]core.VID
	bucketOf map[core.VID]string
}

// BuildCombined indexes every TS vertex by its SAX word (shape) and the
// order of magnitude of its mean value (level).
func BuildCombined(h *core.HyGraph, segments, alphabet int) *CombinedIndex {
	ci := &CombinedIndex{byBucket: map[string][]core.VID{}, bucketOf: map[core.VID]string{}}
	h.Vertices(func(v *core.Vertex) bool {
		if v.Kind != core.TS {
			return true
		}
		s, ok := v.SeriesVar("")
		if !ok || s.Len() < segments {
			return true
		}
		word, err := s.SAX(segments, alphabet)
		if err != nil {
			return true
		}
		bucket := fmt.Sprintf("%s/L%d", word, levelOf(s.Mean()))
		ci.byBucket[bucket] = append(ci.byBucket[bucket], v.ID)
		ci.bucketOf[v.ID] = bucket
		return true
	})
	return ci
}

// levelOf is the order of magnitude of |m|: 0 for |m| < 1, then 1 per
// decade, negated for negative means so levels stay distinct.
func levelOf(m float64) int {
	a := math.Abs(m)
	if a < 1 {
		return 0
	}
	l := int(math.Floor(math.Log10(a))) + 1
	if m < 0 {
		return -l
	}
	return l
}

// Bucket returns the bucket key of a vertex.
func (ci *CombinedIndex) Bucket(v core.VID) (string, bool) {
	b, ok := ci.bucketOf[v]
	return b, ok
}

// Lookup returns the TS vertices in a bucket.
func (ci *CombinedIndex) Lookup(bucket string) []core.VID {
	return append([]core.VID(nil), ci.byBucket[bucket]...)
}

// Peers returns the other vertices sharing v's bucket.
func (ci *CombinedIndex) Peers(v core.VID) []core.VID {
	b, ok := ci.bucketOf[v]
	if !ok {
		return nil
	}
	var out []core.VID
	for _, id := range ci.byBucket[b] {
		if id != v {
			out = append(out, id)
		}
	}
	return out
}

// Buckets returns all bucket keys, sorted.
func (ci *CombinedIndex) Buckets() []string {
	out := make([]string, 0, len(ci.byBucket))
	for b := range ci.byBucket {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Package index implements the indexing roadmap of the paper's Section 6:
// semantic (vector) indexes over hybrid embeddings for GraphRAG-style
// retrieval, and combined indexes that extend a property index with
// aggregated time-series features so nodes group by shared temporal
// characteristics.
package index

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hygraph/internal/ml"
)

// VectorIndex is a k-nearest-neighbor index over dense vectors. Vectors are
// partitioned into Voronoi cells by k-means (an IVF-style coarse quantizer);
// queries probe the closest nProbe cells, turning exact O(n) scans into
// O(n·nProbe/cells) with near-perfect recall for modest nProbe.
type VectorIndex struct {
	dim       int
	vectors   [][]float64
	ids       []int64 // caller-provided payload ids, parallel to vectors
	centroids [][]float64
	cells     [][]int // vector offsets per centroid
}

// ErrDimension is returned when a vector's length does not match the index.
var ErrDimension = errors.New("index: vector dimension mismatch")

// BuildVectorIndex builds an index over the given vectors and payload ids.
// cells <= 1 produces a flat (exact brute-force) index. The seed makes the
// partitioning deterministic.
func BuildVectorIndex(vectors [][]float64, ids []int64, cells int, seed int64) (*VectorIndex, error) {
	if len(vectors) != len(ids) {
		return nil, fmt.Errorf("index: %d vectors but %d ids", len(vectors), len(ids))
	}
	idx := &VectorIndex{ids: append([]int64(nil), ids...)}
	if len(vectors) == 0 {
		return idx, nil
	}
	idx.dim = len(vectors[0])
	idx.vectors = make([][]float64, len(vectors))
	for i, v := range vectors {
		if len(v) != idx.dim {
			return nil, ErrDimension
		}
		idx.vectors[i] = append([]float64(nil), v...)
	}
	if cells <= 1 || cells >= len(vectors) {
		idx.centroids = nil // flat index
		return idx, nil
	}
	km := ml.KMeans(idx.vectors, cells, 50, seed)
	idx.centroids = km.Centroids
	idx.cells = make([][]int, len(km.Centroids))
	for i, c := range km.Assign {
		idx.cells[c] = append(idx.cells[c], i)
	}
	return idx, nil
}

// Len returns the number of indexed vectors.
func (ix *VectorIndex) Len() int { return len(ix.vectors) }

// Hit is one nearest-neighbor result.
type Hit struct {
	ID   int64
	Dist float64
}

// Nearest returns the k nearest indexed vectors to the query by Euclidean
// distance, probing the nProbe closest cells (nProbe <= 0 probes all,
// making the search exact).
func (ix *VectorIndex) Nearest(query []float64, k, nProbe int) ([]Hit, error) {
	if ix.Len() == 0 {
		return nil, nil
	}
	if len(query) != ix.dim {
		return nil, ErrDimension
	}
	var candidates []int
	if ix.centroids == nil || nProbe <= 0 || nProbe >= len(ix.centroids) {
		candidates = make([]int, len(ix.vectors))
		for i := range candidates {
			candidates[i] = i
		}
	} else {
		order := make([]int, len(ix.centroids))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return ml.Euclidean(query, ix.centroids[order[a]]) <
				ml.Euclidean(query, ix.centroids[order[b]])
		})
		for _, c := range order[:nProbe] {
			candidates = append(candidates, ix.cells[c]...)
		}
	}
	hits := make([]Hit, 0, len(candidates))
	for _, i := range candidates {
		hits = append(hits, Hit{ID: ix.ids[i], Dist: ml.Euclidean(query, ix.vectors[i])})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Dist != hits[b].Dist {
			return hits[a].Dist < hits[b].Dist
		}
		return hits[a].ID < hits[b].ID
	})
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits, nil
}

// Recall estimates the fraction of true k-nearest neighbors the index
// returns at the given nProbe, averaged over the indexed vectors themselves
// as queries (leave-self-in). Used by tests and the ablation bench.
func (ix *VectorIndex) Recall(k, nProbe, sample int) float64 {
	if ix.Len() == 0 || sample <= 0 {
		return 1
	}
	step := ix.Len() / sample
	if step == 0 {
		step = 1
	}
	var total, hit float64
	for i := 0; i < ix.Len(); i += step {
		approx, _ := ix.Nearest(ix.vectors[i], k, nProbe)
		exact, _ := ix.Nearest(ix.vectors[i], k, 0)
		want := map[int64]bool{}
		for _, h := range exact {
			want[h.ID] = true
		}
		for _, h := range approx {
			if want[h.ID] {
				hit++
			}
		}
		total += float64(len(exact))
	}
	if total == 0 {
		return 1
	}
	return hit / total
}

// CosineNearest is Nearest under cosine distance (1 - cosine similarity),
// implemented by L2-normalizing on the fly.
func (ix *VectorIndex) CosineNearest(query []float64, k int) ([]Hit, error) {
	if ix.Len() == 0 {
		return nil, nil
	}
	if len(query) != ix.dim {
		return nil, ErrDimension
	}
	qn := normalize(query)
	hits := make([]Hit, 0, len(ix.vectors))
	for i, v := range ix.vectors {
		hits = append(hits, Hit{ID: ix.ids[i], Dist: 1 - dot(qn, normalize(v))})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Dist != hits[b].Dist {
			return hits[a].Dist < hits[b].Dist
		}
		return hits[a].ID < hits[b].ID
	})
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits, nil
}

func normalize(v []float64) []float64 {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	out := make([]float64, len(v))
	if n == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / n
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func mustParseDirective(t *testing.T, text string) *Directive {
	t.Helper()
	d, err := parseDirective(text, token.Position{Filename: "f.go", Line: 10})
	if err != nil {
		t.Fatalf("parseDirective(%q): %v", text, err)
	}
	return d
}

func TestParseDirective(t *testing.T) {
	d := mustParseDirective(t, "//hyvet:allow maporderfold caller asserts tolerance")
	if d.Check != "maporderfold" {
		t.Errorf("check = %q, want maporderfold", d.Check)
	}
	if d.Reason != "caller asserts tolerance" {
		t.Errorf("reason = %q", d.Reason)
	}
	if d.File != "f.go" || d.Line != 10 {
		t.Errorf("position = %s:%d", d.File, d.Line)
	}
}

func TestParseDirectiveErrors(t *testing.T) {
	cases := []struct {
		text    string
		wantErr string
	}{
		{"//hyvet:allow", "missing check name"},
		{"//hyvet:allow maporderfold", "missing reason"},
		{"//hyvet:allow maporderfold   ", "missing reason"},
		{"//hyvet:allow nosuchcheck some reason", `unknown check "nosuchcheck"`},
		{"//hyvet:allowance maporderfold reason", "malformed hyvet directive"},
	}
	for _, tc := range cases {
		_, err := parseDirective(tc.text, token.Position{Filename: "f.go", Line: 3})
		if err == nil {
			t.Errorf("parseDirective(%q): want error containing %q, got nil", tc.text, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseDirective(%q) error = %q, want it to contain %q", tc.text, err, tc.wantErr)
		}
		if !strings.Contains(err.Error(), "f.go:3") {
			t.Errorf("parseDirective(%q) error %q does not carry its position", tc.text, err)
		}
	}
}

func TestDirectiveSuppresses(t *testing.T) {
	d := &Directive{File: "f.go", Line: 10, Check: "panicfree"}
	cases := []struct {
		f    Finding
		want bool
	}{
		{Finding{Check: "panicfree", File: "f.go", Line: 10}, true},  // same line
		{Finding{Check: "panicfree", File: "f.go", Line: 11}, true},  // next line
		{Finding{Check: "panicfree", File: "f.go", Line: 9}, false},  // previous line
		{Finding{Check: "panicfree", File: "f.go", Line: 12}, false}, // too far
		{Finding{Check: "maporderfold", File: "f.go", Line: 10}, false},
		{Finding{Check: "panicfree", File: "g.go", Line: 10}, false},
	}
	for _, tc := range cases {
		if got := d.suppresses(tc.f); got != tc.want {
			t.Errorf("suppresses(%+v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestApplyDirectivesStale(t *testing.T) {
	findings := []Finding{
		{Check: "panicfree", File: "f.go", Line: 10, Message: "panic in X"},
	}
	dirs := []*Directive{
		{File: "f.go", Line: 10, Check: "panicfree", Reason: "ok"},
		{File: "f.go", Line: 40, Check: "maporderfold", Reason: "was fixed"},
	}
	out := applyDirectives(findings, dirs)
	if len(out) != 1 {
		t.Fatalf("got %d findings, want 1 (the stale directive): %v", len(out), out)
	}
	f := out[0]
	if f.Check != "hyvet" || f.Line != 40 || !strings.Contains(f.Message, "stale suppression") {
		t.Errorf("stale finding = %+v", f)
	}
	if !strings.Contains(f.Message, "was fixed") {
		t.Errorf("stale finding should echo the original reason: %q", f.Message)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BoundedAlloc guards the persistence decode paths against hostile sizes: a
// length decoded from stored or transported bytes (varints, fixed-width
// reads) must pass a bound check before it sizes a make(). A corrupted or
// adversarial file with a 2^60 length field otherwise turns one ReadUvarint
// into an instant OOM — precisely the crash-on-open failure mode snapshot
// loading exists to survive.
//
// The analysis is a linear taint simulation per function body:
//
//   - sources: encoding/binary decoders (ReadUvarint/ReadVarint,
//     Uvarint/Varint, ByteOrder.Uint16/32/64) and in-module callees whose
//     AllocFact says they return decoded sizes;
//   - propagation: assignment, arithmetic, conversion. len()/cap() are never
//     tainted — sizing one allocation from another already-held object is
//     always fine;
//   - guards: an if condition comparing the tainted variable (<, <=, >, >=)
//     clears its taint — both the reject shape (`if n > max { return err }`)
//     and the clamp shape (`if n > max { n = max }`);
//   - sinks: make() with a tainted size or capacity.
//
// Two facts make it interprocedural: TaintedResults (the function returns a
// decoded value unguarded — callers treat the call as a source) and
// UncheckedParams (a parameter flows unguarded into a make size — callers
// passing decoded values into it are reported at the call site).
var BoundedAlloc = &Analyzer{
	Name:     "boundedalloc",
	Doc:      "sizes decoded from stored bytes must be bound-checked before sizing an allocation",
	Facts:    boundedAllocFacts,
	FactType: func() any { return new(AllocFact) },
	Run:      runBoundedAlloc,
}

// AllocFact summarizes how decoded sizes flow through a function boundary.
type AllocFact struct {
	TaintedResults  []int `json:"tainted_results,omitempty"`
	UncheckedParams []int `json:"unchecked_params,omitempty"`
}

// originDecoded marks a value derived from a decode source; non-negative
// origins are parameter indices.
const originDecoded = -1

func boundedAllocFacts(pass *Pass) {
	// Same-package helpers can be declared after their callers, so iterate
	// to a fixpoint (bounded: facts only grow).
	for changed := true; changed; {
		changed = false
		funcDecls(pass, func(fd *ast.FuncDecl, fn *types.Func) {
			fact := boundedAllocSim(pass, fd, nil)
			if len(fact.TaintedResults) == 0 && len(fact.UncheckedParams) == 0 {
				return
			}
			if prev, ok := pass.Fact(fn); ok {
				if pf, _ := prev.(*AllocFact); pf != nil && intSliceEq(pf.TaintedResults, fact.TaintedResults) && intSliceEq(pf.UncheckedParams, fact.UncheckedParams) {
					return
				}
			}
			pass.ExportFact(fn, fact)
			changed = true
		})
	}
}

func intSliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func runBoundedAlloc(pass *Pass) {
	funcDecls(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		boundedAllocSim(pass, fd, pass.Reportf)
	})
}

// boundedAllocSim runs the linear taint simulation over one function body,
// reporting sinks through emit (nil during the fact pass) and returning the
// function's boundary fact.
func boundedAllocSim(pass *Pass, fd *ast.FuncDecl, emit func(token.Pos, string, ...any)) *AllocFact {
	sim := &allocSim{
		pass:  pass,
		taint: map[types.Object]map[int]bool{},
		emit:  emit,
		fact:  &AllocFact{},
		tres:  map[int]bool{},
		upar:  map[int]bool{},
	}
	// Integer parameters start tainted by their own index: if one reaches a
	// make unguarded, that is the UncheckedParams fact, and call sites decide
	// whether anything decoded actually flows in.
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok && isIntType(v.Type()) {
					sim.taint[v] = map[int]bool{idx: true}
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	ast.Inspect(fd.Body, sim.visit)
	sim.fact.TaintedResults = sortedIntKeys(sim.tres)
	sim.fact.UncheckedParams = sortedIntKeys(sim.upar)
	return sim.fact
}

func sortedIntKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

type allocSim struct {
	pass  *Pass
	taint map[types.Object]map[int]bool
	emit  func(token.Pos, string, ...any)
	fact  *AllocFact
	tres  map[int]bool // tainted result indices
	upar  map[int]bool // unchecked parameter indices
}

// visit processes nodes in pre-order, which matches source order for the
// straight-line flows this simulation models (an if's condition clears taint
// before its body's sinks are seen).
func (s *allocSim) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		s.assign(n)
	case *ast.GenDecl:
		for _, spec := range n.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				s.declare(vs)
			}
		}
	case *ast.IfStmt:
		s.clearGuarded(n.Cond)
	case *ast.CallExpr:
		s.checkCall(n)
	case *ast.ReturnStmt:
		for i, res := range n.Results {
			if s.origins(res)[originDecoded] {
				s.tres[i] = true
			}
		}
	}
	return true
}

// origins computes the origin set of an expression: decoded if it contains a
// decode-source call, parameter indices from tainted variables it mentions.
// len()/cap() subtrees are opaque — their results are never tainted.
func (s *allocSim) origins(e ast.Expr) map[int]bool {
	out := map[int]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isLenCap(s.pass.Info, n) {
				return false
			}
			if s.isDecodeSource(n) {
				out[originDecoded] = true
			}
		case *ast.Ident:
			for o := range s.taint[s.pass.Info.ObjectOf(n)] {
				out[o] = true
			}
		}
		return true
	})
	return out
}

func isLenCap(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && (b.Name() == "len" || b.Name() == "cap")
}

// isDecodeSource matches the encoding/binary size decoders and in-module
// callees with a TaintedResults fact.
func (s *allocSim) isDecodeSource(call *ast.CallExpr) bool {
	fn := staticCallee(s.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "encoding/binary" {
		switch fn.Name() {
		case "ReadUvarint", "ReadVarint", "Uvarint", "Varint",
			"Uint16", "Uint32", "Uint64":
			return true
		}
		return false
	}
	if !sameModule(s.pass.Pkg, fn.Pkg()) {
		return false
	}
	if f, ok := s.pass.Fact(fn); ok {
		if fact, _ := f.(*AllocFact); fact != nil && len(fact.TaintedResults) > 0 {
			return true
		}
	}
	return false
}

// assign propagates taint through an assignment. A clean right-hand side
// clears the target (reassignment launders the variable); compound ops
// (+=, <<=) merge with the existing taint.
func (s *allocSim) assign(n *ast.AssignStmt) {
	replace := n.Tok == token.ASSIGN || n.Tok == token.DEFINE
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := s.pass.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		var org map[int]bool
		if len(n.Rhs) == len(n.Lhs) {
			org = s.origins(n.Rhs[i])
		} else if len(n.Rhs) == 1 {
			org = s.origins(n.Rhs[0])
		}
		if !replace {
			for o := range s.taint[obj] {
				org[o] = true
			}
		}
		if len(org) > 0 {
			s.taint[obj] = org
		} else {
			delete(s.taint, obj)
		}
	}
}

func (s *allocSim) declare(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		obj := s.pass.Info.ObjectOf(name)
		if obj == nil {
			continue
		}
		var org map[int]bool
		if len(vs.Values) == len(vs.Names) {
			org = s.origins(vs.Values[i])
		} else if len(vs.Values) == 1 {
			org = s.origins(vs.Values[0])
		}
		if len(org) > 0 {
			s.taint[obj] = org
		}
	}
}

// clearGuarded clears the taint of every tracked variable that appears in a
// magnitude comparison inside the condition.
func (s *allocSim) clearGuarded(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for obj := range s.taint {
			if mentionsObj(s.pass.Info, be.X, obj) || mentionsObj(s.pass.Info, be.Y, obj) {
				delete(s.taint, obj)
			}
		}
		return true
	})
}

// checkCall handles the two call-shaped sinks: make() with a tainted size,
// and a call passing a tainted value into a callee's unchecked parameter.
func (s *allocSim) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := s.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
			for _, arg := range call.Args[1:] {
				org := s.origins(arg)
				if org[originDecoded] && s.emit != nil {
					s.emit(call.Pos(), "make(%s) sized from decoded input with no bound check: validate or clamp the size before allocating", types.ExprString(call.Args[0]))
				}
				for o := range org {
					if o >= 0 {
						s.upar[o] = true
					}
				}
			}
			return
		}
	}
	fn := staticCallee(s.pass.Info, call)
	if fn == nil || !sameModule(s.pass.Pkg, fn.Pkg()) {
		return
	}
	f, ok := s.pass.Fact(fn)
	if !ok {
		return
	}
	fact, _ := f.(*AllocFact)
	if fact == nil {
		return
	}
	for _, idx := range fact.UncheckedParams {
		if idx >= len(call.Args) {
			continue
		}
		org := s.origins(call.Args[idx])
		if org[originDecoded] && s.emit != nil {
			s.emit(call.Pos(), "decoded, unchecked size flows into %s, which allocates from that parameter without a bound check", fn.Name())
		}
		for o := range org {
			if o >= 0 {
				s.upar[o] = true
			}
		}
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The golden-test harness: each analyzer has a testdata/<check> package
// annotated with `// want "regexp"` comments. The harness type-checks the
// package (resolving stdlib imports through export data, exactly like the
// real driver), runs the full pipeline including //hyvet:allow suppression
// and stale detection, and requires the findings to match the want
// comments one-to-one. A missing finding, an extra finding, or a finding
// whose message misses the regexp all fail the test — so an analyzer
// regression fails the build.

var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

// stdlibExports lists export data for the stdlib packages testdata may
// import (plus their transitive dependencies), once per test binary.
func stdlibExports(t *testing.T) map[string]string {
	t.Helper()
	stdOnce.Do(func() {
		listed, err := goList("", []string{
			"sync", "time", "math/rand", "bufio", "bytes", "io", "fmt",
			"errors", "os", "sort", "strconv", "strings", "math", "hash/crc32",
			"context", "sync/atomic", "encoding/binary",
		})
		if err != nil {
			stdErr = err
			return
		}
		stdExports = map[string]string{}
		for _, lp := range listed {
			if lp.Export != "" {
				stdExports[lp.ImportPath] = lp.Export
			}
		}
	})
	if stdErr != nil {
		t.Fatalf("listing stdlib export data: %v", stdErr)
	}
	return stdExports
}

// loadTestdata parses and type-checks one testdata package.
func loadTestdata(t *testing.T, dir string) *Package {
	t.Helper()
	exports := stdlibExports(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("testdata may only import preloaded stdlib packages; no export data for %q", path)
		}
		return os.Open(file)
	})
	path := "hyvet.test/" + filepath.Base(dir)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Pkg: tpkg, Info: info}
}

// wantRe matches one quoted expectation inside a `// want` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want comment: a regexp expected to match a finding
// message on its line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants extracts the `// want "..."` expectations of a package.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// runWantTest runs the full driver pipeline over one testdata package with
// the given check policy and diffs findings against want comments.
func runWantTest(t *testing.T, dir string, policy *Policy) {
	t.Helper()
	pkg := loadTestdata(t, dir)
	// Point every policied check at the testdata package.
	for _, cp := range policy.Checks {
		cp.Packages = []string{pkg.Path}
	}
	findings, err := runPackages([]*Package{pkg}, policy)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wants := collectWants(t, pkg)
	var unexpected []Finding
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.pattern.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, f)
		}
	}
	for _, f := range unexpected {
		t.Errorf("unexpected finding: %s", f)
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// singleCheckPolicy scopes one check (package list is filled in by
// runWantTest).
func singleCheckPolicy(check string) *Policy {
	return &Policy{Checks: map[string]*CheckPolicy{check: {Packages: []string{"placeholder"}}}}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLifetime requires every spawned goroutine to have a provable way
// to stop. In a served engine a goroutine with no join and no cancellation
// is a leak that compounds per request and a drain hazard at shutdown: the
// process exits while the goroutine is mid-write, or never exits at all.
// A `go` statement passes if any of these holds:
//
//   - join: the body calls Done on a sync.WaitGroup, or sends on / closes a
//     channel that the spawning function receives from or returns (or, for
//     channel fields, that some function in the package receives from);
//   - service loop: the body receives from a channel field whose send/close
//     side exists elsewhere in the package (the stop-channel shape);
//   - cancellation: the body observes a context (ctx.Done()/ctx.Err()), or
//     the spawned callee carries the Cancellable fact and is handed a ctx;
//   - lifecycle pairing: the spawn is `go x.Method(...)` and the spawning
//     function also calls x.Shutdown/Close/Stop/Wait/Drain — the callee's
//     own contract ties the goroutine to that call (http.Server.Serve
//     returning on Shutdown is the canonical case).
//
// Cancellable is interprocedural: a function that passes its ctx into a
// Cancellable callee is itself Cancellable, so `go w.run(ctx)` is accepted
// even when run's select on ctx.Done() sits two calls down in another
// package.
var GoroutineLifetime = &Analyzer{
	Name:     "goroutinelifetime",
	Doc:      "every goroutine needs a join, a stop channel, a ctx, or a lifecycle pairing",
	Facts:    goroutineLifetimeFacts,
	FactType: func() any { return new(LifetimeFact) },
	Run:      runGoroutineLifetime,
}

// LifetimeFact marks a function that observes a context (directly or through
// a Cancellable callee it hands its ctx to).
type LifetimeFact struct {
	Cancellable bool `json:"cancellable,omitempty"`
}

// lifecycleNames are method names that tie a spawned sibling goroutine to
// the spawning function's control flow.
var lifecycleNames = map[string]bool{
	"Shutdown": true, "Close": true, "Stop": true, "Wait": true, "Drain": true,
}

// goroutineLifetimeFacts computes Cancellable with a same-package fixpoint;
// imported packages' facts are already present (dependency order).
func goroutineLifetimeFacts(pass *Pass) {
	type fnInfo struct {
		fn    *types.Func
		sites []CallSite
	}
	var fns []fnInfo
	funcDecls(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		if ctxObserved(pass.Info, fd.Body) {
			pass.ExportFact(fn, &LifetimeFact{Cancellable: true})
			return
		}
		if node := pass.Graph.NodeFor(fn); node != nil {
			fns = append(fns, fnInfo{fn: fn, sites: node.Out})
		}
	})
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if _, ok := pass.Fact(info.fn); ok {
				continue
			}
			for _, site := range info.sites {
				if site.Callee == nil || !sameModule(pass.Pkg, site.Callee.Pkg()) {
					continue
				}
				if !callPassesCtx(pass.Info, site.Call) {
					continue
				}
				if cf, ok := pass.Fact(site.Callee); ok {
					if fact, _ := cf.(*LifetimeFact); fact != nil && fact.Cancellable {
						pass.ExportFact(info.fn, &LifetimeFact{Cancellable: true})
						changed = true
						break
					}
				}
			}
		}
	}
}

// ctxObserved reports whether the body calls .Done() or .Err() on a
// context-typed value.
func ctxObserved(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
			return true
		}
		if isContextType(info.TypeOf(sel.X)) {
			found = true
		}
		return true
	})
	return found
}

// callPassesCtx reports whether any argument of the call is context-typed.
func callPassesCtx(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// chanFieldOps indexes, package-wide, which channel-typed struct fields are
// received from and which are sent to or closed. Field identity is the
// field's *types.Var, shared across every file of the package.
type chanFieldOps struct {
	recv map[types.Object]bool
	send map[types.Object]bool
}

func indexChanFieldOps(pass *Pass) *chanFieldOps {
	ops := &chanFieldOps{recv: map[types.Object]bool{}, send: map[types.Object]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if obj := fieldObj(pass.Info, n.X); obj != nil {
						ops.recv[obj] = true
					}
				}
			case *ast.RangeStmt:
				if isChanType(pass.Info.TypeOf(n.X)) {
					if obj := fieldObj(pass.Info, n.X); obj != nil {
						ops.recv[obj] = true
					}
				}
			case *ast.SendStmt:
				if obj := fieldObj(pass.Info, n.Chan); obj != nil {
					ops.send[obj] = true
				}
			case *ast.CallExpr:
				if isCloseCall(pass.Info, n) {
					if obj := fieldObj(pass.Info, n.Args[0]); obj != nil {
						ops.send[obj] = true
					}
				}
			}
			return true
		})
	}
	return ops
}

// fieldObj resolves an expression to a struct-field object if it is a field
// selector, else nil.
func fieldObj(info *types.Info, e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj()
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isCloseCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

func runGoroutineLifetime(pass *Pass) {
	ops := indexChanFieldOps(pass)
	funcDecls(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineJoined(pass, fd, g, ops) {
				pass.Reportf(g.Pos(), "goroutine has no provable join or cancellation: add a WaitGroup/channel handshake, observe ctx in its body, or pair it with Shutdown/Close/Stop on the spawning path")
			}
			return true
		})
	})
}

// goroutineJoined checks one go statement against the four evidence rules.
func goroutineJoined(pass *Pass, fd *ast.FuncDecl, g *ast.GoStmt, ops *chanFieldOps) bool {
	call := g.Call
	var body *ast.BlockStmt
	var callee *types.Func
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if callee = staticCallee(pass.Info, call); callee != nil {
		if node := pass.Graph.NodeFor(callee); node != nil && node.Decl != nil {
			body = node.Decl.Body
		}
	}
	// Lifecycle pairing: go x.Method(...) + x.Shutdown/Close/Stop/... in the
	// spawning function (deferred or not).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if key, ok := exprKey(sel.X); ok && spawnerCallsLifecycle(pass, fd, key) {
			return true
		}
	}
	// Cancellable callee handed a ctx (works without the callee's source).
	if callee != nil && callPassesCtx(pass.Info, call) {
		if cf, ok := pass.Fact(callee); ok {
			if fact, _ := cf.(*LifetimeFact); fact != nil && fact.Cancellable {
				return true
			}
		}
	}
	if body == nil {
		return false
	}
	if waitGroupDone(pass.Info, body) || ctxObserved(pass.Info, body) {
		return true
	}
	return chanHandshake(pass, fd, g, body, ops)
}

// spawnerCallsLifecycle reports whether fd's body (function literals
// included — shutdowns often live in defers) calls a lifecycle method on the
// receiver identified by key.
func spawnerCallsLifecycle(pass *Pass, fd *ast.FuncDecl, key string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !lifecycleNames[sel.Sel.Name] {
			return true
		}
		if k, ok := exprKey(sel.X); ok && k == key {
			found = true
		}
		return true
	})
	return found
}

// waitGroupDone reports whether the body calls Done on a sync.WaitGroup.
func waitGroupDone(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
			found = true
		}
		return true
	})
	return found
}

// chanHandshake checks the channel-based evidence: the goroutine body sends
// on or closes a channel whose receive side exists — in the spawning
// function outside the go statement, in a return statement (the caller
// inherits the join), or package-wide when the channel is a struct field —
// or the body receives from a channel field whose send/close side exists in
// the package (the stop-channel service loop).
func chanHandshake(pass *Pass, fd *ast.FuncDecl, g *ast.GoStmt, body *ast.BlockStmt, ops *chanFieldOps) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joined = chanReceiveExists(pass, fd, g, n.Chan, ops)
		case *ast.CallExpr:
			if isCloseCall(pass.Info, n) {
				joined = chanReceiveExists(pass, fd, g, n.Args[0], ops)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := fieldObj(pass.Info, n.X); obj != nil && ops.send[obj] {
					joined = true
				}
			}
		case *ast.RangeStmt:
			if isChanType(pass.Info.TypeOf(n.X)) {
				if obj := fieldObj(pass.Info, n.X); obj != nil && ops.send[obj] {
					joined = true
				}
			}
		}
		return true
	})
	return joined
}

// chanReceiveExists locates the receive side for a channel the goroutine
// body sends on or closes.
func chanReceiveExists(pass *Pass, fd *ast.FuncDecl, g *ast.GoStmt, ch ast.Expr, ops *chanFieldOps) bool {
	if obj := fieldObj(pass.Info, ch); obj != nil {
		return ops.recv[obj]
	}
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		// The goroutine's own subtree does not count as a join.
		if n == g {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && mentionsObj(pass.Info, n.X, obj) {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(pass.Info.TypeOf(n.X)) && mentionsObj(pass.Info, n.X, obj) {
				found = true
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsObj(pass.Info, res, obj) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

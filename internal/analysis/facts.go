package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// The fact store is what makes hyvet interprocedural: analyzers attach small
// summaries ("manufactures an ambient context", "field is accessed
// atomically", "takes the receiver's write lock", "allocates from an
// unchecked parameter") to functions and fields while visiting their home
// package, and later passes — over the same package or over packages that
// import it — consume those summaries instead of re-deriving (or missing)
// them. Facts are keyed by stable symbol strings, not object pointers,
// because the same function is represented by *different* types.Func objects
// in its source-checked home package and in the export-data view an
// importing package sees. Facts serialize to JSON (see EncodePackage /
// DecodePackage) so the incremental cache can replay a package's summaries
// without re-analyzing it, exactly like its findings.

// FuncSymbol names a function stably across packages and loads:
// "pkgpath.Func" for package functions, "pkgpath.Recv.Method" for methods
// (pointer receivers without the star). The format matches policy allowlist
// sites.
func FuncSymbol(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sym := fn.Pkg().Path() + "."
	if named := receiverNamed(fn); named != nil {
		sym += named.Obj().Name() + "."
	}
	return sym + fn.Name()
}

// FieldSymbol names a struct field stably: "pkgpath.Type.Field". owner is
// the named type declaring the field.
func FieldSymbol(owner *types.Named, field string) string {
	obj := owner.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + field
}

// FactStore holds every fact exported during one run, keyed by (check,
// symbol). The driver processes packages in dependency order, so by the time
// an analyzer runs on a package, the facts of everything it imports (that
// was part of the run) are already present.
type FactStore struct {
	facts map[string]map[string]any // check -> symbol -> fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[string]map[string]any{}}
}

func (s *FactStore) set(check, symbol string, fact any) {
	if symbol == "" || fact == nil {
		return
	}
	m := s.facts[check]
	if m == nil {
		m = map[string]any{}
		s.facts[check] = m
	}
	m[symbol] = fact
}

func (s *FactStore) get(check, symbol string) (any, bool) {
	fact, ok := s.facts[check][symbol]
	return fact, ok
}

// symbolPackage extracts the import path from a fact symbol (same shape as
// policy allowlist sites).
func symbolPackage(symbol string) string { return sitePackage(symbol) }

// EncodePackage serializes the facts attached to symbols of one package as
// deterministic JSON: {"check": {"symbol": fact}}. Facts of other packages
// are excluded, so a cache entry carries exactly what analyzing the package
// produced.
func (s *FactStore) EncodePackage(pkgPath string) ([]byte, error) {
	out := map[string]map[string]json.RawMessage{}
	for check, syms := range s.facts {
		for sym, fact := range syms {
			if symbolPackage(sym) != pkgPath {
				continue
			}
			raw, err := json.Marshal(fact)
			if err != nil {
				return nil, fmt.Errorf("hyvet: encoding fact %s/%s: %v", check, sym, err)
			}
			if out[check] == nil {
				out[check] = map[string]json.RawMessage{}
			}
			out[check][sym] = raw
		}
	}
	return json.Marshal(out)
}

// DecodePackage merges facts serialized by EncodePackage into the store,
// resolving each fact's concrete type through the owning analyzer's FactType
// constructor. Facts for checks without a registered fact type are a hard
// error — a cache entry from a different analyzer suite must not silently
// half-load.
func (s *FactStore) DecodePackage(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in map[string]map[string]json.RawMessage
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("hyvet: decoding facts: %v", err)
	}
	for check, syms := range in {
		newFact := factType(check)
		if newFact == nil {
			return fmt.Errorf("hyvet: facts for %s, which registers no fact type", check)
		}
		for sym, raw := range syms {
			fact := newFact()
			if err := json.Unmarshal(raw, fact); err != nil {
				return fmt.Errorf("hyvet: decoding fact %s/%s: %v", check, sym, err)
			}
			s.set(check, sym, fact)
		}
	}
	return nil
}

// factType resolves a check's fact constructor from the analyzer suite.
func factType(check string) func() any {
	for _, a := range Analyzers() {
		if a.Name == check {
			return a.FactType
		}
	}
	return nil
}

// Symbols returns every symbol carrying a fact for the check, sorted — for
// tests and debugging.
func (s *FactStore) Symbols(check string) []string {
	var out []string
	for sym := range s.facts[check] {
		out = append(out, sym)
	}
	sort.Strings(out)
	return out
}

// packageOfSymbols reports whether any stored symbol belongs to pkgPath —
// used by tests asserting cross-package flow.
func (s *FactStore) hasPackage(check, pkgPath string) bool {
	for sym := range s.facts[check] {
		if strings.HasPrefix(sym, pkgPath+".") {
			return true
		}
	}
	return false
}

// Package analysis is hyvet's stdlib-only static-analysis framework: a
// package loader built on `go list` + export data, a small Analyzer/Pass API
// modelled after golang.org/x/tools/go/analysis (but with zero dependencies,
// matching the module's empty require list), suppression directives
// (//hyvet:allow), and a JSON policy file that scopes each check to the
// packages whose invariants it enforces.
//
// The analyzers themselves (lockdiscipline, maporderfold, walerrlatch,
// panicfree, nondeterminism) mechanically enforce invariants that earlier
// PRs established by convention: lock discipline in the storage engines,
// deterministic float folds, WAL write-error latching, panic-free mutators,
// and wall-clock/global-randomness bans in deterministic packages. See
// docs/STATIC_ANALYSIS.md for the invariant behind each check and the real
// bug it would have caught.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one analyzer diagnostic, positioned at a concrete source line.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Check is the per-check policy entry scoping this run (never nil; an
	// empty entry when the policy has no settings beyond the package list).
	Check *CheckPolicy

	// Graph is the run-wide call graph, populated for the current package
	// and everything analyzed before it (dependency order).
	Graph *CallGraph

	check string
	facts *FactStore

	report func(Finding)
	// allowUsed records that a policy allowlist entry matched a site, for
	// stale-entry detection across the whole run.
	allowUsed func(entry string)
}

// ExportFact attaches a fact to fn under this analyzer's check name. Facts
// survive to every later package in the run (and into the incremental
// cache); they must be JSON-round-trippable pointers of the analyzer's
// FactType.
func (p *Pass) ExportFact(fn *types.Func, fact any) {
	p.ExportSymbolFact(FuncSymbol(fn), fact)
}

// ExportSymbolFact is ExportFact for non-function symbols (struct fields,
// FieldSymbol).
func (p *Pass) ExportSymbolFact(symbol string, fact any) {
	if p.facts != nil {
		p.facts.set(p.check, symbol, fact)
	}
}

// Fact returns the fact this analyzer attached to fn, if any — whether fn
// is the source-checked definition or an export-data view of it.
func (p *Pass) Fact(fn *types.Func) (any, bool) {
	return p.SymbolFact(FuncSymbol(fn))
}

// SymbolFact is Fact by symbol string.
func (p *Pass) SymbolFact(symbol string) (any, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.get(p.check, symbol)
}

// Reportf emits a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// AllowUsed marks a policy allowlist entry as having matched a real site, so
// the driver can flag stale entries.
func (p *Pass) AllowUsed(entry string) {
	if p.allowUsed != nil {
		p.allowUsed(entry)
	}
}

// Analyzer is one hyvet check.
type Analyzer struct {
	// Name is the check name used in policy entries, //hyvet:allow
	// directives and finding output.
	Name string
	// Doc is the one-line invariant the check enforces.
	Doc string
	// Facts, when set, runs over EVERY loaded package — in scope or not —
	// before any Run, exporting function/field summaries the analyzer's Run
	// consumes interprocedurally. It must only export facts, never report.
	Facts func(*Pass)
	// FactType constructs an empty fact value for JSON decoding (a pointer
	// to the analyzer's fact struct). Required when Facts is set.
	FactType func() any
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Analyzers returns the full hyvet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockDiscipline,
		MapOrderFold,
		WALErrLatch,
		PanicFree,
		Nondeterminism,
		CtxFlow,
		AtomicMix,
		GoroutineLifetime,
		BoundedAlloc,
	}
}

// AnalyzerNames returns the names of the full suite, sorted.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// knownCheck reports whether name is an analyzer in the suite. The meta
// check name "hyvet" (used for stale-suppression and policy findings) is
// not a valid directive target.
func knownCheck(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Incremental result cache: one JSON entry per (package, policy, analyzer
// binary) combination, keyed by a hash that folds in the package's build ID
// AND the build IDs of its whole transitive dependency cone. Build IDs come
// from `go list -export` and change whenever compiled content changes, so a
// source edit anywhere below a package invalidates the package — which is
// required for correctness here, because a dependency's *internal* change
// can change the facts it exports (a callee starts manufacturing
// context.Background(), a field stops being atomic) without changing its
// exported API.
//
// Entries store post-suppression findings, the policy allowlist entries
// that fired, and the package's serialized facts, which together are
// exactly what phase B needs to replay a package without re-analyzing it.
// The cache is best-effort: unreadable or mismatched entries are misses,
// write failures are ignored — a lint cache must never fail a lint run.

// cacheVersion invalidates all entries when the on-disk schema changes.
const cacheVersion = "hyvet-cache-v1"

// cacheEntry is one package's replayable result.
type cacheEntry struct {
	Key       string          `json:"key"`
	Findings  []Finding       `json:"findings,omitempty"`
	AllowUsed []string        `json:"allow_used,omitempty"`
	Facts     json.RawMessage `json:"facts,omitempty"`
}

// defaultCacheDir is where cmd/hyvet keeps entries unless -cachedir says
// otherwise.
func defaultCacheDir() string {
	return filepath.Join(os.TempDir(), "hyvet-cache")
}

// runFingerprint hashes everything that is constant across one run but can
// change between runs: the cache schema, the full policy, and the analyzer
// binary itself. Hashing the executable means editing any analyzer
// invalidates the whole cache with no manual version bump — `go run`
// produces a content-addressed binary, so an unchanged suite keeps hitting.
func runFingerprint(policy *Policy) string {
	h := sha256.New()
	io.WriteString(h, cacheVersion)
	if raw, err := json.Marshal(policy); err == nil {
		h.Write(raw)
	}
	io.WriteString(h, executableDigest())
	return hex.EncodeToString(h.Sum(nil))
}

var exeDigest struct {
	once sync.Once
	hex  string
}

// executableDigest hashes the running binary, once. Any failure degrades to
// a constant, which weakens invalidation but never breaks a run.
func executableDigest() string {
	exeDigest.once.Do(func() {
		path, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(path)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		exeDigest.hex = hex.EncodeToString(h.Sum(nil))
	})
	return exeDigest.hex
}

// cacheKey derives one package's entry key from the run fingerprint, its
// own build ID, and the build IDs of its transitive dependencies. A missing
// build ID (package failed to build, stale go list) disables caching for
// that package — except for "unsafe", the one pseudo-package with no
// compiled artifact and therefore no build ID: it has no content that could
// change, so it is hashed by name alone instead of poisoning the key of
// every package whose dependency cone reaches it (which is nearly all of
// them, via sync/atomic and friends).
func cacheKey(runHash string, lp listedPackage, buildIDs map[string]string) string {
	if lp.BuildID == "" {
		return ""
	}
	h := sha256.New()
	io.WriteString(h, runHash)
	io.WriteString(h, lp.ImportPath)
	io.WriteString(h, lp.BuildID)
	deps := append([]string(nil), lp.Deps...)
	sort.Strings(deps)
	for _, dep := range deps {
		id := buildIDs[dep]
		if id == "" {
			if dep == "unsafe" {
				io.WriteString(h, dep)
				continue
			}
			return ""
		}
		io.WriteString(h, dep)
		io.WriteString(h, id)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheLoad reads one entry; any failure is a miss.
func cacheLoad(dir, key string) (*cacheEntry, bool) {
	raw, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var ent cacheEntry
	if err := json.Unmarshal(raw, &ent); err != nil || ent.Key != key {
		return nil, false
	}
	return &ent, true
}

// cacheStore writes one entry atomically (temp file + rename); failures are
// silently dropped.
func cacheStore(dir, key string, ent *cacheEntry) {
	raw, err := json.Marshal(ent)
	if err != nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, filepath.Join(dir, key+".json")); err != nil {
		os.Remove(name)
	}
}

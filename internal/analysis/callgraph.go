package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallGraph is the run-wide static call graph. Nodes are keyed by the same
// stable symbol strings as facts (FuncSymbol), because a callee resolved
// from an importing package's export-data view is a different *types.Func
// object than the one in its source-checked home package — the symbol is
// what ties the two together. The driver builds each package's slice of the
// graph (in dependency order) before any analyzer runs on it, so analyzers
// see the graph of everything at or below the current package.
type CallGraph struct {
	nodes map[string]*CallNode
}

// CallNode is one function in the graph.
type CallNode struct {
	Sym string
	// Fn and Decl are set when the function's declaring package was analyzed
	// from source in this run; for callees known only through export data
	// they stay nil and the node records call sites into it (none out).
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Out lists the static call sites in the function's body, source order.
	// Calls inside nested function literals belong to the declaring
	// function's node, marked InLit.
	Out []CallSite
}

// CallSite is one static call observed in a function body.
type CallSite struct {
	Pos    token.Pos
	Call   *ast.CallExpr
	Callee *types.Func // as seen by the calling package (may be export view)
	Sym    string      // callee's stable symbol
	Go     bool        // call is the operand of a go statement
	Defer  bool        // call is the operand of a defer statement
	InLit  bool        // call occurs inside a nested function literal
}

// NewCallGraph returns an empty graph.
func NewCallGraph() *CallGraph {
	return &CallGraph{nodes: map[string]*CallNode{}}
}

// Node returns the node for sym, or nil when the function was neither
// declared in nor called from any analyzed package.
func (g *CallGraph) Node(sym string) *CallNode { return g.nodes[sym] }

// NodeFor is Node keyed by a function object.
func (g *CallGraph) NodeFor(fn *types.Func) *CallNode { return g.nodes[FuncSymbol(fn)] }

func (g *CallGraph) ensure(sym string) *CallNode {
	n := g.nodes[sym]
	if n == nil {
		n = &CallNode{Sym: sym}
		g.nodes[sym] = n
	}
	return n
}

// addPackage adds every function declared in pkg to the graph, with its
// outgoing static call sites.
func (g *CallGraph) addPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := g.ensure(FuncSymbol(fn))
			node.Fn = fn
			node.Decl = fd
			node.Out = collectCallSites(pkg.Info, fd.Body)
		}
	}
}

// collectCallSites walks one function body gathering static call sites in
// source order, tracking go/defer operands and function-literal nesting.
func collectCallSites(info *types.Info, body *ast.BlockStmt) []CallSite {
	var sites []CallSite
	goCalls := map[*ast.CallExpr]bool{}
	deferCalls := map[*ast.CallExpr]bool{}
	litDepth := 0
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				litDepth++
				walk(n.Body)
				litDepth--
				return false
			case *ast.GoStmt:
				goCalls[n.Call] = true
			case *ast.DeferStmt:
				deferCalls[n.Call] = true
			case *ast.CallExpr:
				callee := staticCallee(info, n)
				if callee == nil {
					return true
				}
				sites = append(sites, CallSite{
					Pos:    n.Pos(),
					Call:   n,
					Callee: callee,
					Sym:    FuncSymbol(callee),
					Go:     goCalls[n],
					Defer:  deferCalls[n],
					InLit:  litDepth > 0,
				})
			}
			return true
		})
	}
	walk(body)
	return sites
}

// staticCallee resolves a call's static callee function, or nil for dynamic
// calls (function values, interface methods resolve to the interface
// method's *types.Func, which is still useful for name/signature checks).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	}
	return nil
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
// BuildID, Imports and Deps feed the incremental cache and the dependency
// ordering: BuildID changes whenever the package's compiled content changes,
// and Deps names every transitive import so a cache key can incorporate the
// whole dependency cone's build IDs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	BuildID    string
	Imports    []string
	Deps       []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool, then parses and type-checks every
// matched (non-dependency) package. Imports — stdlib and intra-module alike
// — are resolved from compiler export data reported by `go list -export`,
// so no package is ever type-checked twice and the standard library is
// never re-parsed from source. dir is the working directory for the go
// tool ("" = current).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	matched, err := matchedPackages(listed)
	if err != nil {
		return nil, err
	}
	loader := newLoader(listed)
	var pkgs []*Package
	for _, lp := range matched {
		pkg, err := loader.check(lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// matchedPackages filters a `go list -deps` stream down to the packages the
// patterns actually matched, rejecting list errors.
func matchedPackages(listed []listedPackage) ([]listedPackage, error) {
	var out []listedPackage
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		// Error must be checked before the empty-GoFiles skip: a pattern
		// that matches nothing lists as an error package with no files, and
		// a lint gate that silently passes on a typo'd path is worse than
		// no gate.
		if lp.Error != nil {
			return nil, fmt.Errorf("hyvet: loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		out = append(out, lp)
	}
	return out, nil
}

// goList runs `go list -e -export -json -deps` over the patterns and decodes
// the JSON stream. -deps pulls in export data for every transitive import;
// -export populates the build cache so Export paths and build IDs are valid.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("hyvet: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("hyvet: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// loader parses and type-checks packages against one shared file set and
// export-data importer. check is safe to call from concurrent goroutines:
// the file set synchronizes itself, each type-check is independent, and the
// one shared mutable structure — the gc importer's package cache — is
// serialized behind a mutex.
type loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// newLoader builds a loader over a `go list -export` stream.
func newLoader(listed []listedPackage) *loader {
	exports := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("hyvet: no export data for %q", path)
		}
		return os.Open(file)
	})
	return &loader{fset: fset, imp: &lockedImporter{imp: imp}}
}

// lockedImporter serializes Import calls: the gc importer memoizes loaded
// packages in an unsynchronized map, and phase A type-checks packages in
// parallel.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.Import(path)
}

// check parses a package's non-test files and type-checks them.
func (l *loader) check(lp listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("hyvet: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(lp.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("hyvet: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  l.fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, nil
}

// newInfo allocates a fully populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

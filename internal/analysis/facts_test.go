package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
	"testing"
)

// TestFactEncodeDecodeRoundTrip serializes one package's facts and decodes
// them into a fresh store, asserting symbols, concrete types, and contents
// survive — and that other packages' facts are excluded.
func TestFactEncodeDecodeRoundTrip(t *testing.T) {
	src := NewFactStore()
	src.set("ctxflow", "example.com/a.Detach", &CtxFact{Ambient: "context.Background"})
	src.set("boundedalloc", "example.com/a.alloc", &AllocFact{UncheckedParams: []int{0}})
	src.set("atomicmix", "example.com/other.T.f", &AtomicFact{At: "other.go:1"})

	raw, err := src.EncodePackage("example.com/a")
	if err != nil {
		t.Fatalf("EncodePackage: %v", err)
	}
	dst := NewFactStore()
	if err := dst.DecodePackage(raw); err != nil {
		t.Fatalf("DecodePackage: %v", err)
	}

	got, ok := dst.get("ctxflow", "example.com/a.Detach")
	if !ok {
		t.Fatal("ctxflow fact lost in round trip")
	}
	if cf, _ := got.(*CtxFact); cf == nil || cf.Ambient != "context.Background" {
		t.Errorf("ctxflow fact = %#v, want Ambient=context.Background", got)
	}
	got, ok = dst.get("boundedalloc", "example.com/a.alloc")
	if !ok {
		t.Fatal("boundedalloc fact lost in round trip")
	}
	if af, _ := got.(*AllocFact); af == nil || len(af.UncheckedParams) != 1 || af.UncheckedParams[0] != 0 {
		t.Errorf("boundedalloc fact = %#v, want UncheckedParams=[0]", got)
	}
	if dst.hasPackage("atomicmix", "example.com/other") {
		t.Error("EncodePackage leaked another package's facts")
	}
}

// TestFactDecodeUnknownCheckErrors: facts from an analyzer this suite does
// not register must be a hard error, not a silent half-load.
func TestFactDecodeUnknownCheckErrors(t *testing.T) {
	if err := NewFactStore().DecodePackage([]byte(`{"nosuchcheck":{"p.F":{}}}`)); err == nil {
		t.Fatal("DecodePackage accepted facts for an unregistered check")
	}
}

// localImporter resolves in-memory test packages before falling back to
// stdlib export data.
type localImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (m localImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// loadDependent type-checks two in-memory packages where b imports a, both
// in the synthetic module example.com.
func loadDependent(t *testing.T, aPath, aSrc, bPath, bSrc string) (*Package, *Package) {
	t.Helper()
	exports := stdlibExports(t)
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		file, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	check := func(path, src string, imp types.Importer) *Package {
		f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		info := newInfo()
		tpkg, err := (&types.Config{Importer: imp}).Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-check %s: %v", path, err)
		}
		return &Package{Path: path, Fset: fset, Files: []*ast.File{f}, Pkg: tpkg, Info: info}
	}
	a := check(aPath, aSrc, std)
	b := check(bPath, bSrc, localImporter{local: map[string]*types.Package{aPath: a.Pkg}, fallback: std})
	return a, b
}

const ambientDepSrc = `package a

import "context"

// Detach manufactures an ambient context; ctxflow exports the AmbientCtx
// fact for it.
func Detach() context.Context { return context.Background() }
`

const ambientUserSrc = `package b

import (
	"context"

	"example.com/a"
)

func Serve(ctx context.Context) {
	_ = a.Detach()
}
`

// TestCrossPackageFactFlow analyzes two packages in one run: the fact
// exported while visiting a must produce the interprocedural ctxflow finding
// in b. Only b is in scope, so the single expected finding proves the
// cross-package path (a's own ambient call is out of scope).
func TestCrossPackageFactFlow(t *testing.T) {
	a, b := loadDependent(t, "example.com/a", ambientDepSrc, "example.com/b", ambientUserSrc)
	policy := &Policy{Checks: map[string]*CheckPolicy{"ctxflow": {Packages: []string{"example.com/b"}}}}
	findings, err := runPackages([]*Package{b, a}, policy) // order scrambled: topo sort must fix it
	if err != nil {
		t.Fatalf("runPackages: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the interprocedural ctxflow finding in b", findings)
	}
	f := findings[0]
	if f.Check != "ctxflow" || !strings.Contains(f.Message, "manufactures an ambient context") {
		t.Errorf("finding = %+v, want the rule-3 ambient message", f)
	}
}

// TestCrossPackageFactReplay simulates the incremental cache: a is analyzed
// once, its facts are serialized, and a *fresh* run over b alone decodes
// them instead of re-analyzing a. b must still get the interprocedural
// finding, proving cached packages need contribute nothing but their facts.
func TestCrossPackageFactReplay(t *testing.T) {
	a, b := loadDependent(t, "example.com/a", ambientDepSrc, "example.com/b", ambientUserSrc)
	policy := &Policy{Checks: map[string]*CheckPolicy{"ctxflow": {Packages: []string{"example.com/b"}}}}

	st := &analyzeState{facts: NewFactStore(), graph: NewCallGraph(), analyzers: Analyzers(), policy: policy}
	if _, _, err := analyzePackage(st, a); err != nil {
		t.Fatalf("analyze a: %v", err)
	}
	raw, err := st.facts.EncodePackage(a.Path)
	if err != nil {
		t.Fatalf("EncodePackage: %v", err)
	}

	replay := &analyzeState{facts: NewFactStore(), graph: NewCallGraph(), analyzers: Analyzers(), policy: policy}
	if err := replay.facts.DecodePackage(raw); err != nil {
		t.Fatalf("DecodePackage: %v", err)
	}
	findings, _, err := analyzePackage(replay, b)
	if err != nil {
		t.Fatalf("analyze b: %v", err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "manufactures an ambient context") {
		t.Fatalf("findings = %v, want the interprocedural finding from replayed facts", findings)
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// WALErrLatch enforces the write-ahead-log error-latching invariant from
// PR 1 (see internal/storage/walrec): the first write error must be latched
// into the writer's sticky error field, and no write error may be silently
// dropped. A dropped or unlatched error lets later records reach a log
// whose earlier record failed — turning a recoverable torn tail into
// unrecoverable mid-log corruption on replay.
//
// Two rules:
//
//  1. (dropped) The error result of a write-path call — Write, WriteString,
//     WriteByte, Flush, Append, Sync — must be consumed: not an expression
//     statement, not assigned to blank, not behind go/defer. Receivers
//     whose writes cannot fail by contract (bytes.Buffer, strings.Builder)
//     are exempt.
//  2. (latched) Inside methods of a latch-bearing type (a struct with an
//     `err error` field and a `fail` method), the error of a write call on
//     one of the struct's writer fields must flow into the latch: either
//     passed to fail(...) or assigned to the err field. Returning it raw
//     skips the latch and is reported.
var WALErrLatch = &Analyzer{
	Name: "walerrlatch",
	Doc:  "write errors on the WAL path must be latched into the sticky error field, never dropped",
	Run:  runWALErrLatch,
}

// writeMethodNames are the method names rule 1 applies to.
var writeMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"Flush": true, "Append": true, "Sync": true,
}

// infallibleWriters never return a non-nil write error by contract.
var infallibleWriters = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

func runWALErrLatch(pass *Pass) {
	latched := latchTypes(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWriteErrors(pass, fd, latched)
		}
	}
}

// latchTypes finds named struct types carrying both an `err error` field
// and a `fail` method — the sticky-error latch pattern.
func latchTypes(pass *Pass) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		hasErrField := false
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if fld.Name() == "err" && types.Identical(fld.Type(), types.Universe.Lookup("error").Type()) {
				hasErrField = true
				break
			}
		}
		if !hasErrField {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == "fail" {
				out[named] = true
				break
			}
		}
	}
	return out
}

// checkWriteErrors applies both rules to one function.
func checkWriteErrors(pass *Pass, fd *ast.FuncDecl, latched map[*types.Named]bool) {
	parents := parentMap(fd.Body)
	// Is fd a method of a latch-bearing type?
	var recvName string
	inLatchMethod := false
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			if named := receiverNamed(fn); named != nil && latched[named] {
				inLatchMethod = true
				recvName = fd.Recv.List[0].Names[0].Name
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, fn := writeCall(pass, call)
		if fn == nil {
			return true
		}
		callee := exprString(sel.X) + "." + sel.Sel.Name
		// Rule 2 scope: write call on a field of the latch-bearing
		// receiver (w.w.Write), not on the receiver itself.
		isLatchPath := false
		if inLatchMethod {
			if inner, ok := sel.X.(*ast.SelectorExpr); ok {
				if root, ok := exprKey(inner.X); ok && root == recvName {
					isLatchPath = true
				}
			}
		}
		parent := parents[call]
		switch p := parent.(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "error from %s is dropped: write errors must be checked (and latched on the WAL path)", callee)
		case *ast.GoStmt, *ast.DeferStmt:
			pass.Reportf(call.Pos(), "error from %s is dropped behind %s: write errors must be checked", callee, stmtKeyword(parent))
		case *ast.AssignStmt:
			errIdent := errorLHS(pass, p, call, fn)
			if errIdent == nil {
				// Error result assigned to blank.
				pass.Reportf(call.Pos(), "error from %s is discarded with _: write errors must be checked (and latched on the WAL path)", callee)
				return true
			}
			if isLatchPath && !reachesLatch(pass, fd, errIdent, recvName) {
				pass.Reportf(call.Pos(), "error from %s never reaches the error latch (%s.fail): a failed write must poison the writer", callee, recvName)
			}
		case *ast.ReturnStmt:
			if isLatchPath {
				pass.Reportf(call.Pos(), "error from %s is returned without being latched: route it through %s.fail so later writes are refused", callee, recvName)
			}
		}
		return true
	})
}

// writeCall matches a call to one of the write-path methods returning an
// error, excluding infallible receivers. It returns the selector and callee.
func writeCall(pass *Pass, call *ast.CallExpr) (*ast.SelectorExpr, *types.Func) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writeMethodNames[sel.Sel.Name] {
		return nil, nil
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, nil
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return nil, nil
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && infallibleWriters[obj.Pkg().Path()+"."+obj.Name()] {
			return nil, nil
		}
	}
	return sel, fn
}

// errorLHS returns the identifier the call's error result is assigned to,
// or nil when it lands in the blank identifier.
func errorLHS(pass *Pass, as *ast.AssignStmt, call *ast.CallExpr, fn *types.Func) *ast.Ident {
	sig := fn.Type().(*types.Signature)
	var lhs ast.Expr
	switch {
	case len(as.Rhs) == 1 && as.Rhs[0] == call && len(as.Lhs) == sig.Results().Len():
		lhs = as.Lhs[len(as.Lhs)-1]
	case sig.Results().Len() == 1:
		for i, rhs := range as.Rhs {
			if rhs == call && i < len(as.Lhs) {
				lhs = as.Lhs[i]
			}
		}
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

// reachesLatch reports whether the error object bound to id is passed to
// the receiver's fail method or assigned to its err field anywhere in the
// function.
func reachesLatch(pass *Pass, fd *ast.FuncDecl, id *ast.Ident, recvName string) bool {
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "fail" {
				return true
			}
			for _, arg := range n.Args {
				if mentionsObject(pass, arg, obj) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lsel, ok := lhs.(*ast.SelectorExpr)
				if !ok || lsel.Sel.Name != "err" {
					continue
				}
				if root, ok := exprKey(lsel.X); !ok || root != recvName {
					continue
				}
				if i < len(n.Rhs) && mentionsObject(pass, n.Rhs[i], obj) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// mentionsObject reports whether the expression references the object.
func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// parentMap records each node's immediate parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// stmtKeyword names the statement for messages.
func stmtKeyword(n ast.Node) string {
	switch n.(type) {
	case *ast.GoStmt:
		return "go"
	case *ast.DeferStmt:
		return "defer"
	}
	return "?"
}

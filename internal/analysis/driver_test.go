package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSource type-checks one in-memory file as its own package (stdlib
// imports resolved via export data).
func loadSource(t *testing.T, path, src string) *Package {
	t.Helper()
	exports := stdlibExports(t)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	imp := importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		file, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	info := newInfo()
	tpkg, err := conf(imp).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Package{Path: path, Fset: fset, Files: []*ast.File{f}, Pkg: tpkg, Info: info}
}

func conf(imp types.Importer) *types.Config { return &types.Config{Importer: imp} }

const panickySrc = `package p

func Explode(ok bool) {
	if !ok {
		panic("boom")
	}
}
`

func TestDriverSuppression(t *testing.T) {
	src := strings.Replace(panickySrc, "panic(\"boom\")", "//hyvet:allow panicfree reviewed and unreachable\n\t\tpanic(\"boom\")", 1)
	pkg := loadSource(t, "example.com/p", src)
	policy := &Policy{Checks: map[string]*CheckPolicy{"panicfree": {Packages: []string{"example.com/p"}}}}
	findings, err := runPackages([]*Package{pkg}, policy)
	if err != nil {
		t.Fatalf("runPackages: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("suppressed finding leaked: %v", findings)
	}
}

func TestDriverUnsuppressedFinding(t *testing.T) {
	pkg := loadSource(t, "example.com/p", panickySrc)
	policy := &Policy{Checks: map[string]*CheckPolicy{"panicfree": {Packages: []string{"example.com/p"}}}}
	findings, err := runPackages([]*Package{pkg}, policy)
	if err != nil {
		t.Fatalf("runPackages: %v", err)
	}
	if len(findings) != 1 || findings[0].Check != "panicfree" {
		t.Fatalf("findings = %v, want one panicfree finding", findings)
	}
}

func TestDriverOutOfScopePackage(t *testing.T) {
	pkg := loadSource(t, "example.com/p", panickySrc)
	policy := &Policy{Checks: map[string]*CheckPolicy{"panicfree": {Packages: []string{"example.com/other"}}}}
	findings, err := runPackages([]*Package{pkg}, policy)
	if err != nil {
		t.Fatalf("runPackages: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("out-of-scope package produced findings: %v", findings)
	}
}

func TestDriverStaleSuppression(t *testing.T) {
	src := `package p

//hyvet:allow panicfree this panic was removed long ago
func Calm() {}
`
	pkg := loadSource(t, "example.com/p", src)
	policy := &Policy{Checks: map[string]*CheckPolicy{"panicfree": {Packages: []string{"example.com/p"}}}}
	findings, err := runPackages([]*Package{pkg}, policy)
	if err != nil {
		t.Fatalf("runPackages: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the stale-suppression finding", findings)
	}
	if findings[0].Check != "hyvet" || !strings.Contains(findings[0].Message, "stale suppression") {
		t.Errorf("finding = %+v", findings[0])
	}
}

func TestDriverMalformedDirectiveIsError(t *testing.T) {
	src := `package p

//hyvet:allow nosuchcheck reason
func F() {}
`
	pkg := loadSource(t, "example.com/p", src)
	policy := &Policy{Checks: map[string]*CheckPolicy{}}
	if _, err := runPackages([]*Package{pkg}, policy); err == nil || !strings.Contains(err.Error(), "unknown check") {
		t.Fatalf("err = %v, want unknown-check directive error", err)
	}

	src2 := `package p

//hyvet:allow panicfree
func F() {}
`
	pkg2 := loadSource(t, "example.com/p", src2)
	if _, err := runPackages([]*Package{pkg2}, policy); err == nil || !strings.Contains(err.Error(), "missing reason") {
		t.Fatalf("err = %v, want missing-reason directive error", err)
	}
}

func TestDriverStaleAllowance(t *testing.T) {
	pkg := loadSource(t, "example.com/p", `package p

func Tame() {}
`)
	policy := &Policy{Checks: map[string]*CheckPolicy{"panicfree": {
		Packages: []string{"example.com/p"},
		Allow:    []Allowance{{Site: "example.com/p.Tame", Reason: "used to panic"}},
	}}}
	findings, err := runPackages([]*Package{pkg}, policy)
	if err != nil {
		t.Fatalf("runPackages: %v", err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "stale allowance") {
		t.Fatalf("findings = %v, want one stale-allowance finding", findings)
	}
}

func TestDriverAllowanceOutsideRunNotStale(t *testing.T) {
	// An allowance for a package that was not loaded in this run must not
	// be reported stale: partial runs cannot see the site.
	pkg := loadSource(t, "example.com/p", panickySrc)
	policy := &Policy{Checks: map[string]*CheckPolicy{"panicfree": {
		Packages: []string{"example.com/..."},
		Allow: []Allowance{
			{Site: "example.com/q.Hidden", Reason: "q is not part of this run"},
		},
	}}}
	findings, err := runPackages([]*Package{pkg}, policy)
	if err != nil {
		t.Fatalf("runPackages: %v", err)
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "stale allowance") {
			t.Errorf("allowance for unloaded package reported stale: %v", f)
		}
	}
}

func TestLoadBadPatternErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	// A typo'd pattern must fail the run, not silently analyze nothing.
	if _, err := Load(root, "./nosuchpkg"); err == nil {
		t.Fatal("Load accepted a pattern matching no packages")
	}
}

// TestRunRepository is the acceptance gate in test form: the full suite
// over the real module with the committed policy must come back clean.
func TestRunRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("repository-wide analysis in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	policy, err := LoadPolicy(filepath.Join(root, "hyvet.policy.json"))
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	// The gate is only as strong as the policy's coverage: every analyzer of
	// the suite must be scoped, so a check silently dropped from the policy
	// fails here rather than going dark.
	for _, a := range Analyzers() {
		if _, ok := policy.Checks[a.Name]; !ok {
			t.Errorf("policy does not scope %s; the clean-tree gate is not covering it", a.Name)
		}
	}
	findings, err := Run(root, policy, "./...")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("finding on clean tree: %s", f)
	}
}

// TestRunRepositoryCacheReplay runs the repository twice against a fresh
// cache directory: the warm run must replay every package and produce
// byte-identical findings (none, on a clean tree — but the comparison holds
// regardless).
func TestRunRepositoryCacheReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("repository-wide analysis in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	policy, err := LoadPolicy(filepath.Join(root, "hyvet.policy.json"))
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	opt := RunOptions{Cache: true, CacheDir: t.TempDir()}
	cold, coldStats, err := RunWithOptions(root, policy, opt, "./...")
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	warm, warmStats, err := RunWithOptions(root, policy, opt, "./...")
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warmStats.Cached != warmStats.Packages {
		t.Errorf("warm run replayed %d of %d packages; want all (cold run cached %d)",
			warmStats.Cached, warmStats.Packages, coldStats.Packages-coldStats.Cached)
	}
	if len(cold) != len(warm) {
		t.Fatalf("cold run %d findings, warm run %d", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Errorf("finding %d differs: cold %v, warm %v", i, cold[i], warm[i])
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// PanicFree bans panic in the scoped packages' non-test code. PR 1
// converted the ttdb/tpg mutators from panicking to returning errors — a
// panicking mutator inside the storage layer kills the whole serving
// process on bad input, where an error degrades one request. The policy
// file's allowlist names the deliberate exceptions (documented Must*
// helpers); the allowlist is checked: an entry that no longer matches a
// panic site is reported as stale so the policy cannot rot.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "no panic in scoped non-test code; deliberate Must* helpers go on the checked allowlist",
	Run:  runPanicFree,
}

func runPanicFree(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			site := panicSite(pass, fd)
			allowed := false
			if _, ok := pass.Check.Allowed(site); ok {
				allowed = true
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if b, ok := pass.Info.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				if allowed {
					used = true
					return true
				}
				pass.Reportf(call.Pos(), "panic in %s: storage-path code must return errors, not panic (allowlist the site in hyvet.policy.json if deliberate)", site)
				return true
			})
			if allowed && used {
				pass.AllowUsed(site)
			}
		}
	}
}

// panicSite names a function for the allowlist: "pkgpath.Func" for
// functions, "pkgpath.Recv.Method" for methods (pointer receivers without
// the star).
func panicSite(pass *Pass, fd *ast.FuncDecl) string {
	site := pass.Pkg.Path() + "."
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			if named := receiverNamed(fn); named != nil {
				site += named.Obj().Name() + "."
			}
		}
	}
	return site + fd.Name.Name
}

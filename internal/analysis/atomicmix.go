package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// AtomicMix enforces all-or-nothing atomicity on struct fields: a field
// accessed through sync/atomic anywhere in the module must never be read or
// written plainly anywhere else. A plain load next to atomic stores is a
// data race the race detector only catches when the interleaving happens in
// a test; mixed access also quietly loses the memory-ordering guarantees
// the atomic side was bought for. The repo's own convention is the typed
// atomics (atomic.Int64, atomic.Pointer, ...), which make mixing
// impossible — this check exists for the call-based form, where the
// compiler is no help.
//
// The atomic side of a field can live in a different package than the plain
// side (exported field, helper package), so atomic accesses are exported as
// facts keyed by field symbol and consumed by every later package in
// dependency order.
//
// One exemption: plain writes inside the declaring package's New*/new*
// constructors — initialization before the value is shared needs no
// atomicity, and requiring atomic.Store in constructors hides real races by
// normalizing noise.
var AtomicMix = &Analyzer{
	Name:     "atomicmix",
	Doc:      "a field accessed via sync/atomic must never be accessed plainly elsewhere",
	Facts:    atomicMixFacts,
	FactType: func() any { return new(AtomicFact) },
	Run:      runAtomicMix,
}

// AtomicFact marks a field as atomically accessed; At records one such site
// for the finding message.
type AtomicFact struct {
	At string `json:"at"`
}

// atomicMixFacts exports an AtomicFact for every field passed by address to
// a sync/atomic function anywhere in the package.
func atomicMixFacts(pass *Pass) {
	for _, f := range pass.Files {
		for sel, sym := range atomicFieldSels(pass, f) {
			if _, ok := pass.SymbolFact(sym); ok {
				continue
			}
			pos := pass.Fset.Position(sel.Pos())
			pass.ExportSymbolFact(sym, &AtomicFact{
				At: fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line),
			})
		}
	}
}

// atomicFieldSels maps each selector expression that is itself an atomic
// access (the &x.f inside atomic.AddUint64(&x.f, 1)) to its field symbol.
func atomicFieldSels(pass *Pass, f *ast.File) map[*ast.SelectorExpr]string {
	out := map[*ast.SelectorExpr]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicFuncCall(pass.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if sym := fieldSymbolOf(pass, sel); sym != "" {
				out[sel] = sym
			}
		}
		return true
	})
	return out
}

// isAtomicFuncCall matches the function (not method) forms of sync/atomic:
// Load*, Store*, Add*, Swap*, CompareAndSwap*. The typed atomics' methods
// are inherently unmixable and never match.
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// fieldSymbolOf resolves a selector to a struct-field symbol, or "".
func fieldSymbolOf(pass *Pass, sel *ast.SelectorExpr) string {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	owner := namedOf(selection.Recv())
	if owner == nil {
		return ""
	}
	return FieldSymbol(owner, sel.Sel.Name)
}

func runAtomicMix(pass *Pass) {
	for _, f := range pass.Files {
		atomicSels := atomicFieldSels(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isCtor := strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new")
			parents := parentMap(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if _, isAtomic := atomicSels[sel]; isAtomic {
					return true
				}
				sym := fieldSymbolOf(pass, sel)
				if sym == "" {
					return true
				}
				factAny, ok := pass.SymbolFact(sym)
				if !ok {
					return true
				}
				fact, _ := factAny.(*AtomicFact)
				kind := accessKind(parents, sel)
				if isCtor && kind == "write" && symbolPackage(sym) == pass.Pkg.Path() {
					// Constructor initialization before the value escapes.
					return true
				}
				at := ""
				if fact != nil {
					at = " (e.g. " + fact.At + ")"
				}
				pass.Reportf(sel.Pos(), "plain %s of %s, which is accessed atomically elsewhere%s: every access must go through sync/atomic (or use a typed atomic)", kind, sym, at)
				return true
			})
		}
	}
}

// accessKind classifies a field selector as read, write, or address-taken,
// from its parent node.
func accessKind(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) string {
	switch p := parents[sel].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == sel {
				return "write"
			}
		}
	case *ast.IncDecStmt:
		if p.X == sel {
			return "write"
		}
	case *ast.UnaryExpr:
		if p.Op.String() == "&" {
			return "address-taking"
		}
	}
	return "read"
}

// Golden test package for the goroutinelifetime analyzer. `want` comments
// are matched by the harness in harness_test.go.
package goroutinelifetime

import (
	"context"
	"sync"
)

// Leak spawns a goroutine with no join, channel, ctx, or lifecycle pairing.
func Leak(work []int) {
	go func() { // want "goroutine has no provable join or cancellation"
		for range work {
		}
	}()
}

type Pump struct{ out chan int }

// run loops forever with no stop signal.
func (p *Pump) run() {
	for {
		p.step()
	}
}

func (p *Pump) step() {}

// LeakMethod spawns a method goroutine and never pairs it with a lifecycle
// call on the same receiver.
func LeakMethod(p *Pump) {
	go p.run() // want "goroutine has no provable join or cancellation"
}

// Joined uses a WaitGroup — the join shape (no finding).
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Handshake sends the result on a channel the spawner receives from (no
// finding).
func Handshake() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

// Cancellable observes ctx in the goroutine body (no finding).
func Cancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// worker observes its ctx, so it carries the Cancellable fact.
func worker(ctx context.Context) {
	<-ctx.Done()
}

// SpawnWorker hands its ctx to a Cancellable callee — accepted through the
// fact even without looking into worker's body (no finding).
func SpawnWorker(ctx context.Context) {
	go worker(ctx)
}

type Server struct{}

func (s *Server) Serve()    {}
func (s *Server) Shutdown() {}

// Paired ties the spawned goroutine to Shutdown on the same receiver — the
// http.Server.Serve shape (no finding).
func Paired(s *Server) {
	defer s.Shutdown()
	go s.Serve()
}

// Background documents a reviewed process-lifetime goroutine, suppressed
// with a reason.
func Background(events chan int) {
	go func() { //hyvet:allow goroutinelifetime process-lifetime metrics drain; exits with the process by design
		for range events {
		}
	}()
}

// Golden test package for the ctxflow analyzer. `want` comments are
// matched by the harness in harness_test.go.
package ctxflow

import (
	"context"
	"time"
)

type Store struct{}

// Flush is the plain variant.
func (s *Store) Flush() {}

// FlushCtx is the context-threading variant.
func (s *Store) FlushCtx(ctx context.Context) {}

// Drain holds a ctx but calls the plain variant — rule 1.
func Drain(ctx context.Context, s *Store) {
	s.Flush() // want "call to Flush drops the request context: call FlushCtx with ctx so the deadline propagates"
}

// Detached manufactures an ambient context on a request path — rule 2.
func Detached(s *Store) {
	ctx := context.Background() // want "manufactured on a request path: accept and thread the caller's context instead"
	s.FlushCtx(ctx)
}

// detachHelper buries the ambient context one frame down. Its own site is
// rule 2; callers holding a ctx trip rule 3 on the call.
func detachHelper(s *Store) {
	s.FlushCtx(context.TODO()) // want "manufactured on a request path"
}

// Serve holds a ctx and calls the ctx-less helper that manufactures its own
// context — rule 3, via the AmbientCtx fact.
func Serve(ctx context.Context, s *Store) {
	detachHelper(s) // want "call to detachHelper drops the request context: it manufactures an ambient context"
}

// Broadcast fans out blocking sends without ever observing ctx — rule 4.
func Broadcast(ctx context.Context, chans []chan int) {
	for _, ch := range chans { // want "fan-out loop does blocking work .a channel send. without ever observing ctx"
		ch <- 1
	}
}

// BroadcastCtx observes ctx per item — the blessed fan-out (no finding).
func BroadcastCtx(ctx context.Context, chans []chan int) {
	for _, ch := range chans {
		if ctx.Err() != nil {
			return
		}
		ch <- 1
	}
}

// ThreadThrough passes ctx into the variant — correct (no finding).
func ThreadThrough(ctx context.Context, s *Store) {
	s.FlushCtx(ctx)
}

// Retry documents a reviewed bounded backoff loop, suppressed with a reason.
func Retry(ctx context.Context, attempts int) {
	for i := 0; i < attempts; i++ { //hyvet:allow ctxflow bounded retry with a reviewed, sub-deadline backoff budget
		time.Sleep(time.Millisecond)
	}
}

// Golden test package for the walerrlatch analyzer.
package walerrlatch

import (
	"bufio"
	"bytes"
)

// Writer mirrors walrec.Writer: a sticky error field plus a fail latch.
type Writer struct {
	w   *bufio.Writer
	err error
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Append latches correctly (no finding).
func (w *Writer) Append(p []byte) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.Write(p); err != nil {
		return w.fail(err)
	}
	return nil
}

// FlushRaw returns the write error without poisoning the writer.
func (w *Writer) FlushRaw() error {
	return w.w.Flush() // want "error from w.w.Flush is returned without being latched"
}

// Drop throws the write error away entirely.
func (w *Writer) Drop(p []byte) {
	w.w.Write(p) // want "error from w.w.Write is dropped"
}

// Blank discards the error through the blank identifier.
func (w *Writer) Blank(p []byte) {
	_, _ = w.w.Write(p) // want "error from w.w.Write is discarded with _"
}

// Lost captures the error but it never reaches the latch.
func (w *Writer) Lost(p []byte) error {
	_, err := w.w.Write(p) // want "error from w.w.Write never reaches the error latch"
	if err != nil {
		return err
	}
	return nil
}

// DirectField latches by assigning the sticky field directly (no finding).
func (w *Writer) DirectField(p []byte) {
	_, err := w.w.Write(p)
	if err != nil {
		w.err = err
	}
}

// FlushAll drops a write error outside any latch type — still a finding.
func FlushAll(bw *bufio.Writer) {
	bw.Flush() // want "error from bw.Flush is dropped"
}

// DeferDrop hides the error behind defer.
func DeferDrop(bw *bufio.Writer) {
	defer bw.Flush() // want "error from bw.Flush is dropped behind defer"
}

// Buffered writes to a bytes.Buffer, which cannot fail (no finding).
func Buffered(b *bytes.Buffer, p []byte) {
	b.Write(p)
}

// Checked consumes the error in a condition (no finding: rule 1 is about
// dropping, not about what the handler does).
func Checked(bw *bufio.Writer) bool {
	return bw.Flush() == nil
}

// ShutdownBestEffort documents a deliberate best-effort flush.
func ShutdownBestEffort(bw *bufio.Writer) {
	bw.Flush() //hyvet:allow walerrlatch best-effort flush on the shutdown path, error has nowhere to go
}

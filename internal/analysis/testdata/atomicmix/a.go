// Golden test package for the atomicmix analyzer. `want` comments are
// matched by the harness in harness_test.go.
package atomicmix

import "sync/atomic"

type Counter struct {
	hits  uint64
	flag  int32
	plain int
}

// Incr is the atomic side; it marks Counter.hits as an atomic field.
func (c *Counter) Incr() {
	atomic.AddUint64(&c.hits, 1)
}

// SetFlag marks Counter.flag as atomic too.
func (c *Counter) SetFlag() {
	atomic.StoreInt32(&c.flag, 1)
}

// Hits reads the atomic field plainly — a data race.
func (c *Counter) Hits() uint64 {
	return c.hits // want "plain read of hyvet.test/atomicmix.Counter.hits, which is accessed atomically elsewhere"
}

// Reset writes the atomic field plainly outside any constructor.
func (c *Counter) Reset() {
	c.hits = 0 // want "plain write of hyvet.test/atomicmix.Counter.hits, which is accessed atomically elsewhere"
}

// NewCounter initializes plainly before the value is shared — the blessed
// constructor exemption (no finding).
func NewCounter() *Counter {
	c := &Counter{}
	c.hits = 0
	return c
}

// Plain accesses a never-atomic field — always fine (no finding).
func (c *Counter) Plain() int {
	return c.plain
}

// FlagSnapshot documents a reviewed plain read under an external guarantee,
// suppressed with a reason.
func (c *Counter) FlagSnapshot() int32 {
	return c.flag //hyvet:allow atomicmix read under the stop-the-world snapshot barrier; no concurrent writers exist
}

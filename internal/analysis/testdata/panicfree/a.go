// Golden test package for the panicfree analyzer. The test policy
// allowlists hyvet.test/panicfree.Graph.MustAdd.
package panicfree

import "fmt"

type Graph struct{ n int }

// Add returns errors — the required shape for mutators (no finding).
func (g *Graph) Add(n int) error {
	if n < 0 {
		return fmt.Errorf("panicfree: negative %d", n)
	}
	g.n += n
	return nil
}

// AddOrDie panics on a library path.
func (g *Graph) AddOrDie(n int) {
	if err := g.Add(n); err != nil {
		panic(err) // want "panic in hyvet.test/panicfree.Graph.AddOrDie"
	}
}

// Validate panics from a plain function, via a closure — still a finding.
func Validate(g *Graph) {
	check := func() {
		if g == nil {
			panic("nil graph") // want "panic in hyvet.test/panicfree.Validate"
		}
	}
	check()
}

// MustAdd is on the policy allowlist (no finding; keeps the entry fresh).
func (g *Graph) MustAdd(n int) {
	if err := g.Add(n); err != nil {
		panic(err)
	}
}

// Rebuild documents a deliberate panic with an inline suppression.
func Rebuild(ok bool) {
	if !ok {
		//hyvet:allow panicfree unreachable by construction, guarded by the caller
		panic("rebuild invariant violated")
	}
}

// Golden test package for the lockdiscipline analyzer. `want` comments are
// matched by the harness in harness_test.go.
package lockdiscipline

import "sync"

type Store struct {
	mu    sync.RWMutex
	items map[string]int
}

// Get takes the read lock (correct public method; no finding).
func (s *Store) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[k]
}

// Set takes the write lock (correct; no finding).
func (s *Store) Set(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
}

// getLocked assumes the lock is held (correct; no finding).
func (s *Store) getLocked(k string) int { return s.items[k] }

// SumNested re-enters a lock-taking public method with the lock held.
func (s *Store) SumNested(keys []string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, k := range keys {
		n += s.Get(k) // want "nested lock acquisition: Get takes s.mu which is already held"
	}
	return n
}

// BumpDeadlock upgrades a held read lock by calling a write-taking method.
func (s *Store) BumpDeadlock(k string) {
	s.mu.RLock()
	v := s.items[k]
	s.Set(k, v+1) // want "Set takes the write lock on s.mu while the read lock is held: guaranteed deadlock"
	s.mu.RUnlock()
}

// PeekUnheld calls a *Locked internal without holding the lock.
func (s *Store) PeekUnheld(k string) int {
	return s.getLocked(k) // want "getLocked requires s.mu to be held, but the caller does not hold it"
}

// totalLocked is a *Locked function that wrongly takes the lock itself.
func (s *Store) totalLocked() int {
	s.mu.RLock() // want "totalLocked must not take s.mu: \*Locked functions run with the lock already held"
	defer s.mu.RUnlock()
	n := 0
	for _, v := range s.items {
		n += v
	}
	return n
}

// Copy holds the lock and calls the *Locked internal — the blessed pattern
// (no finding).
func (s *Store) Copy(keys []string) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.getLocked(k))
	}
	return out
}

// Upgrade releases the read lock before taking the write lock — legal; the
// linear simulation must not confuse it with a held-across call (no
// finding).
func (s *Store) Upgrade(k string) int {
	s.mu.RLock()
	v, ok := s.items[k]
	s.mu.RUnlock()
	if ok {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = 1
	return s.getLocked(k)
}

// Refresh documents a deliberate re-entry, suppressed with a reason.
func (s *Store) Refresh(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	//hyvet:allow lockdiscipline demonstration of a reviewed, deliberate re-entrant read
	return s.Get(k)
}

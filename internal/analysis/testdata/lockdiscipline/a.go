// Golden test package for the lockdiscipline analyzer. `want` comments are
// matched by the harness in harness_test.go.
package lockdiscipline

import "sync"

type Store struct {
	mu    sync.RWMutex
	items map[string]int
}

// Get takes the read lock (correct public method; no finding).
func (s *Store) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[k]
}

// Set takes the write lock (correct; no finding).
func (s *Store) Set(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
}

// getLocked assumes the lock is held (correct; no finding).
func (s *Store) getLocked(k string) int { return s.items[k] }

// SumNested re-enters a lock-taking public method with the lock held.
func (s *Store) SumNested(keys []string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, k := range keys {
		n += s.Get(k) // want "nested lock acquisition: Get takes s.mu which is already held"
	}
	return n
}

// BumpDeadlock upgrades a held read lock by calling a write-taking method.
func (s *Store) BumpDeadlock(k string) {
	s.mu.RLock()
	v := s.items[k]
	s.Set(k, v+1) // want "Set takes the write lock on s.mu while the read lock is held: guaranteed deadlock"
	s.mu.RUnlock()
}

// PeekUnheld calls a *Locked internal without holding the lock.
func (s *Store) PeekUnheld(k string) int {
	return s.getLocked(k) // want "getLocked requires s.mu to be held, but the caller does not hold it"
}

// totalLocked is a *Locked function that wrongly takes the lock itself.
func (s *Store) totalLocked() int {
	s.mu.RLock() // want "totalLocked must not take s.mu: \*Locked functions run with the lock already held"
	defer s.mu.RUnlock()
	n := 0
	for _, v := range s.items {
		n += v
	}
	return n
}

// Copy holds the lock and calls the *Locked internal — the blessed pattern
// (no finding).
func (s *Store) Copy(keys []string) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.getLocked(k))
	}
	return out
}

// Upgrade releases the read lock before taking the write lock — legal; the
// linear simulation must not confuse it with a held-across call (no
// finding).
func (s *Store) Upgrade(k string) int {
	s.mu.RLock()
	v, ok := s.items[k]
	s.mu.RUnlock()
	if ok {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = 1
	return s.getLocked(k)
}

// Refresh documents a deliberate re-entry, suppressed with a reason.
func (s *Store) Refresh(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	//hyvet:allow lockdiscipline demonstration of a reviewed, deliberate re-entrant read
	return s.Get(k)
}

// refreshInner takes no lock itself but delegates to the lock-taking Get;
// the transitive closure classifies it as read-taking via Get.
func (s *Store) refreshInner(k string) int { return s.Get(k) }

// SumTransitive re-enters the lock through one delegation hop.
func (s *Store) SumTransitive(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.refreshInner(k) // want "nested lock acquisition: refreshInner takes s.mu \(via Get\) which is already held"
}

// bumpInner delegates to the write-taking Set.
func (s *Store) bumpInner(k string) { s.Set(k, 1) }

// UpgradeTransitive upgrades a held read lock through one delegation hop.
func (s *Store) UpgradeTransitive(k string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.bumpInner(k) // want "bumpInner takes the write lock on s.mu \(via Set\) while the read lock is held: guaranteed deadlock"
}

// ---------------------------------------------------------------------------
// Striped-lock shape: many instances of one guarded type behind indexes.

type stripe struct {
	mu   sync.Mutex
	vals map[string]int
}

// get takes its stripe's lock (correct public method; no finding).
func (s *stripe) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k]
}

type Striped struct {
	shards []stripe
}

// MoveBad holds one stripe while taking another with no fixed order — the
// ABBA deadlock shape.
func (d *Striped) MoveBad(i, j int, k string) {
	a := &d.shards[i]
	b := &d.shards[j]
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "cross-stripe acquisition: b.mu taken while a.mu is held \(two stripes of stripe\); acquire stripes in a fixed order in a function named \*Ordered"
	defer b.mu.Unlock()
	b.vals[k] = a.vals[k]
}

// SwapBadIndexed trips the same rule through index expressions.
func (d *Striped) SwapBadIndexed(i, j int, k string) {
	d.shards[i].mu.Lock()
	defer d.shards[i].mu.Unlock()
	d.shards[j].mu.Lock() // want "cross-stripe acquisition: d.shards\[j\].mu taken while d.shards\[i\].mu is held \(two stripes of stripe\)"
	defer d.shards[j].mu.Unlock()
	d.shards[j].vals[k] = d.shards[i].vals[k]
}

// CopyBadCall holds a stripe while calling a lock-taking method on another.
func (d *Striped) CopyBadCall(i, j int, k string) int {
	a := &d.shards[i]
	a.mu.Lock()
	defer a.mu.Unlock()
	return d.shards[j].get(k) // want "cross-stripe acquisition: get takes d.shards\[j\].mu while a.mu is held \(two stripes of stripe\)"
}

// swapOrdered declares a canonical acquisition order via its suffix — the
// blessed way to hold two stripes (no finding).
func (d *Striped) swapOrdered(lo, hi int, k string) {
	a, b := &d.shards[lo], &d.shards[hi]
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	a.vals[k], b.vals[k] = b.vals[k], a.vals[k]
}

// Reconcile documents a reviewed two-stripe hold, suppressed with a reason.
func (d *Striped) Reconcile(i, j int, k string) {
	a := &d.shards[i]
	b := &d.shards[j]
	a.mu.Lock()
	defer a.mu.Unlock()
	//hyvet:allow lockdiscipline demonstration of a reviewed two-stripe section under an external ordering guarantee
	b.mu.Lock()
	defer b.mu.Unlock()
	b.vals[k] = a.vals[k]
}

// SequentialStripes releases each stripe before the next — the shard-scan
// pattern (no finding).
func (d *Striped) SequentialStripes(k string) int {
	n := 0
	a := &d.shards[0]
	a.mu.Lock()
	n += a.vals[k]
	a.mu.Unlock()
	b := &d.shards[1]
	b.mu.Lock()
	n += b.vals[k]
	b.mu.Unlock()
	return n
}

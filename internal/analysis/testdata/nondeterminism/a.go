// Golden test package for the nondeterminism analyzer.
package nondeterminism

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want "call to time.Now in a deterministic package"
}

// Jitter consumes the global math/rand source.
func Jitter() float64 {
	return rand.Float64() // want "call to global rand.Float64 in a deterministic package"
}

// Shuffle consumes the global source through a helper.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "call to global rand.Shuffle"
}

// Seeded builds an explicit source — the blessed pattern (no finding).
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Draw uses an injected source; methods are fine (no finding).
func Draw(r *rand.Rand) float64 {
	return r.Float64()
}

// Timeout uses time values without reading the clock (no finding).
func Timeout() time.Duration {
	return 5 * time.Second
}

// Uptime documents a reviewed clock read, suppressed with a reason.
func Uptime(start time.Time) time.Duration {
	return time.Since(start) //hyvet:allow nondeterminism operational metric, not on a replay path
}

// Golden test package for the boundedalloc analyzer. `want` comments are
// matched by the harness in harness_test.go.
package boundedalloc

import (
	"bufio"
	"encoding/binary"
)

const maxRecords = 1 << 20

// LoadUnchecked sizes an allocation straight from a decoded varint.
func LoadUnchecked(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n) // want "sized from decoded input with no bound check: validate or clamp the size before allocating"
	return buf, nil
}

// alloc allocates from its parameter with no guard — the UncheckedParams
// fact; the finding lands on callers that pass decoded values in.
func alloc(n uint64) []byte {
	return make([]byte, n)
}

// LoadViaHelper launders the decoded size through a helper; the fact
// reports it at the call site.
func LoadViaHelper(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return alloc(n), nil // want "decoded, unchecked size flows into alloc, which allocates from that parameter without a bound check"
}

// LoadChecked rejects oversized lengths before allocating (no finding).
func LoadChecked(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxRecords {
		return nil, nil
	}
	return make([]byte, n), nil
}

// LoadClamped clamps instead of rejecting — also a guard (no finding).
func LoadClamped(br *bufio.Reader) []byte {
	n, _ := binary.ReadUvarint(br)
	if n > maxRecords {
		n = maxRecords
	}
	return make([]byte, n)
}

// Sized allocates from an already-held object's length — never tainted (no
// finding).
func Sized(xs []int) []int {
	return make([]int, len(xs))
}

// LoadTrusted documents a reviewed decode from a CRC-covered region,
// suppressed with a reason.
func LoadTrusted(br *bufio.Reader) []byte {
	n, _ := binary.ReadUvarint(br)
	return make([]byte, n) //hyvet:allow boundedalloc length field is inside the CRC-covered frame; corruption is rejected before this decode runs
}

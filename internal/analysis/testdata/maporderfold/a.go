// Golden test package for the maporderfold analyzer.
package maporderfold

import "sort"

// DistrictSums is the Q5 bug class verbatim: a float fold in map order.
func DistrictSums(sums map[string]float64) float64 {
	var total float64
	for _, v := range sums {
		total += v // want "floating-point accumulation into total inside range over a map"
	}
	return total
}

// Spelled is the same fold written as x = x + v.
func Spelled(m map[int]float64) float64 {
	t := 0.0
	for _, v := range m {
		t = t + v // want "floating-point accumulation into t inside range over a map"
	}
	return t
}

// GroupFold accumulates into map entries keyed by a projection — the exact
// shape of the district fold: whenever two source keys land in the same
// group, their addition order is random.
func GroupFold(m, out map[string]float64) {
	for k, v := range m {
		out[k[:1]] += v // want "floating-point accumulation into out"
	}
}

// NestedFold accumulates into an outer variable from a loop nested inside
// a map range — the map's order still drives the fold order.
func NestedFold(groups map[string][]float64) float64 {
	var total float64
	for _, vs := range groups {
		for _, v := range vs {
			total += v // want "floating-point accumulation into total inside range over a map"
		}
	}
	return total
}

// SortedKeys is the blessed fix: fold over deterministically ordered keys
// (no finding).
func SortedKeys(sums map[string]float64) float64 {
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += sums[k]
	}
	return total
}

// IntCount is integer accumulation: associative, order-free (no finding).
func IntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// PerIteration accumulates into a variable scoped to one iteration — no
// cross-iteration order dependence (no finding).
func PerIteration(m map[string][]float64) int {
	hits := 0
	for _, vs := range m {
		var local float64
		for _, v := range vs {
			local += v
		}
		if local > 1 {
			hits++
		}
	}
	return hits
}

// HalveInPlace writes through the range key itself: every key is visited
// exactly once, so the per-slot update is order-free (no finding).
func HalveInPlace(m map[string]float64) {
	for k := range m {
		m[k] /= 2
	}
}

// Tolerated documents a reviewed fold where last-ulp drift is acceptable.
func Tolerated(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v //hyvet:allow maporderfold caller asserts tolerance-based comparison, drift acceptable
	}
	return t
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockDiscipline enforces the storage engines' locking convention (see
// docs/PARALLELISM.md): types guarding state with a sync.Mutex/RWMutex field
// expose public methods that take the lock and *Locked internals that assume
// it is held. Three rules follow:
//
//  1. A function holding the lock must not call another method that takes
//     the same lock (nested acquisition; with RWMutex, a nested read lock
//     deadlocks against a waiting writer).
//  2. Holding only the read lock across a call that takes the write lock is
//     a guaranteed deadlock and is reported with a dedicated message.
//  3. A *Locked method may only be called with the lock held, and must not
//     take the lock itself.
//  4. Striped locks — multiple instances of one guarded type reached through
//     indexing (`db.shards[i].mu`) or stripe-local variables — must not be
//     held two at a time with no fixed order: acquiring a second stripe of
//     the same guarded type while one is held risks an ABBA deadlock against
//     a goroutine acquiring the same pair in the opposite order. Functions
//     whose name ends in "Ordered" are exempt — the suffix declares the body
//     acquires stripes in a canonical order (ascending index), which is the
//     blessed way to hold two stripes.
//
// The analysis is a linear, position-ordered simulation of each function
// body: acquire/release events on `x.mu` update a per-owner lock state, and
// method calls are checked against that state. Owner keys flatten
// identifier/selector/index chains ("db", "l.db", "db.shards[i]"), so two
// different stripe expressions of one striped store map to two different
// owners of the same guarded type. Function literals are simulated
// separately with an unlocked state (callbacks are assumed to run without
// the caller's lock unless they trip rule 3 on their own).
//
// Lock classes are interprocedural: a method that never touches the mutex
// itself but calls a sibling method that does still "takes the lock", so
// calling it with the lock held is the same nested acquisition one frame
// removed — the finding says which callee actually acquires ("via Set").
// The classes are computed to a fixpoint over receiver-self calls inside
// the package and exported as LockFacts, so a scoped package calling a
// guarded type it imported is checked against the callee's real locking
// behavior, not its name.
var LockDiscipline = &Analyzer{
	Name:     "lockdiscipline",
	Doc:      "lock-taking methods must not nest; *Locked internals require the lock held",
	Facts:    lockDisciplineFacts,
	FactType: func() any { return new(LockFact) },
	Run:      runLockDiscipline,
}

// LockFact is the cross-package form of a method's lock class.
type LockFact struct {
	Read  bool   `json:"read,omitempty"`
	Write bool   `json:"write,omitempty"`
	Via   string `json:"via,omitempty"`
}

// lockClass records which locks a method takes on its own receiver; via
// names the callee that actually acquires when the class is transitive.
type lockClass struct {
	read, write bool
	via         string
}

func (c lockClass) takesLock() bool { return c.read || c.write }

// lock states for the simulation.
const (
	stUnlocked = iota
	stRead
	stWrite
)

func runLockDiscipline(pass *Pass) {
	guarded := guardedTypes(pass)
	if len(guarded) == 0 {
		return
	}
	classes := classifyLockMethods(pass, guarded)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			simulateLockStates(pass, fd, guarded, classes)
		}
	}
}

// guardedTypes finds package-level struct types with a sync.Mutex or
// sync.RWMutex field, mapping the named type to the mutex field's name.
func guardedTypes(pass *Pass) map[*types.Named]string {
	out := map[*types.Named]string{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isSyncMutex(st.Field(i).Type()) {
				out[named] = st.Field(i).Name()
				break
			}
		}
	}
	return out
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// receiverNamed resolves a method's receiver to its named type, unwrapping
// one pointer.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// lockDisciplineFacts exports every guarded method's lock class so scoped
// importers can simulate calls into this package.
func lockDisciplineFacts(pass *Pass) {
	guarded := guardedTypes(pass)
	if len(guarded) == 0 {
		return
	}
	for fn, class := range classifyLockMethods(pass, guarded) {
		pass.ExportFact(fn, &LockFact{Read: class.read, Write: class.write, Via: class.via})
	}
}

// classifyLockMethods records, for every method of a guarded type, whether
// its body takes the receiver's lock (ignoring function literals) — first
// directly, then transitively to a fixpoint: a method calling a sibling on
// its own receiver inherits the sibling's class.
func classifyLockMethods(pass *Pass, guarded map[*types.Named]string) map[*types.Func]lockClass {
	classes := map[*types.Func]lockClass{}
	type methodDecl struct {
		fn   *types.Func
		fd   *ast.FuncDecl
		recv types.Object
	}
	var methods []methodDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			named := receiverNamed(fn)
			if named == nil {
				continue
			}
			muField, ok := guarded[named]
			if !ok {
				continue
			}
			md := methodDecl{fn: fn, fd: fd}
			if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				md.recv = pass.Info.Defs[fd.Recv.List[0].Names[0]]
			}
			methods = append(methods, md)
			var class lockClass
			inspectSkippingFuncLits(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if op, _, _, ok := mutexOp(pass, call, muField); ok {
					switch op {
					case "Lock":
						class.write = true
					case "RLock":
						class.read = true
					}
				}
			})
			if class.takesLock() {
				classes[fn] = class
			}
		}
	}
	// Transitive closure over receiver-self calls: SetAll calling s.Set
	// takes whatever Set takes.
	for changed := true; changed; {
		changed = false
		for _, md := range methods {
			if md.recv == nil {
				continue
			}
			class := classes[md.fn]
			inspectSkippingFuncLits(md.fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || pass.Info.ObjectOf(id) != md.recv {
					return
				}
				selection, ok := pass.Info.Selections[sel]
				if !ok || selection.Kind() != types.MethodVal {
					return
				}
				callee, ok := selection.Obj().(*types.Func)
				if !ok || callee == md.fn {
					return
				}
				cc, ok := classes[callee]
				if !ok {
					return
				}
				if (cc.read && !class.read) || (cc.write && !class.write) {
					class.read = class.read || cc.read
					class.write = class.write || cc.write
					if class.via == "" {
						if cc.via != "" {
							class.via = cc.via
						} else {
							class.via = callee.Name()
						}
					}
					changed = true
				}
			})
			if class.takesLock() {
				classes[md.fn] = class
			}
		}
	}
	return classes
}

// inspectSkippingFuncLits walks n calling fn on every node, without
// descending into function literals.
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// mutexOp matches `<owner>.<muField>.Lock()` (and RLock/Unlock/RUnlock),
// returning the operation name, the owner key, and the owner's named type
// (for the cross-stripe rule).
func mutexOp(pass *Pass, call *ast.CallExpr, muField string) (op, owner string, typ *types.Named, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", nil, false
	}
	muSel, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel || muSel.Sel.Name != muField || !isSyncMutex(pass.Info.TypeOf(sel.X)) {
		return "", "", nil, false
	}
	owner, ok = exprKey(muSel.X)
	if !ok {
		return "", "", nil, false
	}
	return sel.Sel.Name, owner, namedOf(pass.Info.TypeOf(muSel.X)), true
}

// namedOf unwraps a pointer and returns the named type underneath, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// exprKey flattens an identifier/selector/index chain ("db", "l.db",
// "db.shards[i]") into a stable key for lock-state tracking. Two stripes of
// one striped store reached through different variables or indexes get
// different keys; callers must use one expression per stripe for the
// tracking to be sound.
func exprKey(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		idx, ok := indexKey(e.Index)
		if !ok {
			return "", false
		}
		return base + "[" + idx + "]", true
	case *ast.ParenExpr:
		return exprKey(e.X)
	}
	return "", false
}

// indexKey renders an index expression usable as part of an owner key:
// plain identifiers, literals, and selector chains. Computed indexes
// (i+1, f(x)) are not trackable and make the whole owner untracked.
func indexKey(e ast.Expr) (string, bool) {
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Value, true
	}
	return exprKey(e)
}

// lockEvent is one acquire/release/call observed in a function body.
type lockEvent struct {
	pos      token.Pos
	owner    string
	typ      *types.Named // guarded type owning the mutex (stripe identity)
	op       string       // mutex op, or "" for method calls
	deferred bool         // inside a defer statement
	target   *types.Func  // callee, for method calls
	class    lockClass    // callee's lock class
	locked   bool         // callee has the *Locked suffix
}

// simulateLockStates runs the linear lock-state simulation over one
// function declaration, then over each nested function literal with a
// fresh (unlocked) state.
func simulateLockStates(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Named]string, classes map[*types.Func]lockClass) {
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	recvKey := ""
	isLockedFn := false
	if fn != nil && fd.Recv != nil {
		if named := receiverNamed(fn); named != nil {
			if _, ok := guarded[named]; ok {
				if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					recvKey = fd.Recv.List[0].Names[0].Name
				}
				isLockedFn = strings.HasSuffix(fd.Name.Name, "Locked")
			}
		}
	}
	var lits []*ast.FuncLit
	events := collectLockEvents(pass, fd.Body, guarded, classes, &lits)
	runLockSim(pass, fd.Name.Name, recvKey, isLockedFn, events)
	for len(lits) > 0 {
		lit := lits[0]
		lits = lits[1:]
		litEvents := collectLockEvents(pass, lit.Body, guarded, classes, &lits)
		runLockSim(pass, fd.Name.Name+" (func literal)", "", false, litEvents)
	}
}

// collectLockEvents gathers the body's lock events in source order. Nested
// function literals are appended to lits for separate simulation.
func collectLockEvents(pass *Pass, body ast.Node, guarded map[*types.Named]string, classes map[*types.Func]lockClass, lits *[]*ast.FuncLit) []lockEvent {
	var events []lockEvent
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != body {
				*lits = append(*lits, n)
				return false
			}
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			if ev, ok := lockEventOf(pass, n, guarded, classes); ok {
				ev.deferred = deferred[n]
				events = append(events, ev)
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// lockEventOf classifies one call expression as a lock event, if it is one.
func lockEventOf(pass *Pass, call *ast.CallExpr, guarded map[*types.Named]string, classes map[*types.Func]lockClass) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	// Direct mutex operation on any guarded type's mutex field?
	for _, muField := range guarded {
		if op, owner, typ, ok := mutexOp(pass, call, muField); ok {
			return lockEvent{pos: call.Pos(), owner: owner, typ: typ, op: op}, true
		}
	}
	// Method call on a guarded type?
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return lockEvent{}, false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return lockEvent{}, false
	}
	named := receiverNamed(fn)
	if named == nil {
		return lockEvent{}, false
	}
	var class lockClass
	if _, isGuarded := guarded[named]; isGuarded {
		class = classes[fn]
	} else if fn.Pkg() != nil && fn.Pkg() != pass.Pkg && sameModule(pass.Pkg, fn.Pkg()) {
		// A guarded type from an imported package: its lock classes arrive
		// as facts computed in its home package.
		if f, ok := pass.Fact(fn); ok {
			if lf, _ := f.(*LockFact); lf != nil {
				class = lockClass{read: lf.Read, write: lf.Write, via: lf.Via}
			}
		}
	} else {
		return lockEvent{}, false
	}
	locked := strings.HasSuffix(fn.Name(), "Locked")
	if !class.takesLock() && !locked {
		return lockEvent{}, false
	}
	owner, ok := exprKey(sel.X)
	if !ok {
		return lockEvent{}, false
	}
	return lockEvent{pos: call.Pos(), owner: owner, typ: named, target: fn, class: class, locked: locked}, true
}

// runLockSim replays the events, updating per-owner lock state and
// reporting rule violations.
func runLockSim(pass *Pass, fname, recvKey string, isLockedFn bool, events []lockEvent) {
	state := map[string]int{}
	ownerTyp := map[string]*types.Named{}
	// An ...Ordered function declares it acquires same-type stripes in a
	// canonical order, which makes holding two at once deadlock-free.
	ordered := strings.HasSuffix(strings.TrimSuffix(fname, " (func literal)"), "Ordered")
	// heldStripe returns a held owner of the same guarded type under a
	// different key — the ABBA hazard the cross-stripe rule reports. The
	// smallest matching key keeps the finding deterministic.
	heldStripe := func(ev lockEvent) (string, bool) {
		if ev.typ == nil || ordered {
			return "", false
		}
		best, found := "", false
		for o, st := range state {
			if st != stUnlocked && o != ev.owner && ownerTyp[o] == ev.typ && (!found || o < best) {
				best, found = o, true
			}
		}
		return best, found
	}
	if isLockedFn && recvKey != "" {
		// A *Locked method runs with its receiver's lock already held.
		state[recvKey] = stWrite
	}
	for _, ev := range events {
		switch ev.op {
		case "Lock", "RLock":
			if isLockedFn && ev.owner == recvKey {
				pass.Reportf(ev.pos, "%s must not take %s.mu: *Locked functions run with the lock already held", fname, ev.owner)
			}
			if other, ok := heldStripe(ev); ok {
				pass.Reportf(ev.pos, "cross-stripe acquisition: %s.mu taken while %s.mu is held (two stripes of %s); acquire stripes in a fixed order in a function named *Ordered", ev.owner, other, ev.typ.Obj().Name())
			}
			if ev.op == "Lock" {
				state[ev.owner] = stWrite
			} else {
				state[ev.owner] = stRead
			}
			ownerTyp[ev.owner] = ev.typ
		case "Unlock", "RUnlock":
			// A deferred unlock keeps the lock held to the end of the
			// function; only inline releases change the linear state.
			if !ev.deferred {
				state[ev.owner] = stUnlocked
			}
		default: // method call
			st := state[ev.owner]
			via := ""
			if ev.class.via != "" {
				via = " (via " + ev.class.via + ")"
			}
			switch {
			case ev.class.takesLock() && st == stRead && ev.class.write:
				pass.Reportf(ev.pos, "%s takes the write lock on %s.mu%s while the read lock is held: guaranteed deadlock", ev.target.Name(), ev.owner, via)
			case ev.class.takesLock() && st != stUnlocked:
				pass.Reportf(ev.pos, "nested lock acquisition: %s takes %s.mu%s which is already held", ev.target.Name(), ev.owner, via)
			case ev.locked && st == stUnlocked:
				pass.Reportf(ev.pos, "%s requires %s.mu to be held, but the caller does not hold it", ev.target.Name(), ev.owner)
			default:
				if ev.class.takesLock() {
					if other, ok := heldStripe(ev); ok {
						pass.Reportf(ev.pos, "cross-stripe acquisition: %s takes %s.mu while %s.mu is held (two stripes of %s); acquire stripes in a fixed order in a function named *Ordered", ev.target.Name(), ev.owner, other, ev.typ.Obj().Name())
					}
				}
			}
		}
	}
}

package analysis

import "testing"

// Each analyzer's golden package: the build fails if the analyzer stops
// producing (or over-produces) findings against the annotated sources.

func TestLockDiscipline(t *testing.T) {
	runWantTest(t, "testdata/lockdiscipline", singleCheckPolicy("lockdiscipline"))
}

func TestMapOrderFold(t *testing.T) {
	runWantTest(t, "testdata/maporderfold", singleCheckPolicy("maporderfold"))
}

func TestWALErrLatch(t *testing.T) {
	runWantTest(t, "testdata/walerrlatch", singleCheckPolicy("walerrlatch"))
}

func TestPanicFree(t *testing.T) {
	policy := singleCheckPolicy("panicfree")
	policy.Checks["panicfree"].Allow = []Allowance{
		{Site: "hyvet.test/panicfree.Graph.MustAdd", Reason: "documented Must helper"},
	}
	runWantTest(t, "testdata/panicfree", policy)
}

func TestNondeterminism(t *testing.T) {
	runWantTest(t, "testdata/nondeterminism", singleCheckPolicy("nondeterminism"))
}

func TestCtxFlow(t *testing.T) {
	runWantTest(t, "testdata/ctxflow", singleCheckPolicy("ctxflow"))
}

func TestAtomicMix(t *testing.T) {
	runWantTest(t, "testdata/atomicmix", singleCheckPolicy("atomicmix"))
}

func TestGoroutineLifetime(t *testing.T) {
	runWantTest(t, "testdata/goroutinelifetime", singleCheckPolicy("goroutinelifetime"))
}

func TestBoundedAlloc(t *testing.T) {
	runWantTest(t, "testdata/boundedalloc", singleCheckPolicy("boundedalloc"))
}

package analysis

import (
	"encoding/json"
	"testing"
)

// TestCacheKeyDeterministic: same inputs, same key; any build ID change
// (own or dependency) changes it.
func TestCacheKeyDeterministic(t *testing.T) {
	lp := listedPackage{ImportPath: "example.com/p", BuildID: "id-p", Deps: []string{"sync", "io"}}
	ids := map[string]string{"sync": "id-sync", "io": "id-io"}
	k1 := cacheKey("run", lp, ids)
	k2 := cacheKey("run", lp, ids)
	if k1 == "" || k1 != k2 {
		t.Fatalf("cacheKey not deterministic: %q vs %q", k1, k2)
	}
	ids["io"] = "id-io-2"
	if cacheKey("run", lp, ids) == k1 {
		t.Error("dependency build ID change did not change the key")
	}
	lp.BuildID = "id-p-2"
	ids["io"] = "id-io"
	if cacheKey("run", lp, ids) == k1 {
		t.Error("own build ID change did not change the key")
	}
}

// TestCacheKeyMissingBuildIDs: "unsafe" never has export data or a build ID
// and must not poison the key of every package whose dependency cone reaches
// it; any other missing build ID means the package state is unknown and must
// disable caching.
func TestCacheKeyMissingBuildIDs(t *testing.T) {
	lp := listedPackage{ImportPath: "example.com/p", BuildID: "id-p", Deps: []string{"unsafe", "sync"}}
	if cacheKey("run", lp, map[string]string{"unsafe": "", "sync": "id-sync"}) == "" {
		t.Error("unsafe's missing build ID disabled caching")
	}
	if cacheKey("run", lp, map[string]string{"unsafe": "", "sync": ""}) != "" {
		t.Error("a real dependency with no build ID did not disable caching")
	}
	lp.BuildID = ""
	if cacheKey("run", lp, map[string]string{"unsafe": "", "sync": "id-sync"}) != "" {
		t.Error("a package with no build ID of its own did not disable caching")
	}
}

// TestCacheStoreLoad round-trips one entry through the on-disk format and
// confirms mismatched keys and absent entries are misses.
func TestCacheStoreLoad(t *testing.T) {
	dir := t.TempDir()
	ent := &cacheEntry{
		Key:       "abc123",
		Findings:  []Finding{{Check: "panicfree", File: "f.go", Line: 3, Col: 2, Message: "panic in exported API"}},
		AllowUsed: []string{"panicfree:example.com/p.F"},
		Facts:     json.RawMessage(`{"ctxflow":{"example.com/p.F":{"ambient":"context.Background"}}}`),
	}
	cacheStore(dir, ent.Key, ent)
	got, ok := cacheLoad(dir, ent.Key)
	if !ok {
		t.Fatal("stored entry not loadable")
	}
	if len(got.Findings) != 1 || got.Findings[0] != ent.Findings[0] {
		t.Errorf("findings = %v, want %v", got.Findings, ent.Findings)
	}
	if len(got.AllowUsed) != 1 || got.AllowUsed[0] != ent.AllowUsed[0] {
		t.Errorf("allowUsed = %v, want %v", got.AllowUsed, ent.AllowUsed)
	}
	store := NewFactStore()
	if err := store.DecodePackage(got.Facts); err != nil {
		t.Fatalf("decoding replayed facts: %v", err)
	}
	if _, ok := store.get("ctxflow", "example.com/p.F"); !ok {
		t.Error("replayed facts lost the ctxflow entry")
	}
	if _, ok := cacheLoad(dir, "missing"); ok {
		t.Error("absent key reported a hit")
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces the deadline-threading contract of the served engine
// (docs/SERVICE.md): a request's context must flow from the HTTP spine
// through every blocking callee to the storage fan-outs, so the
// server-assigned budget actually cancels work. Four rules, over the call
// graph and cross-package facts:
//
//  1. (variant) A function holding a ctx must not call an in-module
//     function Foo when a ctx-variant FooCtx exists — calling the plain
//     variant silently detaches the callee from the request deadline.
//  2. (ambient) Scoped packages are request-path code: they must never
//     manufacture context.Background()/context.TODO(). A function that
//     needs a context accepts one.
//  3. (ambient, interprocedural) A function holding a ctx must not call an
//     in-module ctx-less callee that manufactures an ambient context
//     somewhere below it (the AmbientCtx fact) — the request deadline is
//     dropped on the floor one stack frame down.
//  4. (fan-out) A loop inside a ctx-holding function whose body does
//     blocking work — directly (channel ops, time.Sleep, sync waits, file
//     or network I/O) or through an in-module callee with the Blocking
//     fact — must observe ctx: check ctx.Err()/ctx.Done()/
//     faults.CheckCtx(ctx, ...) or pass ctx into the work. Unobserved
//     fan-out loops are exactly where expired requests keep burning the
//     engine.
var CtxFlow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "request contexts must thread into every blocking callee; no ambient contexts on request paths",
	Facts:    ctxFlowFacts,
	FactType: func() any { return new(CtxFact) },
	Run:      runCtxFlow,
}

// CtxFact summarizes a function for the interprocedural rules.
type CtxFact struct {
	// Ambient is non-empty when the function (transitively, through
	// ctx-less in-module calls) manufactures an ambient context; it names
	// the origin ("context.Background" or a callee symbol).
	Ambient string `json:"ambient,omitempty"`
	// Blocking is non-empty when the function can block (transitively); it
	// names the reason.
	Blocking string `json:"blocking,omitempty"`
}

// blockingPkgs are stdlib packages whose calls count as blocking work.
var blockingPkgs = map[string]bool{
	"net": true, "net/http": true, "os": true, "os/exec": true,
}

// blockingMethods are the method names that actually block on types from
// blockingPkgs (http.Client.Do, net.Listener.Accept, os.File.Read);
// everything else on those packages' types (http.Header.Set,
// url.Values.Encode) is pure data manipulation.
var blockingMethods = map[string]bool{
	"Do": true, "RoundTrip": true, "Serve": true, "ListenAndServe": true,
	"ListenAndServeTLS": true, "Shutdown": true, "Accept": true,
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Sync": true,
}

// ctxFlowFacts computes CtxFact for every function of the package, with a
// fixpoint over same-package calls; facts of imported packages are already
// in the store (dependency order).
func ctxFlowFacts(pass *Pass) {
	type fnInfo struct {
		fn      *types.Func
		ctxless bool
		sites   []CallSite
	}
	var fns []fnInfo
	funcDecls(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		node := pass.Graph.NodeFor(fn)
		info := fnInfo{fn: fn, ctxless: !sigHasCtx(sig)}
		if node != nil {
			info.sites = node.Out
		}
		// Direct reasons seed the fixpoint.
		fact := &CtxFact{Blocking: directBlockReason(pass.Info, fd.Body, true)}
		if info.ctxless {
			for _, site := range info.sites {
				if isAmbientCtxCall(site.Callee) {
					fact.Ambient = "context." + site.Callee.Name()
					break
				}
			}
		}
		if fact.Ambient != "" || fact.Blocking != "" {
			pass.ExportFact(fn, fact)
		}
		fns = append(fns, info)
	})
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			cur, _ := pass.Fact(info.fn)
			fact, _ := cur.(*CtxFact)
			if fact == nil {
				fact = &CtxFact{}
			}
			for _, site := range info.sites {
				callee := site.Callee
				if callee == nil || !sameModule(pass.Pkg, callee.Pkg()) {
					continue
				}
				cf, _ := pass.Fact(callee)
				calleeFact, _ := cf.(*CtxFact)
				if calleeFact == nil {
					continue
				}
				// Ambient taints only through ctx-less links: a ctx-bearing
				// frame re-anchors the chain (and is judged at its own site).
				if fact.Ambient == "" && info.ctxless && calleeFact.Ambient != "" && !sigHasCtxFn(callee) {
					fact.Ambient = FuncSymbol(callee)
					changed = true
				}
				// Blocking propagates through any synchronous call; a `go`
				// site does not block the caller.
				if fact.Blocking == "" && !site.Go && calleeFact.Blocking != "" {
					fact.Blocking = "calls " + FuncSymbol(callee)
					changed = true
				}
			}
			if fact.Ambient != "" || fact.Blocking != "" {
				pass.ExportFact(info.fn, fact)
			}
		}
	}
}

func sigHasCtxFn(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sigHasCtx(sig)
}

// isAmbientCtxCall reports whether fn is context.Background or context.TODO.
func isAmbientCtxCall(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

func runCtxFlow(pass *Pass) {
	funcDecls(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		node := pass.Graph.NodeFor(fn)
		if node == nil {
			return
		}
		// Rule 2: no ambient contexts anywhere in a scoped package.
		for _, site := range node.Out {
			if isAmbientCtxCall(site.Callee) {
				pass.Reportf(site.Pos, "context.%s() manufactured on a request path: accept and thread the caller's context instead", site.Callee.Name())
			}
		}
		ctxObj, ok := ctxParam(pass.Info, fd)
		if !ok {
			return
		}
		for _, site := range node.Out {
			callee := site.Callee
			if callee == nil || !sameModule(pass.Pkg, callee.Pkg()) || sigHasCtxFn(callee) {
				continue
			}
			// Rule 1: a ctx-variant exists and is being bypassed. The
			// variant's own body legitimately delegates to the base.
			if variant := ctxVariant(callee); variant != nil && fd.Name.Name != variant.Name() {
				pass.Reportf(site.Pos, "call to %s drops the request context: call %s with ctx so the deadline propagates", callee.Name(), variant.Name())
				continue
			}
			// Rule 3: the ctx-less callee manufactures its own context.
			if cf, ok := pass.Fact(callee); ok {
				if fact, _ := cf.(*CtxFact); fact != nil && fact.Ambient != "" {
					pass.Reportf(site.Pos, "call to %s drops the request context: it manufactures an ambient context (via %s)", callee.Name(), fact.Ambient)
				}
			}
		}
		checkCtxLoops(pass, fd, ctxObj)
	})
}

// ctxVariant finds the ctx-taking variant of fn: a sibling named
// <fn.Name()>Ctx — on the same named receiver type for methods, in the same
// package for functions — whose signature is ctx plus fn's parameters.
func ctxVariant(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	want := fn.Name() + "Ctx"
	if named := receiverNamed(fn); named != nil {
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want && isCtxVariantSig(m, sig) {
				return m
			}
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	if obj, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && isCtxVariantSig(obj, sig) {
		return obj
	}
	return nil
}

// isCtxVariantSig reports whether variant's signature is (ctx, base params...).
func isCtxVariantSig(variant *types.Func, base *types.Signature) bool {
	vsig, ok := variant.Type().(*types.Signature)
	return ok && vsig.Params().Len() == base.Params().Len()+1 &&
		vsig.Params().Len() > 0 && isContextType(vsig.Params().At(0).Type())
}

// checkCtxLoops applies rule 4 to every loop in the function body.
func checkCtxLoops(pass *Pass, fd *ast.FuncDecl, ctxObj *types.Var) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		reason := loopBlockReason(pass, body)
		if reason == "" {
			return true
		}
		if nodeMentionsObj(pass.Info, body, ctxObj) {
			return true
		}
		pass.Reportf(n.Pos(), "fan-out loop does blocking work (%s) without ever observing ctx: check ctx.Err()/faults.CheckCtx or pass ctx per item", reason)
		return true
	})
}

// loopBlockReason reports why a loop body blocks, or "". Function literals
// count: a loop that spawns blocking goroutines per item is the fan-out
// shape the rule exists for.
func loopBlockReason(pass *Pass, body *ast.BlockStmt) string {
	if r := directBlockReason(pass.Info, body, false); r != "" {
		return r
	}
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(pass.Info, call)
		if callee == nil || !sameModule(pass.Pkg, callee.Pkg()) {
			return true
		}
		if cf, ok := pass.Fact(callee); ok {
			if fact, _ := cf.(*CtxFact); fact != nil && fact.Blocking != "" {
				reason = callee.Name() + ": " + fact.Blocking
			}
		}
		return true
	})
	return reason
}

// directBlockReason scans a body for directly blocking constructs,
// optionally skipping nested function literals (facts describe what the
// function itself does; goroutine bodies block their own stack).
func directBlockReason(info *types.Info, body ast.Node, skipLits bool) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if skipLits && n != body {
				return false
			}
		case *ast.SendStmt:
			reason = "a channel send"
		case *ast.SelectStmt:
			reason = "a select"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reason = "a channel receive"
			}
		case *ast.CallExpr:
			if r := blockingCall(info, n); r != "" {
				reason = r
			}
		}
		return true
	})
	return reason
}

// blockingCall classifies one call as blocking: time.Sleep, sync waits and
// lock acquisitions, or anything in a blocking stdlib package.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	isMethod := false
	if sig, ok := fn.Type().(*types.Signature); ok {
		isMethod = sig.Recv() != nil
	}
	switch {
	case pkg == "time" && name == "Sleep":
		return "time.Sleep"
	case pkg == "sync" && (name == "Wait" || name == "Lock" || name == "RLock"):
		return "sync." + name
	case blockingPkgs[pkg] && (!isMethod || blockingMethods[name]):
		return pkg + "." + name
	}
	return ""
}

// nodeMentionsObj is mentionsObj over any AST node.
func nodeMentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

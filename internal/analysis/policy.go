package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Policy scopes each check to the packages whose invariants it enforces.
// It is loaded from a JSON file at the repo root (hyvet.policy.json) so the
// scoping decisions are reviewed like code. A check with no policy entry
// does not run: every analyzer's blast radius is an explicit, versioned
// decision.
type Policy struct {
	Checks map[string]*CheckPolicy `json:"checks"`
}

// CheckPolicy is one check's scope and settings.
type CheckPolicy struct {
	// Packages are import-path patterns the check runs on. A pattern is an
	// exact import path or a prefix ending in "/..." ("hygraph/..." matches
	// hygraph and everything under it).
	Packages []string `json:"packages"`
	// Exempt carves packages back out of Packages; every exemption states
	// its reason (e.g. bench is a timing package, so wall-clock reads are
	// its job, not a bug).
	Exempt []Exemption `json:"exempt,omitempty"`
	// Allow lists sites exempt from the check, for checks that support a
	// site allowlist (panicfree: "pkgpath.Func" or "pkgpath.Recv.Method").
	// Entries that match nothing are reported as stale.
	Allow []Allowance `json:"allow,omitempty"`
}

// Exemption removes a package pattern from a check's scope.
type Exemption struct {
	Package string `json:"package"`
	Reason  string `json:"reason"`
}

// Allowance permits one named site to violate a check.
type Allowance struct {
	Site   string `json:"site"`
	Reason string `json:"reason"`
}

// LoadPolicy reads and validates a policy file.
func LoadPolicy(path string) (*Policy, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hyvet: reading policy: %v", err)
	}
	return ParsePolicy(raw)
}

// ParsePolicy decodes and validates policy JSON. Unknown check names,
// exemptions or allowances without reasons, and empty package patterns are
// all hard errors: a policy that drifts from the analyzer suite must fail
// loudly, not silently stop scoping a check.
func ParsePolicy(raw []byte) (*Policy, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("hyvet: parsing policy: %v", err)
	}
	var checks []string
	for name := range p.Checks {
		checks = append(checks, name)
	}
	sort.Strings(checks)
	for _, name := range checks {
		cp := p.Checks[name]
		if !knownCheck(name) {
			return nil, fmt.Errorf("hyvet: policy names unknown check %q (known: %s)", name, strings.Join(AnalyzerNames(), ", "))
		}
		if cp == nil || len(cp.Packages) == 0 {
			return nil, fmt.Errorf("hyvet: policy for %s lists no packages", name)
		}
		for _, pat := range cp.Packages {
			if pat == "" {
				return nil, fmt.Errorf("hyvet: policy for %s has an empty package pattern", name)
			}
		}
		for _, ex := range cp.Exempt {
			if ex.Package == "" {
				return nil, fmt.Errorf("hyvet: policy for %s has an exemption without a package", name)
			}
			if strings.TrimSpace(ex.Reason) == "" {
				return nil, fmt.Errorf("hyvet: policy for %s exempts %s without a reason", name, ex.Package)
			}
		}
		for _, al := range cp.Allow {
			if al.Site == "" {
				return nil, fmt.Errorf("hyvet: policy for %s has an allowance without a site", name)
			}
			if strings.TrimSpace(al.Reason) == "" {
				return nil, fmt.Errorf("hyvet: policy for %s allows %s without a reason", name, al.Site)
			}
		}
	}
	return &p, nil
}

// matchPattern reports whether the import path matches one pattern.
func matchPattern(pattern, path string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return path == pattern
}

// appliesTo reports whether the check runs on the package path.
func (cp *CheckPolicy) appliesTo(path string) bool {
	in := false
	for _, pat := range cp.Packages {
		if matchPattern(pat, path) {
			in = true
			break
		}
	}
	if !in {
		return false
	}
	return !cp.exempts(path)
}

// exempts reports whether the path is explicitly carved out of the check's
// scope. Exemption is sanction: fact passes treat exempt packages as allowed
// users of the banned construct, not as silent propagators of it.
func (cp *CheckPolicy) exempts(path string) bool {
	for _, ex := range cp.Exempt {
		if matchPattern(ex.Package, path) {
			return true
		}
	}
	return false
}

// Allowed reports whether site is on the check's allowlist.
func (cp *CheckPolicy) Allowed(site string) (string, bool) {
	for _, al := range cp.Allow {
		if al.Site == site {
			return al.Site, true
		}
	}
	return "", false
}

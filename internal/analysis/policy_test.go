package analysis

import (
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy([]byte(`{
		"checks": {
			"maporderfold": {
				"packages": ["hygraph/..."],
				"exempt": [{"package": "hygraph/internal/bench", "reason": "timing package"}]
			},
			"panicfree": {
				"packages": ["hygraph/internal/tpg"],
				"allow": [{"site": "hygraph/internal/tpg.Graph.MustAddVertex", "reason": "documented Must helper"}]
			}
		}
	}`))
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	cp := p.Checks["maporderfold"]
	for path, want := range map[string]bool{
		"hygraph":                 true,
		"hygraph/internal/ts":     true,
		"hygraph/internal/bench":  false, // exempt
		"hygraphother":            false, // prefix must split on /
		"example.com/unrelated":   false,
		"hygraph/internal/bench2": true, // exemption is exact, not a prefix
	} {
		if got := cp.appliesTo(path); got != want {
			t.Errorf("maporderfold appliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	if _, ok := p.Checks["panicfree"].Allowed("hygraph/internal/tpg.Graph.MustAddVertex"); !ok {
		t.Errorf("allowlisted site not found")
	}
	if _, ok := p.Checks["panicfree"].Allowed("hygraph/internal/tpg.Graph.AddVertex"); ok {
		t.Errorf("non-allowlisted site reported as allowed")
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string
	}{
		{
			"unknown check",
			`{"checks": {"nosuchcheck": {"packages": ["hygraph/..."]}}}`,
			`unknown check "nosuchcheck"`,
		},
		{
			"no packages",
			`{"checks": {"panicfree": {}}}`,
			"lists no packages",
		},
		{
			"empty pattern",
			`{"checks": {"panicfree": {"packages": [""]}}}`,
			"empty package pattern",
		},
		{
			"exemption without reason",
			`{"checks": {"maporderfold": {"packages": ["hygraph/..."], "exempt": [{"package": "hygraph/internal/bench"}]}}}`,
			"without a reason",
		},
		{
			"allowance without reason",
			`{"checks": {"panicfree": {"packages": ["hygraph/..."], "allow": [{"site": "hygraph/x.F"}]}}}`,
			"without a reason",
		},
		{
			"unknown field",
			`{"checks": {"panicfree": {"packages": ["hygraph/..."], "extra": true}}}`,
			"unknown field",
		},
		{
			"malformed json",
			`{"checks": `,
			"parsing policy",
		},
	}
	for _, tc := range cases {
		_, err := ParsePolicy([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %q, want it to contain %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestSitePackage(t *testing.T) {
	cases := map[string]string{
		"hygraph/internal/tpg.Graph.MustAddVertex": "hygraph/internal/tpg",
		"hygraph/internal/tpg.Reset":               "hygraph/internal/tpg",
		"hyvet.test/panicfree.Graph.MustAdd":       "hyvet.test/panicfree",
		"main.F":                                   "main",
	}
	for site, want := range cases {
		if got := sitePackage(site); got != want {
			t.Errorf("sitePackage(%q) = %q, want %q", site, got, want)
		}
	}
}

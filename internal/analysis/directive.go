package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //hyvet:allow comment. A directive suppresses
// findings of its check on the directive's own line and on the line
// immediately following it (so it can ride at the end of the offending line
// or stand alone above it). Every directive must carry a reason; a
// directive that suppresses nothing is stale and is itself reported.
type Directive struct {
	File   string
	Line   int
	Check  string
	Reason string

	used bool
}

const directivePrefix = "//hyvet:allow"

// parseDirectives extracts the //hyvet:allow directives of one parsed file.
// Malformed directives (unknown check name, missing reason) are returned as
// errors carrying their position.
func parseDirectives(fset *token.FileSet, f *ast.File) ([]*Directive, []error) {
	var dirs []*Directive
	var errs []error
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			d, err := parseDirective(c.Text, pos)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			dirs = append(dirs, d)
		}
	}
	return dirs, errs
}

// parseDirective parses the text of one //hyvet:allow comment.
func parseDirective(text string, pos token.Position) (*Directive, error) {
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //hyvet:allowance — not ours.
		return nil, fmt.Errorf("%s:%d: malformed hyvet directive %q (want \"//hyvet:allow <check> <reason>\")", pos.Filename, pos.Line, text)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, fmt.Errorf("%s:%d: hyvet:allow directive missing check name", pos.Filename, pos.Line)
	}
	check := fields[0]
	if !knownCheck(check) {
		return nil, fmt.Errorf("%s:%d: hyvet:allow names unknown check %q (known: %s)", pos.Filename, pos.Line, check, strings.Join(AnalyzerNames(), ", "))
	}
	reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), check))
	if reason == "" {
		return nil, fmt.Errorf("%s:%d: hyvet:allow %s missing reason — every suppression must say why", pos.Filename, pos.Line, check)
	}
	return &Directive{File: pos.Filename, Line: pos.Line, Check: check, Reason: reason}, nil
}

// suppresses reports whether the directive covers the finding.
func (d *Directive) suppresses(f Finding) bool {
	return d.Check == f.Check && d.File == f.File &&
		(d.Line == f.Line || d.Line == f.Line-1)
}

// applyDirectives filters findings through the directives, marking each
// directive that fires. It returns the surviving findings plus one stale
// finding per directive that suppressed nothing.
func applyDirectives(findings []Finding, dirs []*Directive) []Finding {
	var out []Finding
	for _, f := range findings {
		suppressed := false
		for _, d := range dirs {
			if d.suppresses(f) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, d := range dirs {
		if !d.used {
			out = append(out, Finding{
				Check: "hyvet",
				File:  d.File,
				Line:  d.Line,
				Col:   1,
				Message: fmt.Sprintf("stale suppression: //hyvet:allow %s matches no finding — delete it (reason was: %s)",
					d.Check, d.Reason),
			})
		}
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderFold flags floating-point accumulation inside `for … range m`
// loops where m is a map: Go randomizes map iteration order, and float
// addition is not associative, so such folds give a different last-ulp
// result on every run. This is the exact bug class behind the polyglot
// Q5DistrictSums nondeterminism fixed in PR 2 — two sequential runs of the
// same query disagreed because the per-district sums were folded in map
// order. The fix is to fold over a deterministically ordered work list
// (sorted keys, or an insertion-ordered slice).
var MapOrderFold = &Analyzer{
	Name: "maporderfold",
	Doc:  "no floating-point accumulation in range-over-map loops (iteration order is random)",
	Run:  runMapOrderFold,
}

func runMapOrderFold(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
}

// checkMapRangeBody reports float accumulations in the body whose target
// outlives one iteration.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if indexedByRangeKey(pass, lhs, rs) {
					continue
				}
				if isFloat(pass.Info.TypeOf(lhs)) && targetOutlivesIteration(pass, lhs, rs.Body) {
					pass.Reportf(as.Pos(), "floating-point accumulation into %s inside range over a map: iteration order is random, so the fold is nondeterministic — fold over sorted keys or an ordered slice", exprString(lhs))
				}
			}
		case token.ASSIGN:
			// x = x + v (and -,*,/) spelled out.
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if !isFloat(pass.Info.TypeOf(lhs)) || !targetOutlivesIteration(pass, lhs, rs.Body) {
					continue
				}
				if indexedByRangeKey(pass, lhs, rs) {
					continue
				}
				if selfReferencingBinary(pass, as.Rhs[i], lhs) {
					pass.Reportf(as.Pos(), "floating-point accumulation into %s inside range over a map: iteration order is random, so the fold is nondeterministic — fold over sorted keys or an ordered slice", exprString(lhs))
				}
			}
		}
		return true
	})
}

// isFloat reports whether t's core type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// targetOutlivesIteration reports whether the assignment target persists
// across loop iterations: an identifier declared outside the loop body, or
// any indexed/selected location (whose base, conservatively, does).
func targetOutlivesIteration(pass *Pass, lhs ast.Expr, body *ast.BlockStmt) bool {
	switch e := lhs.(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(e)
		if obj == nil {
			return false
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	case *ast.IndexExpr:
		return targetOutlivesIteration(pass, e.X, body)
	case *ast.SelectorExpr:
		return targetOutlivesIteration(pass, e.X, body)
	case *ast.StarExpr:
		return targetOutlivesIteration(pass, e.X, body)
	case *ast.ParenExpr:
		return targetOutlivesIteration(pass, e.X, body)
	}
	return false
}

// indexedByRangeKey reports whether lhs writes through an index that is
// exactly the loop's key variable. A map range visits every key once, so
// such a write touches a distinct slot each iteration and no value from one
// iteration flows into another — the update is order-free even for floats
// (e.g. `for k := range m { m[k] /= 2 }`).
func indexedByRangeKey(pass *Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	ie, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok || keyIdent.Name == "_" {
		return false
	}
	idx, ok := ie.Index.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.ObjectOf(idx)
	return obj != nil && obj == pass.Info.ObjectOf(keyIdent)
}

// selfReferencingBinary reports whether rhs is an arithmetic expression
// mentioning the lhs target (x = x + v).
func selfReferencingBinary(pass *Pass, rhs, lhs ast.Expr) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	target := exprString(lhs)
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && exprString(e) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprString renders simple expressions (identifier/selector/index chains)
// for messages and structural comparison.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.BasicLit:
		return e.Value
	}
	return "?"
}

package analysis

import (
	"go/ast"
	"go/types"
)

// Nondeterminism bans wall-clock reads and the global math/rand source in
// packages declared deterministic by the policy (storage, ts, core, faults).
// Those packages back replayable WALs, bit-identical parallel merges and
// reproducible fault schedules; a time.Now or global rand call hidden in
// one of them makes a replay or a -race rerun diverge in ways no test can
// pin down. Explicitly seeded sources (rand.New(rand.NewSource(seed))) are
// fine — the ban is on *ambient* nondeterminism, not on randomness.
// Timing/bench packages read the clock as their job; the policy exempts
// them with a reason rather than widening the rule.
//
// The check is interprocedural through DetFacts: a module function outside
// any deterministic scope that (transitively) reads the ambient clock or
// global rand carries a fact, and a deterministic package calling it is
// reported at the call site — the laundering helper one package over is the
// exact hole a per-package ban leaves open. Exempt packages are sanctioned
// users, so they neither report nor export facts: calling into obs from
// storage stays legal.
var Nondeterminism = &Analyzer{
	Name:     "nondeterminism",
	Doc:      "no time.Now or global math/rand in deterministic packages; inject clocks and seeded sources",
	Facts:    nondeterminismFacts,
	FactType: func() any { return new(DetFact) },
	Run:      runNondeterminism,
}

// DetFact marks a function that transitively reaches ambient
// nondeterminism; Source names what it reaches ("time.Now" or the symbol of
// the callee it reaches it through).
type DetFact struct {
	Source string `json:"source"`
}

// wallClockFuncs are the time package functions that read the ambient clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededConstructors are the math/rand functions that build an explicit,
// seedable source instead of consuming the global one.
var seededConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// ambientSource classifies a call as an ambient-nondeterminism read,
// returning "time.Now"-style names, or "".
func ambientSource(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "" // methods (e.g. (*rand.Rand).Float64) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return ""
}

// nondeterminismFacts computes DetFact for the package's functions, with a
// same-package fixpoint; exempt packages are sanctioned and export nothing.
func nondeterminismFacts(pass *Pass) {
	if pass.Check.exempts(pass.Pkg.Path()) {
		return
	}
	type fnInfo struct {
		fn    *types.Func
		sites []CallSite
	}
	var fns []fnInfo
	funcDecls(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		src := ""
		inspectSkippingFuncLits(fd.Body, func(n ast.Node) {
			if src != "" {
				return
			}
			if call, ok := n.(*ast.CallExpr); ok {
				src = ambientSource(pass.Info, call)
			}
		})
		if src != "" {
			pass.ExportFact(fn, &DetFact{Source: src})
			return
		}
		if node := pass.Graph.NodeFor(fn); node != nil {
			fns = append(fns, fnInfo{fn: fn, sites: node.Out})
		}
	})
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if _, ok := pass.Fact(info.fn); ok {
				continue
			}
			for _, site := range info.sites {
				if site.Callee == nil || site.InLit || !sameModule(pass.Pkg, site.Callee.Pkg()) {
					continue
				}
				if f, ok := pass.Fact(site.Callee); ok {
					if df, _ := f.(*DetFact); df != nil {
						pass.ExportFact(info.fn, &DetFact{Source: FuncSymbol(site.Callee)})
						changed = true
						break
					}
				}
			}
		}
	}
}

func runNondeterminism(pass *Pass) {
	// Direct ambient reads in the scoped package.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Float64) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "call to time.%s in a deterministic package: inject the clock so replays and tests control it", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					pass.Reportf(call.Pos(), "call to global %s.%s in a deterministic package: use an injected, seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	// Indirect reads through module functions outside any deterministic
	// scope. Callees in scoped packages are skipped — their own package
	// reports the direct call; exempt callees export no facts at all.
	funcDecls(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		node := pass.Graph.NodeFor(fn)
		if node == nil {
			return
		}
		for _, site := range node.Out {
			callee := site.Callee
			if callee == nil || callee.Pkg() == nil || !sameModule(pass.Pkg, callee.Pkg()) {
				continue
			}
			if pass.Check.appliesTo(callee.Pkg().Path()) {
				continue
			}
			if f, ok := pass.Fact(callee); ok {
				if df, _ := f.(*DetFact); df != nil {
					pass.Reportf(site.Pos, "call to %s reaches %s from a deterministic package: inject the clock or seeded source at this boundary", callee.Name(), df.Source)
				}
			}
		}
	})
}

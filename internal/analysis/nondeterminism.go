package analysis

import (
	"go/ast"
	"go/types"
)

// Nondeterminism bans wall-clock reads and the global math/rand source in
// packages declared deterministic by the policy (storage, ts, core, faults).
// Those packages back replayable WALs, bit-identical parallel merges and
// reproducible fault schedules; a time.Now or global rand call hidden in
// one of them makes a replay or a -race rerun diverge in ways no test can
// pin down. Explicitly seeded sources (rand.New(rand.NewSource(seed))) are
// fine — the ban is on *ambient* nondeterminism, not on randomness.
// Timing/bench packages read the clock as their job; the policy exempts
// them with a reason rather than widening the rule.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "no time.Now or global math/rand in deterministic packages; inject clocks and seeded sources",
	Run:  runNondeterminism,
}

// wallClockFuncs are the time package functions that read the ambient clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededConstructors are the math/rand functions that build an explicit,
// seedable source instead of consuming the global one.
var seededConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runNondeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Float64) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "call to time.%s in a deterministic package: inject the clock so replays and tests control it", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					pass.Reportf(call.Pos(), "call to global %s.%s in a deterministic package: use an injected, seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.Info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.Info.ObjectOf(fun).(*types.Func)
		return fn
	}
	return nil
}

package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Run loads the patterns, runs every policied analyzer over the in-scope
// packages, applies //hyvet:allow suppressions, and reports stale
// suppressions and stale policy allowances as findings of the meta-check
// "hyvet". dir is the working directory for the go tool. The returned
// findings are sorted by position; an error means the run itself could not
// complete (load failure, malformed policy/directive), not that findings
// exist.
//
// Run never touches the incremental cache — the clean-tree test gate and
// other library callers always analyze fresh. cmd/hyvet opts into caching
// through RunWithOptions.
func Run(dir string, policy *Policy, patterns ...string) ([]Finding, error) {
	findings, _, err := RunWithOptions(dir, policy, RunOptions{}, patterns...)
	return findings, err
}

// RunOptions configures one driver run.
type RunOptions struct {
	// Cache enables the incremental result cache: packages whose build ID
	// (including all transitive dependency build IDs), policy, and analyzer
	// binary are unchanged replay their findings and facts from disk
	// instead of being re-analyzed.
	Cache bool
	// CacheDir overrides the cache location (default: hyvet-cache under the
	// OS temp dir).
	CacheDir string
}

// RunStats reports what one run did, for the CLI's wall-time log line.
type RunStats struct {
	Packages int           // packages analyzed or replayed
	Cached   int           // of those, replayed from the incremental cache
	Duration time.Duration // load + analysis wall time
}

// pkgResult is one package's per-run state, produced in parallel (phase A)
// and consumed in dependency order (phase B).
type pkgResult struct {
	lp       listedPackage
	pkg      *Package // type-checked source; nil when replayed from cache
	cached   bool
	findings []Finding // post-suppression findings (cache replay only)
	allow    []string  // allowlist entries used (cache replay only)
	facts    []byte    // EncodePackage output (cache replay only)
	key      string    // cache key ("" when caching is off or keyless)
	err      error
}

// RunWithOptions is Run with caching and stats. The two phases:
//
// Phase A (parallel): every matched package is either replayed from the
// cache or parsed + type-checked, workers bounded by GOMAXPROCS. Source
// type-checking only needs the *export data* of imports, never their
// source analysis, so phase A has no ordering constraints.
//
// Phase B (sequential, dependency order): per package — parse directives,
// extend the call graph, run every analyzer's Facts hook (all packages),
// run scoped analyzers, apply suppressions. Dependency order guarantees an
// analyzer visiting a package already holds the facts of everything it
// imports. Cached packages only replay their facts and findings; they
// contribute no call-graph nodes, which is why cross-package reasoning must
// flow through facts, never through graph edges.
func RunWithOptions(dir string, policy *Policy, opt RunOptions, patterns ...string) ([]Finding, *RunStats, error) {
	start := time.Now()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	matched, err := matchedPackages(listed)
	if err != nil {
		return nil, nil, err
	}
	order := topoListed(matched)

	var cacheDir, runHash string
	if opt.Cache {
		cacheDir = opt.CacheDir
		if cacheDir == "" {
			cacheDir = defaultCacheDir()
		}
		runHash = runFingerprint(policy)
	}
	buildIDs := map[string]string{}
	for _, lp := range listed {
		buildIDs[lp.ImportPath] = lp.BuildID
	}

	loader := newLoader(listed)
	results := make([]*pkgResult, len(order))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(order) {
		workers = len(order)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = loadOrReplay(loader, order[i], opt.Cache, cacheDir, runHash, buildIDs)
			}
		}()
	}
	for i := range order {
		next <- i
	}
	close(next)
	wg.Wait()

	st := &analyzeState{
		facts:     NewFactStore(),
		graph:     NewCallGraph(),
		analyzers: Analyzers(),
		policy:    policy,
	}
	var findings []Finding
	allowUsed := map[string]bool{}
	visited := make([]string, 0, len(order))
	cached := 0
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		visited = append(visited, r.lp.ImportPath)
		if r.cached {
			cached++
			if err := st.facts.DecodePackage(r.facts); err != nil {
				return nil, nil, err
			}
			findings = append(findings, r.findings...)
			for _, entry := range r.allow {
				allowUsed[entry] = true
			}
			continue
		}
		fs, used, err := analyzePackage(st, r.pkg)
		if err != nil {
			return nil, nil, err
		}
		findings = append(findings, fs...)
		for entry := range used {
			allowUsed[entry] = true
		}
		if r.key != "" {
			factBytes, err := st.facts.EncodePackage(r.pkg.Path)
			if err != nil {
				return nil, nil, err
			}
			cacheStore(cacheDir, r.key, &cacheEntry{
				Key:       r.key,
				Findings:  fs,
				AllowUsed: sortedKeys(used),
				Facts:     factBytes,
			})
		}
	}
	findings = append(findings, staleAllowances(policy, visited, allowUsed)...)
	sortFindings(findings)
	stats := &RunStats{Packages: len(order), Cached: cached, Duration: time.Since(start)}
	return findings, stats, nil
}

// loadOrReplay produces one package's phase-A result: a cache replay when
// possible, a fresh parse + type-check otherwise.
func loadOrReplay(loader *loader, lp listedPackage, useCache bool, cacheDir, runHash string, buildIDs map[string]string) *pkgResult {
	r := &pkgResult{lp: lp}
	if useCache {
		r.key = cacheKey(runHash, lp, buildIDs)
	}
	if r.key != "" {
		if ent, ok := cacheLoad(cacheDir, r.key); ok {
			r.cached = true
			r.findings = ent.Findings
			r.allow = ent.AllowUsed
			r.facts = ent.Facts
			return r
		}
	}
	r.pkg, r.err = loader.check(lp)
	return r
}

// runPackages runs the suite over pre-loaded packages — shared with tests
// that build packages without the go tool. Packages are processed in
// dependency order among themselves; extra analyzers participate fully
// (facts hooks included).
func runPackages(pkgs []*Package, policy *Policy, extra ...*Analyzer) ([]Finding, error) {
	st := &analyzeState{
		facts:     NewFactStore(),
		graph:     NewCallGraph(),
		analyzers: append(Analyzers(), extra...),
		policy:    policy,
	}
	var findings []Finding
	allowUsed := map[string]bool{}
	var visited []string
	for _, pkg := range topoPackages(pkgs) {
		visited = append(visited, pkg.Path)
		fs, used, err := analyzePackage(st, pkg)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
		for entry := range used {
			allowUsed[entry] = true
		}
	}
	findings = append(findings, staleAllowances(policy, visited, allowUsed)...)
	sortFindings(findings)
	return findings, nil
}

// analyzeState is the run-wide interprocedural state threaded through
// phase B.
type analyzeState struct {
	facts     *FactStore
	graph     *CallGraph
	analyzers []*Analyzer
	policy    *Policy
}

// analyzePackage runs one package through directives, the call-graph
// builder, every facts hook, and every in-scope analyzer. It returns the
// package's post-suppression findings and the allowlist entries that fired.
func analyzePackage(st *analyzeState, pkg *Package) ([]Finding, map[string]bool, error) {
	var dirs []*Directive
	for _, f := range pkg.Files {
		ds, errs := parseDirectives(pkg.Fset, f)
		if len(errs) > 0 {
			return nil, nil, errs[0]
		}
		dirs = append(dirs, ds...)
	}
	st.graph.addPackage(pkg)
	var findings []Finding
	used := map[string]bool{}
	// Facts hooks run over every package, in scope or not: a server handler
	// can only be checked against ttdb's summaries if ttdb exported them,
	// whether or not ttdb itself is in the check's package list.
	for _, a := range st.analyzers {
		if a.Facts == nil {
			continue
		}
		cp, ok := st.policy.Checks[a.Name]
		if !ok {
			cp = &CheckPolicy{}
		}
		a.Facts(newPass(pkg, a, cp, st, func(Finding) {}, func(string) {}))
	}
	for _, a := range st.analyzers {
		cp, ok := st.policy.Checks[a.Name]
		if !ok || !cp.appliesTo(pkg.Path) {
			continue
		}
		check := a.Name
		report := func(f Finding) {
			f.Check = check
			findings = append(findings, f)
		}
		allow := func(entry string) { used[check+":"+entry] = true }
		a.Run(newPass(pkg, a, cp, st, report, allow))
	}
	// Directives only ever match findings in their own file, so applying
	// them per package is equivalent to the old whole-run application — and
	// it makes the post-suppression result cacheable per package.
	findings = applyDirectives(findings, dirs)
	return findings, used, nil
}

// newPass assembles a Pass for one (package, analyzer) pair.
func newPass(pkg *Package, a *Analyzer, cp *CheckPolicy, st *analyzeState, report func(Finding), allowUsed func(string)) *Pass {
	return &Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		Info:      pkg.Info,
		Check:     cp,
		Graph:     st.graph,
		check:     a.Name,
		facts:     st.facts,
		report:    report,
		allowUsed: allowUsed,
	}
}

// topoPackages orders pre-loaded packages so every package follows the
// packages it imports (within the given set). Ties break on import path for
// determinism.
func topoPackages(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	order := make([]*Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.Path] != 0 {
			return
		}
		state[p.Path] = 1
		var deps []string
		for _, imp := range p.Pkg.Imports() {
			if byPath[imp.Path()] != nil {
				deps = append(deps, imp.Path())
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			visit(byPath[dep])
		}
		state[p.Path] = 2
		order = append(order, p)
	}
	for _, path := range paths {
		visit(byPath[path])
	}
	return order
}

// topoListed is topoPackages over `go list` metadata, used before any
// type-checking has happened.
func topoListed(matched []listedPackage) []listedPackage {
	byPath := map[string]*listedPackage{}
	for i := range matched {
		byPath[matched[i].ImportPath] = &matched[i]
	}
	paths := make([]string, 0, len(matched))
	for _, lp := range matched {
		paths = append(paths, lp.ImportPath)
	}
	sort.Strings(paths)
	order := make([]listedPackage, 0, len(matched))
	state := map[string]int{}
	var visit func(lp *listedPackage)
	visit = func(lp *listedPackage) {
		if state[lp.ImportPath] != 0 {
			return
		}
		state[lp.ImportPath] = 1
		deps := append([]string(nil), lp.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if d := byPath[dep]; d != nil {
				visit(d)
			}
		}
		state[lp.ImportPath] = 2
		order = append(order, *lp)
	}
	for _, path := range paths {
		visit(byPath[path])
	}
	return order
}

// sortFindings orders findings by position, then message.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// staleAllowances reports policy allowlist entries that matched no site in
// any package the check actually visited. An allowance for a package that
// was not part of this run's patterns is not stale — partial runs (e.g.
// `hyvet ./internal/tpg`) must not invalidate the rest of the policy.
func staleAllowances(policy *Policy, visited []string, used map[string]bool) []Finding {
	var names []string
	for name := range policy.Checks {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Finding
	for _, name := range names {
		cp := policy.Checks[name]
		for _, al := range cp.Allow {
			if used[name+":"+al.Site] {
				continue
			}
			if !allowanceVisited(cp, visited, al.Site) {
				continue
			}
			out = append(out, Finding{
				Check: "hyvet",
				File:  "hyvet.policy.json",
				Line:  1,
				Col:   1,
				Message: fmt.Sprintf("stale allowance: %s allowlists %q but no such site violates the check — delete it (reason was: %s)",
					name, al.Site, al.Reason),
			})
		}
	}
	return out
}

// allowanceVisited reports whether the allowlisted site's package was both
// part of this run and in the check's scope.
func allowanceVisited(cp *CheckPolicy, visited []string, site string) bool {
	for _, path := range visited {
		if sitePackage(site) == path && cp.appliesTo(path) {
			return true
		}
	}
	return false
}

// sitePackage extracts the import path from an allowlist site of the form
// "path/to/pkg.Func" or "path/to/pkg.Recv.Method".
func sitePackage(site string) string {
	// The package path is everything before the first dot after the last
	// slash (import paths may contain dots in earlier elements).
	slash := -1
	for i, r := range site {
		if r == '/' {
			slash = i
		}
	}
	for i := slash + 1; i < len(site); i++ {
		if site[i] == '.' {
			return site[:i]
		}
	}
	return site
}

package analysis

import (
	"fmt"
	"sort"
)

// Run loads the patterns, runs every policied analyzer over the in-scope
// packages, applies //hyvet:allow suppressions, and reports stale
// suppressions and stale policy allowances as findings of the meta-check
// "hyvet". dir is the working directory for the go tool. The returned
// findings are sorted by position; an error means the run itself could not
// complete (load failure, malformed policy/directive), not that findings
// exist.
func Run(dir string, policy *Policy, patterns ...string) ([]Finding, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return runPackages(pkgs, policy)
}

// runPackages is Run after loading — shared with tests that build packages
// without the go tool.
func runPackages(pkgs []*Package, policy *Policy, extra ...*Analyzer) ([]Finding, error) {
	analyzers := append(Analyzers(), extra...)
	var findings []Finding
	var dirs []*Directive
	allowUsed := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ds, errs := parseDirectives(pkg.Fset, f)
			if len(errs) > 0 {
				return nil, errs[0]
			}
			dirs = append(dirs, ds...)
		}
		for _, a := range analyzers {
			cp, ok := policy.Checks[a.Name]
			if !ok || !cp.appliesTo(pkg.Path) {
				continue
			}
			check := a.Name
			pass := &Pass{
				Fset:  pkg.Fset,
				Files: pkg.Files,
				Pkg:   pkg.Pkg,
				Info:  pkg.Info,
				Check: cp,
				report: func(f Finding) {
					f.Check = check
					findings = append(findings, f)
				},
				allowUsed: func(entry string) { allowUsed[check+":"+entry] = true },
			}
			a.Run(pass)
		}
	}
	findings = applyDirectives(findings, dirs)
	findings = append(findings, staleAllowances(policy, pkgs, allowUsed)...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// staleAllowances reports policy allowlist entries that matched no site in
// any package the check actually visited. An allowance for a package that
// was not part of this run's patterns is not stale — partial runs (e.g.
// `hyvet ./internal/tpg`) must not invalidate the rest of the policy.
func staleAllowances(policy *Policy, pkgs []*Package, used map[string]bool) []Finding {
	var names []string
	for name := range policy.Checks {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Finding
	for _, name := range names {
		cp := policy.Checks[name]
		for _, al := range cp.Allow {
			if used[name+":"+al.Site] {
				continue
			}
			if !allowanceVisited(cp, pkgs, al.Site) {
				continue
			}
			out = append(out, Finding{
				Check: "hyvet",
				File:  "hyvet.policy.json",
				Line:  1,
				Col:   1,
				Message: fmt.Sprintf("stale allowance: %s allowlists %q but no such site violates the check — delete it (reason was: %s)",
					name, al.Site, al.Reason),
			})
		}
	}
	return out
}

// allowanceVisited reports whether the allowlisted site's package was both
// loaded in this run and in the check's scope.
func allowanceVisited(cp *CheckPolicy, pkgs []*Package, site string) bool {
	for _, pkg := range pkgs {
		if sitePackage(site) == pkg.Path && cp.appliesTo(pkg.Path) {
			return true
		}
	}
	return false
}

// sitePackage extracts the import path from an allowlist site of the form
// "path/to/pkg.Func" or "path/to/pkg.Recv.Method".
func sitePackage(site string) string {
	// The package path is everything before the first dot after the last
	// slash (import paths may contain dots in earlier elements).
	slash := -1
	for i, r := range site {
		if r == '/' {
			slash = i
		}
	}
	for i := slash + 1; i < len(site); i++ {
		if site[i] == '.' {
			return site[:i]
		}
	}
	return site
}

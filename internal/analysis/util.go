package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared helpers for the interprocedural analyzers.

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParam returns the declared context.Context parameter object of fd, if
// it has one (by convention the first parameter, but any position counts).
func ctxParam(info *types.Info, fd *ast.FuncDecl) (*types.Var, bool) {
	if fd.Type.Params == nil {
		return nil, false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				return v, true
			}
		}
	}
	return nil, false
}

// sigHasCtx reports whether any parameter of the signature is a
// context.Context.
func sigHasCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// pathRoot returns the first element of an import path.
func pathRoot(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// sameModule reports whether two packages share an import-path root — the
// dependency-free stand-in for "same module" (stdlib roots never collide
// with module roots here: the module root is "hygraph", testdata's is
// "hyvet.test").
func sameModule(a, b *types.Package) bool {
	if a == nil || b == nil {
		return false
	}
	return pathRoot(a.Path()) == pathRoot(b.Path())
}

// mentionsObj reports whether the expression references obj.
func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// callArgsMention reports whether any argument of the call references obj.
func callArgsMention(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if mentionsObj(info, arg, obj) {
			return true
		}
	}
	return false
}

// funcDecls yields every function declaration with a body in the pass's
// files, with its definition object.
func funcDecls(pass *Pass, fn func(*ast.FuncDecl, *types.Func)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			def, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fn(fd, def)
		}
	}
}

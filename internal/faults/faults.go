// Package faults is a process-wide fault-injection registry. Storage and
// ingest code paths consult named fault points (Check) at the places where a
// production deployment can fail — a log append, a flush, the gap between the
// graph-store write and the time-series write — and tests arm those points
// (Enable) to deterministically kill a write mid-flight, inject transient
// errors for retry logic, or add latency.
//
// The registry is intentionally tiny and dependency-free so hot paths can
// call Check unconditionally: when nothing is armed the check is a single
// atomic load.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Spec describes how an armed fault point fires.
type Spec struct {
	// Err is the error injected when the point fires. When nil a generic
	// "faults: injected error at <point>" error is used.
	Err error
	// Transient wraps the injected error so IsTransient reports true,
	// modelling a retryable condition (lock timeout, throttled write).
	Transient bool
	// Nth makes the point start firing on the Nth visit (1-based).
	// Zero behaves like 1: fire from the first visit.
	Nth int
	// Count bounds how many times the point fires (0 = keep firing forever,
	// which models a store that goes down and stays down).
	Count int
	// P, when > 0, makes firing probabilistic with probability P per visit,
	// using Seed for a deterministic sequence. When Seed is zero the
	// sequence is derived from the package base seed (see Seed) and the
	// point name, so schedules stay reproducible without per-spec seeds.
	// Nth/Count still apply.
	P    float64
	Seed int64
	// Delay is slept on every visit (latency injection), independently of
	// whether an error fires.
	Delay time.Duration
}

// point is the armed state of one fault point.
type point struct {
	spec  Spec
	hits  int
	fired int
	rng   *rand.Rand
}

var (
	mu     sync.Mutex
	armed  = map[string]*point{}
	hits   = map[string]int{}
	active atomic.Int32 // number of armed points; fast-path gate

	// baseSeed feeds probabilistic points whose Spec leaves Seed zero; each
	// point mixes in a hash of its name so distinct points get distinct but
	// reproducible sequences. Guarded by mu, like every *rand.Rand here:
	// Check only draws from a point's rng while holding mu, so the registry
	// never touches the global math/rand source and is race-free.
	baseSeed int64 = 1
	newRand        = defaultRand
)

// defaultRand is the stock RNG constructor; see SetRandFactory.
func defaultRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Seed sets the base seed used by probabilistic points that do not carry an
// explicit Spec.Seed. Points armed afterwards derive their sequence from it;
// already-armed points keep theirs. The default base seed is 1.
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	baseSeed = seed
}

// SetRandFactory injects the constructor used to build each point's
// *rand.Rand (for tests that need a recorded or rigged sequence). A nil
// factory restores the default math/rand source. The returned generator is
// only ever used under the registry lock, so it need not be safe for
// concurrent use by itself.
func SetRandFactory(f func(seed int64) *rand.Rand) {
	mu.Lock()
	defer mu.Unlock()
	if f == nil {
		f = defaultRand
	}
	newRand = f
}

// pointSeed resolves the seed for a point: an explicit Spec.Seed wins,
// otherwise the base seed is mixed with an FNV-1a hash of the point name.
func pointSeed(name string, spec Spec) int64 {
	if spec.Seed != 0 {
		return spec.Seed
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return baseSeed ^ int64(h)
}

// TransientError marks an injected error as retryable.
type TransientError struct{ Cause error }

func (e *TransientError) Error() string { return "transient: " + e.Cause.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Cause }

// IsTransient reports whether any error in err's chain is a TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Enable arms a fault point. Re-arming an armed point resets its counters.
func Enable(name string, spec Spec) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := armed[name]; !ok {
		active.Add(1)
	}
	p := &point{spec: spec}
	if spec.P > 0 {
		p.rng = newRand(pointSeed(name, spec))
	}
	armed[name] = p
}

// Disable disarms a fault point. Hit counts survive until Reset.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := armed[name]; ok {
		delete(armed, name)
		active.Add(-1)
	}
}

// Reset disarms every point and clears all hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Add(-int32(len(armed)))
	armed = map[string]*point{}
	hits = map[string]int{}
}

// Hits returns how many times a point has been visited (armed or not, since
// the last Reset). Visits are only counted while at least one point is armed,
// keeping the disarmed fast path allocation- and lock-free.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	return hits[name]
}

// Active returns the names of the currently armed points.
func Active() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(armed))
	for name := range armed {
		out = append(out, name)
	}
	return out
}

// Check is called by instrumented code at a fault point. It returns the
// injected error when the point is armed and fires, after applying any
// configured latency. When nothing is armed anywhere it is a single atomic
// load.
func Check(name string) error {
	err, delay := check(name)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// CheckCtx is Check with context-aware latency injection: a configured
// Delay is waited out under the context, so a cancelled request or a
// draining server stops waiting early and gets the context's error instead
// of sleeping through the full injected latency. Server-side fault points
// (slow-handler injection under a per-request deadline) use this form; with
// no armed Delay it behaves exactly like Check. A nil context is allowed
// and degrades to a plain sleep.
func CheckCtx(ctx context.Context, name string) error {
	err, delay := check(name)
	if delay > 0 {
		if ctx == nil {
			time.Sleep(delay)
		} else {
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if err == nil && ctx != nil {
		err = ctx.Err()
	}
	return err
}

// check evaluates the fault point and returns the injected error plus any
// configured latency for the caller to apply outside the registry lock.
func check(name string) (error, time.Duration) {
	if active.Load() == 0 {
		return nil, 0
	}
	mu.Lock()
	hits[name]++
	p, ok := armed[name]
	if !ok {
		mu.Unlock()
		return nil, 0
	}
	p.hits++
	var delay time.Duration
	err := func() error {
		delay = p.spec.Delay
		nth := p.spec.Nth
		if nth <= 0 {
			nth = 1
		}
		if p.hits < nth {
			return nil
		}
		if p.spec.Count > 0 && p.fired >= p.spec.Count {
			return nil
		}
		if p.spec.P > 0 && p.rng.Float64() >= p.spec.P {
			return nil
		}
		p.fired++
		e := p.spec.Err
		if e == nil {
			e = fmt.Errorf("faults: injected error at %s", name)
		}
		if p.spec.Transient {
			return &TransientError{Cause: e}
		}
		return e
	}()
	mu.Unlock()
	return err, delay
}

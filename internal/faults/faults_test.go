package faults

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestUnarmedCheckIsNil(t *testing.T) {
	Reset()
	if err := Check("nope"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if Hits("nope") != 0 {
		t.Fatal("hits counted with empty registry")
	}
}

func TestErrorOnNth(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Spec{Nth: 3})
	for i := 1; i <= 2; i++ {
		if err := Check("p"); err != nil {
			t.Fatalf("fired on visit %d", i)
		}
	}
	if err := Check("p"); err == nil {
		t.Fatal("did not fire on 3rd visit")
	}
	// Count=0: keeps firing (store stays down).
	if err := Check("p"); err == nil {
		t.Fatal("stopped firing after Nth")
	}
	if Hits("p") != 4 {
		t.Fatalf("hits=%d", Hits("p"))
	}
}

func TestBoundedCountAndTransient(t *testing.T) {
	Reset()
	defer Reset()
	cause := errors.New("boom")
	Enable("q", Spec{Err: cause, Transient: true, Count: 2})
	for i := 0; i < 2; i++ {
		err := Check("q")
		if err == nil {
			t.Fatalf("visit %d did not fire", i)
		}
		if !IsTransient(err) || !errors.Is(err, cause) {
			t.Fatalf("error chain wrong: %v", err)
		}
	}
	if err := Check("q"); err != nil {
		t.Fatal("fired beyond Count")
	}
}

func TestProbabilisticDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	run := func() []bool {
		Enable("r", Spec{P: 0.5, Seed: 42})
		out := make([]bool, 20)
		for i := range out {
			out[i] = Check("r") != nil
		}
		return out
	}
	a, b := run(), run()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("probabilistic sequence not deterministic under same seed")
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times", fired, len(a))
	}
}

func TestBaseSeedReproducible(t *testing.T) {
	Reset()
	defer Reset()
	defer Seed(1)
	// Points without an explicit Spec.Seed derive their schedule from the
	// package base seed: same base seed → identical fire pattern.
	run := func(seed int64) []bool {
		Seed(seed)
		Enable("derived", Spec{P: 0.5})
		out := make([]bool, 40)
		for i := range out {
			out[i] = Check("derived") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same base seed produced different fault schedules")
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing the base seed did not change the schedule")
	}
}

func TestDistinctPointsDistinctSequences(t *testing.T) {
	Reset()
	defer Reset()
	// Two seedless points armed under the same base seed must not share a
	// sequence (the point name is mixed into the derived seed).
	Enable("left", Spec{P: 0.5})
	Enable("right", Spec{P: 0.5})
	same := true
	for i := 0; i < 40; i++ {
		if (Check("left") != nil) != (Check("right") != nil) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct points produced identical schedules")
	}
}

func TestInjectedRandFactory(t *testing.T) {
	Reset()
	defer Reset()
	defer SetRandFactory(nil)
	var gotSeed int64
	SetRandFactory(func(seed int64) *rand.Rand {
		gotSeed = seed
		// Rigged generator: Float64 always 0 → fires on every visit.
		return rand.New(rand.NewSource(1))
	})
	Enable("rig", Spec{P: 0.999999, Seed: 99})
	if gotSeed != 99 {
		t.Fatalf("factory saw seed %d, want 99", gotSeed)
	}
	SetRandFactory(nil)
	Enable("rig2", Spec{P: 0.5, Seed: 42})
	fired := false
	for i := 0; i < 20; i++ {
		if Check("rig2") != nil {
			fired = true
		}
	}
	if !fired {
		t.Fatal("default factory not restored")
	}
}

func TestProbabilisticConcurrent(t *testing.T) {
	Reset()
	defer Reset()
	// The per-point rng is only drawn under the registry lock; this exercises
	// that guarantee under -race and checks the visit count stays exact.
	Enable("par", Spec{P: 0.5, Seed: 7})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Check("par")
			}
		}()
	}
	wg.Wait()
	if got := Hits("par"); got != workers*per {
		t.Fatalf("hits=%d, want %d", got, workers*per)
	}
}

func TestLatencyInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable("slow", Spec{Delay: 5 * time.Millisecond, Nth: 1000000})
	t0 := time.Now()
	if err := Check("slow"); err != nil {
		t.Fatal("latency-only point returned an error")
	}
	if d := time.Since(t0); d < 4*time.Millisecond {
		t.Fatalf("no latency injected (%v)", d)
	}
}

func TestDisableAndActive(t *testing.T) {
	Reset()
	defer Reset()
	Enable("a", Spec{})
	Enable("b", Spec{})
	if got := len(Active()); got != 2 {
		t.Fatalf("active=%d", got)
	}
	Disable("a")
	if err := Check("a"); err != nil {
		t.Fatal("disabled point fired")
	}
	if err := Check("b"); err == nil {
		t.Fatal("armed point silent")
	}
	Reset()
	if len(Active()) != 0 || Hits("b") != 0 {
		t.Fatal("reset incomplete")
	}
}

package faults

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedCheckIsNil(t *testing.T) {
	Reset()
	if err := Check("nope"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if Hits("nope") != 0 {
		t.Fatal("hits counted with empty registry")
	}
}

func TestErrorOnNth(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Spec{Nth: 3})
	for i := 1; i <= 2; i++ {
		if err := Check("p"); err != nil {
			t.Fatalf("fired on visit %d", i)
		}
	}
	if err := Check("p"); err == nil {
		t.Fatal("did not fire on 3rd visit")
	}
	// Count=0: keeps firing (store stays down).
	if err := Check("p"); err == nil {
		t.Fatal("stopped firing after Nth")
	}
	if Hits("p") != 4 {
		t.Fatalf("hits=%d", Hits("p"))
	}
}

func TestBoundedCountAndTransient(t *testing.T) {
	Reset()
	defer Reset()
	cause := errors.New("boom")
	Enable("q", Spec{Err: cause, Transient: true, Count: 2})
	for i := 0; i < 2; i++ {
		err := Check("q")
		if err == nil {
			t.Fatalf("visit %d did not fire", i)
		}
		if !IsTransient(err) || !errors.Is(err, cause) {
			t.Fatalf("error chain wrong: %v", err)
		}
	}
	if err := Check("q"); err != nil {
		t.Fatal("fired beyond Count")
	}
}

func TestProbabilisticDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	run := func() []bool {
		Enable("r", Spec{P: 0.5, Seed: 42})
		out := make([]bool, 20)
		for i := range out {
			out[i] = Check("r") != nil
		}
		return out
	}
	a, b := run(), run()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("probabilistic sequence not deterministic under same seed")
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times", fired, len(a))
	}
}

func TestLatencyInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable("slow", Spec{Delay: 5 * time.Millisecond, Nth: 1000000})
	t0 := time.Now()
	if err := Check("slow"); err != nil {
		t.Fatal("latency-only point returned an error")
	}
	if d := time.Since(t0); d < 4*time.Millisecond {
		t.Fatalf("no latency injected (%v)", d)
	}
}

func TestDisableAndActive(t *testing.T) {
	Reset()
	defer Reset()
	Enable("a", Spec{})
	Enable("b", Spec{})
	if got := len(Active()); got != 2 {
		t.Fatalf("active=%d", got)
	}
	Disable("a")
	if err := Check("a"); err != nil {
		t.Fatal("disabled point fired")
	}
	if err := Check("b"); err == nil {
		t.Fatal("armed point silent")
	}
	Reset()
	if len(Active()) != 0 || Hits("b") != 0 {
		t.Fatal("reset incomplete")
	}
}

package embed

import (
	"math"
	"testing"

	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

// twoCliques builds two k-cliques joined by one bridge.
func twoCliques(k int) (*lpg.Graph, []lpg.VertexID, []lpg.VertexID) {
	g := lpg.NewGraph()
	mk := func() []lpg.VertexID {
		ids := make([]lpg.VertexID, k)
		for i := range ids {
			ids[i] = g.AddVertex("V")
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(ids[i], ids[j], "e")
			}
		}
		return ids
	}
	a := mk()
	b := mk()
	g.AddEdge(a[0], b[0], "bridge")
	return g, a, b
}

// meanIntraInterSim returns mean cosine within group a vs across groups.
func meanIntraInterSim(m *Matrix, idx map[lpg.VertexID]int, a, b []lpg.VertexID) (intra, inter float64) {
	var ni, nx int
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			intra += CosineSim(m.Row(idx[a[i]]), m.Row(idx[a[j]]))
			ni++
		}
	}
	for _, x := range a {
		for _, y := range b {
			inter += CosineSim(m.Row(idx[x]), m.Row(idx[y]))
			nx++
		}
	}
	return intra / float64(ni), inter / float64(nx)
}

func TestFastRPSeparatesCommunities(t *testing.T) {
	g, a, b := twoCliques(8)
	m, idx := FastRP(g, DefaultFastRP())
	if m.Rows != 16 || m.Cols != 32 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	intra, inter := meanIntraInterSim(m, idx, a, b)
	if intra <= inter {
		t.Fatalf("intra %v <= inter %v", intra, inter)
	}
}

func TestFastRPDeterministic(t *testing.T) {
	g, _, _ := twoCliques(5)
	m1, _ := FastRP(g, DefaultFastRP())
	m2, _ := FastRP(g, DefaultFastRP())
	for i := range m1.Data {
		if m1.Data[i] != m2.Data[i] {
			t.Fatal("same seed produced different embeddings")
		}
	}
	cfg := DefaultFastRP()
	cfg.Seed = 99
	m3, _ := FastRP(g, cfg)
	same := true
	for i := range m1.Data {
		if m1.Data[i] != m3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical embeddings")
	}
}

func TestFastRPNormalization(t *testing.T) {
	g, _, _ := twoCliques(4)
	m, _ := FastRP(g, DefaultFastRP())
	for i := 0; i < m.Rows; i++ {
		var norm float64
		for _, v := range m.Row(i) {
			norm += v * v
		}
		if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
			t.Fatalf("row %d norm %v", i, math.Sqrt(norm))
		}
	}
}

func TestRandomWalkEmbeddingSeparates(t *testing.T) {
	g, a, b := twoCliques(6)
	m, idx := RandomWalkEmbedding(g, DefaultWalks())
	intra, inter := meanIntraInterSim(m, idx, a, b)
	if intra <= inter {
		t.Fatalf("walk embedding: intra %v <= inter %v", intra, inter)
	}
}

func TestPCARecoveredVariance(t *testing.T) {
	// Points on a line in 3D: first component captures everything.
	n := 50
	m := NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		tt := float64(i)
		m.Set(i, 0, 2*tt)
		m.Set(i, 1, -tt)
		m.Set(i, 2, 0.5*tt)
	}
	p := PCA(m, 2, 1)
	if p.Rows != n || p.Cols != 2 {
		t.Fatalf("shape %dx%d", p.Rows, p.Cols)
	}
	// First component scores vary; second is ~0 (all variance in one dim).
	var v1, v2 float64
	mean1, mean2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		mean1 += p.At(i, 0)
		mean2 += p.At(i, 1)
	}
	mean1 /= float64(n)
	mean2 /= float64(n)
	for i := 0; i < n; i++ {
		v1 += sqd(p.At(i, 0) - mean1)
		v2 += sqd(p.At(i, 1) - mean2)
	}
	if v2 > v1*1e-6 {
		t.Fatalf("second component variance %v vs first %v", v2, v1)
	}
	// Scores along the first component are monotone in i (up to sign).
	inc, dec := true, true
	for i := 1; i < n; i++ {
		if p.At(i, 0) < p.At(i-1, 0) {
			inc = false
		}
		if p.At(i, 0) > p.At(i-1, 0) {
			dec = false
		}
	}
	if !inc && !dec {
		t.Fatal("first component not monotone along the line")
	}
}

func sqd(x float64) float64 { return x * x }

func TestSeriesFeaturesAndConcat(t *testing.T) {
	s1 := ts.FromSamples("a", 0, 1, []float64{1, 2, 3, 4})
	s2 := ts.FromSamples("b", 0, 1, []float64{4, 4, 4, 4})
	f := SeriesFeatures([]*ts.Series{s1, s2})
	if f.Rows != 2 || f.Cols != ts.NumFeatures {
		t.Fatalf("shape %dx%d", f.Rows, f.Cols)
	}
	other := NewMatrix(2, 3)
	c := Concat(f, other)
	if c.Cols != ts.NumFeatures+3 {
		t.Fatalf("concat cols=%d", c.Cols)
	}
	if c.At(0, 0) != f.At(0, 0) {
		t.Fatal("concat contents")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("row-mismatched concat must panic")
		}
	}()
	Concat(f, NewMatrix(3, 1))
}

func TestStandardizeColumns(t *testing.T) {
	m := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		m.Set(i, 0, float64(i)*100)
		m.Set(i, 1, 7) // constant
	}
	StandardizeColumns(m)
	var mean, variance float64
	for i := 0; i < 4; i++ {
		mean += m.At(i, 0)
	}
	mean /= 4
	for i := 0; i < 4; i++ {
		variance += sqd(m.At(i, 0) - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
		t.Fatalf("standardized mean=%v var=%v", mean, variance)
	}
	for i := 0; i < 4; i++ {
		if m.At(i, 1) != 0 {
			t.Fatal("constant column should become zeros")
		}
	}
}

func TestCosineSim(t *testing.T) {
	if got := CosineSim([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel=%v", got)
	}
	if got := CosineSim([]float64{1, 0}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Fatalf("orthogonal=%v", got)
	}
	if got := CosineSim([]float64{1, 0}, []float64{-1, 0}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("antiparallel=%v", got)
	}
	if got := CosineSim([]float64{0, 0}, []float64{1, 0}); got != 0 {
		t.Fatalf("zero vector=%v", got)
	}
}

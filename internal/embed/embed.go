// Package embed implements the embedding methods the paper's roadmap names
// for HyGraph-and-AI (Table 2, row E): FastRP-style structural embeddings
// via very sparse random projections over adjacency powers, random-walk
// co-occurrence embeddings (node2vec-style), PCA via power iteration for
// time-series dimensionality reduction, and hybrid embeddings concatenating
// structural and temporal features.
package embed

import (
	"math"
	"math/rand"

	"hygraph/internal/lpg"
	"hygraph/internal/ts"
)

// Matrix is a dense row-major matrix: one row per item.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// FastRPConfig configures FastRP.
type FastRPConfig struct {
	Dim         int       // embedding dimension
	Weights     []float64 // weight per adjacency power (len = #iterations)
	Seed        int64
	NormalizeL2 bool // L2-normalize the final rows
}

// DefaultFastRP is a reasonable small-graph configuration.
func DefaultFastRP() FastRPConfig {
	return FastRPConfig{Dim: 32, Weights: []float64{0.1, 0.5, 1.0}, Seed: 1, NormalizeL2: true}
}

// FastRP computes structural embeddings for every live vertex: a very
// sparse random projection matrix seeds each vertex, then adjacency
// averaging mixes neighborhoods; weighted sums of the powers form the
// embedding (Chen et al., "Fast and accurate network embeddings via very
// sparse random projection", which the paper cites as FastRP).
// The returned map is vertex -> row index into the matrix.
func FastRP(g *lpg.Graph, cfg FastRPConfig) (*Matrix, map[lpg.VertexID]int) {
	ids := g.VertexIDs()
	index := make(map[lpg.VertexID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	n := len(ids)
	if cfg.Dim <= 0 {
		cfg.Dim = 32
	}
	if len(cfg.Weights) == 0 {
		cfg.Weights = []float64{1}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Very sparse random projection: entries in {-sqrt(s), 0, +sqrt(s)} with
	// s = 3 (prob 1/6, 2/3, 1/6).
	cur := NewMatrix(n, cfg.Dim)
	root := math.Sqrt(3)
	for i := 0; i < n; i++ {
		row := cur.Row(i)
		for j := range row {
			switch rng.Intn(6) {
			case 0:
				row[j] = root
			case 1:
				row[j] = -root
			}
		}
	}
	out := NewMatrix(n, cfg.Dim)
	for _, w := range cfg.Weights {
		next := NewMatrix(n, cfg.Dim)
		// next = normalized-adjacency × cur (mean over neighbors).
		for i, id := range ids {
			nbrs := g.Neighbors(id)
			if len(nbrs) == 0 {
				continue
			}
			dst := next.Row(i)
			for _, nb := range nbrs {
				src := cur.Row(index[nb])
				for j := range dst {
					dst[j] += src[j]
				}
			}
			inv := 1 / float64(len(nbrs))
			for j := range dst {
				dst[j] *= inv
			}
		}
		for i := 0; i < n*cfg.Dim; i++ {
			out.Data[i] += w * next.Data[i]
		}
		cur = next
	}
	if cfg.NormalizeL2 {
		for i := 0; i < n; i++ {
			l2NormalizeRow(out.Row(i))
		}
	}
	return out, index
}

func l2NormalizeRow(row []float64) {
	var norm float64
	for _, v := range row {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for j := range row {
		row[j] /= norm
	}
}

// WalkConfig configures random-walk co-occurrence embeddings.
type WalkConfig struct {
	Dim    int
	Walks  int // walks per vertex
	Length int // steps per walk
	Window int // co-occurrence window
	Seed   int64
}

// DefaultWalks is a small-graph configuration.
func DefaultWalks() WalkConfig {
	return WalkConfig{Dim: 16, Walks: 10, Length: 20, Window: 4, Seed: 1}
}

// RandomWalkEmbedding runs uniform random walks, builds the PPMI
// co-occurrence matrix, and reduces it to cfg.Dim dimensions with PCA —
// a deterministic, dependency-free stand-in for node2vec/DeepWalk that
// preserves the "nearby vertices embed similarly" property.
func RandomWalkEmbedding(g *lpg.Graph, cfg WalkConfig) (*Matrix, map[lpg.VertexID]int) {
	ids := g.VertexIDs()
	index := make(map[lpg.VertexID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	n := len(ids)
	rng := rand.New(rand.NewSource(cfg.Seed))
	cooc := NewMatrix(n, n)
	for _, start := range ids {
		for w := 0; w < cfg.Walks; w++ {
			walk := []int{index[start]}
			at := start
			for step := 1; step < cfg.Length; step++ {
				nbrs := g.Neighbors(at)
				if len(nbrs) == 0 {
					break
				}
				at = nbrs[rng.Intn(len(nbrs))]
				walk = append(walk, index[at])
			}
			for i, a := range walk {
				for j := i + 1; j <= i+cfg.Window && j < len(walk); j++ {
					b := walk[j]
					cooc.Data[a*n+b]++
					cooc.Data[b*n+a]++
				}
			}
		}
	}
	// PPMI transform.
	var total float64
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rowSum[i] += cooc.At(i, j)
		}
		total += rowSum[i]
	}
	if total > 0 {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c := cooc.At(i, j)
				if c == 0 || rowSum[i] == 0 || rowSum[j] == 0 {
					continue
				}
				pmi := math.Log(c * total / (rowSum[i] * rowSum[j]))
				if pmi < 0 {
					pmi = 0
				}
				cooc.Set(i, j, pmi)
			}
		}
	}
	dim := cfg.Dim
	if dim > n {
		dim = n
	}
	emb := PCA(cooc, dim, cfg.Seed)
	return emb, index
}

// PCA projects the rows of m onto its top-k principal components, computed
// with power iteration and deflation over the covariance matrix. Rows of
// the result are the k-dimensional scores. This is the paper's proposed
// time-series embedding primitive (PCA-based similarity, Yang & Shahabi).
func PCA(m *Matrix, k int, seed int64) *Matrix {
	n, d := m.Rows, m.Cols
	if k > d {
		k = d
	}
	// Center columns.
	centered := NewMatrix(n, d)
	means := make([]float64, d)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			means[j] += m.At(i, j)
		}
		means[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			centered.Set(i, j, m.At(i, j)-means[j])
		}
	}
	rng := rand.New(rand.NewSource(seed))
	comps := make([][]float64, 0, k)
	work := centered
	for c := 0; c < k; c++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		l2NormalizeRow(v)
		for iter := 0; iter < 100; iter++ {
			// w = Xᵀ (X v): covariance-vector product without forming XᵀX.
			xv := make([]float64, n)
			for i := 0; i < n; i++ {
				row := work.Row(i)
				var s float64
				for j := 0; j < d; j++ {
					s += row[j] * v[j]
				}
				xv[i] = s
			}
			w := make([]float64, d)
			for i := 0; i < n; i++ {
				row := work.Row(i)
				for j := 0; j < d; j++ {
					w[j] += row[j] * xv[i]
				}
			}
			prev := append([]float64(nil), v...)
			copy(v, w)
			// Re-orthogonalize against found components: deflation leaves
			// floating-point residue along them that power iteration would
			// otherwise amplify back.
			for _, c := range comps {
				var dot float64
				for j := range v {
					dot += v[j] * c[j]
				}
				for j := range v {
					v[j] -= dot * c[j]
				}
			}
			l2NormalizeRow(v)
			var diff float64
			for j := range v {
				diff += math.Abs(v[j] - prev[j])
			}
			if diff < 1e-9 {
				break
			}
		}
		comps = append(comps, v)
		// Deflate: remove the component from the data.
		for i := 0; i < n; i++ {
			row := work.Row(i)
			var s float64
			for j := 0; j < d; j++ {
				s += row[j] * v[j]
			}
			for j := 0; j < d; j++ {
				row[j] -= s * v[j]
			}
		}
	}
	out := NewMatrix(n, k)
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		_ = row
		for c, v := range comps {
			var s float64
			orig := m.Row(i)
			for j := 0; j < d; j++ {
				s += (orig[j] - means[j]) * v[j]
			}
			out.Set(i, c, s)
		}
	}
	return out
}

// SeriesFeatures builds the feature matrix of ts.Features vectors, one row
// per series.
func SeriesFeatures(series []*ts.Series) *Matrix {
	m := NewMatrix(len(series), ts.NumFeatures)
	for i, s := range series {
		copy(m.Row(i), s.Features())
	}
	return m
}

// Concat joins two matrices column-wise; both must have equal row counts.
// This is the hybrid embedding: structural columns ++ temporal columns.
func Concat(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("embed: Concat row mismatch")
	}
	out := NewMatrix(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// StandardizeColumns scales every column to zero mean and unit variance in
// place (columns with zero variance become all zeros). Do this before
// concatenating feature families with different scales.
func StandardizeColumns(m *Matrix) {
	for j := 0; j < m.Cols; j++ {
		var mean float64
		for i := 0; i < m.Rows; i++ {
			mean += m.At(i, j)
		}
		mean /= float64(m.Rows)
		var variance float64
		for i := 0; i < m.Rows; i++ {
			d := m.At(i, j) - mean
			variance += d * d
		}
		variance /= float64(m.Rows)
		sd := math.Sqrt(variance)
		for i := 0; i < m.Rows; i++ {
			if sd == 0 {
				m.Set(i, j, 0)
			} else {
				m.Set(i, j, (m.At(i, j)-mean)/sd)
			}
		}
	}
}

// CosineSim returns the cosine similarity of two equal-length vectors.
func CosineSim(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

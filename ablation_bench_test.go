// Ablation benchmarks for the design choices behind the reproduction:
// hypertable chunk width, property-chain length (the mechanism behind
// Table 1), embedding dimensionality, vector-index cell counts, and the
// cost split between HyQL parsing and execution.
package hygraph_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/embed"
	"hygraph/internal/hyql"
	"hygraph/internal/index"
	"hygraph/internal/storage/graphstore"
	"hygraph/internal/storage/tsstore"
	"hygraph/internal/ts"
)

// BenchmarkAblation_ChunkWidth sweeps the hypertable chunk width: too small
// multiplies per-chunk overhead, too large defeats summary pushdown for
// partial ranges. The aggregate query covers ~1/3 of a 90-day series.
func BenchmarkAblation_ChunkWidth(b *testing.B) {
	src := ts.New("m")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 90*24; i++ {
		src.MustAppend(ts.Time(i)*ts.Hour, rng.NormFloat64())
	}
	key := tsstore.SeriesKey{Entity: 1, Metric: "m"}
	for _, width := range []ts.Time{6 * ts.Hour, ts.Day, ts.Week, 30 * ts.Day} {
		db := tsstore.New(width)
		db.InsertSeries(key, src)
		b.Run(fmt.Sprintf("width=%dh", width/ts.Hour), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.Aggregate(key, 20*ts.Day, 50*ts.Day)
			}
		})
	}
}

// BenchmarkAblation_ChainLength shows the all-in-graph pathology directly:
// reading ONE property from a node whose chain holds n time-series points
// is O(n). This is the per-access cost the paper's Q4–Q8 multiply by the
// station count.
func BenchmarkAblation_ChainLength(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		db := graphstore.New()
		node := db.CreateNode("Station")
		db.SetNodeProp(node, "district", graphstore.StrVal("north"))
		for i := 0; i < n; i++ {
			db.SetNodeProp(node, fmt.Sprintf("availability@%d", i), graphstore.FloatVal(1))
		}
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// "district" was written first, so it sits at the END of the
				// prepend-ordered chain: worst-case but realistic (metadata
				// written before the series).
				if _, ok := db.NodeProp(node, "district"); !ok {
					b.Fatal("lost property")
				}
			}
		})
	}
}

// BenchmarkAblation_FastRPDim sweeps embedding dimensionality.
func BenchmarkAblation_FastRPDim(b *testing.B) {
	bikeHGFixture()
	view := bikeHG.SnapshotAt(7 * ts.Day)
	for _, dim := range []int{8, 32, 128} {
		cfg := embed.FastRPConfig{Dim: dim, Weights: []float64{0.5, 1}, Seed: 1, NormalizeL2: true}
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				embed.FastRP(view.Graph, cfg)
			}
		})
	}
}

// BenchmarkAblation_VectorIndexCells sweeps the IVF cell count: more cells
// cut probe cost but lower recall at fixed nProbe. Recall is reported as a
// custom metric.
func BenchmarkAblation_VectorIndexCells(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, d := 2000, 24
	vecs := make([][]float64, n)
	ids := make([]int64, n)
	for i := range vecs {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
		ids[i] = int64(i)
	}
	for _, cells := range []int{1, 8, 32, 128} {
		ix, err := index.BuildVectorIndex(vecs, ids, cells, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			b.ReportMetric(ix.Recall(10, 2, 20), "recall@2probes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Nearest(vecs[i%n], 10, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SegmentBudget sweeps the segmentation budget.
func BenchmarkAblation_SegmentBudget(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	s := ts.New("s")
	for i := 0; i < 2000; i++ {
		level := float64((i / 400) * 10)
		s.MustAppend(ts.Time(i), level+rng.NormFloat64())
	}
	for _, k := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("maxSegments=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Segmentize(k, 0.001)
			}
		})
	}
}

// BenchmarkAblation_HyQLParseVsExec splits query cost into parsing and
// execution, justifying the prepared-query API (Engine.Exec).
func BenchmarkAblation_HyQLParseVsExec(b *testing.B) {
	fraudFixture()
	const q = `
		MATCH (u:User)-[:USES]->(c:CreditCard)
		WHERE ts.min(c) < 0.25 * ts.mean(c)
		RETURN u.name`
	mid := ts.Time(fraudData.Config.Hours/2) * ts.Hour
	b.Run("Parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hyql.Parse(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Exec", func(b *testing.B) {
		parsed, err := hyql.Parse(q)
		if err != nil {
			b.Fatal(err)
		}
		eng := hyql.NewEngine(fraudData.H)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Exec(parsed, mid); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Persistence measures both stores' snapshot round-trips.
func BenchmarkAblation_Persistence(b *testing.B) {
	gdb := graphstore.New()
	for i := 0; i < 500; i++ {
		n := gdb.CreateNode("N")
		gdb.SetNodeProp(n, "x", graphstore.IntVal(int64(i)))
		if i > 0 {
			gdb.CreateRel(n-1, n, "next")
		}
	}
	tdb := tsstore.New(ts.Day)
	for i := 0; i < 50000; i++ {
		tdb.Insert(tsstore.SeriesKey{Entity: uint32(i % 50), Metric: "m"},
			ts.Time(i)*ts.Minute, float64(i))
	}
	b.Run("GraphstoreSave", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gdb.Save(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GraphstoreLoad", func(b *testing.B) {
		var buf bytes.Buffer
		gdb.Save(&buf)
		raw := buf.Bytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := graphstore.Load(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TsstoreSave", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := tdb.Save(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TsstoreLoad", func(b *testing.B) {
		var buf bytes.Buffer
		tdb.Save(&buf)
		raw := buf.Bytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tsstore.Load(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_StreamIngest measures streaming append throughput (R3).
func BenchmarkAblation_StreamIngest(b *testing.B) {
	// Measured via the ts layer the stream writes through.
	s := ts.New("hot")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(ts.Time(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ParallelCorrelation sweeps worker counts for the O(n²)
// correlation-edge operator (R4 scaling).
func BenchmarkAblation_ParallelCorrelation(b *testing.B) {
	build := func() *core.HyGraph {
		h, _ := dataset.GenerateBike(dataset.BikeConfig{Stations: 40, Districts: 4,
			Days: 14, StepMinutes: 60, TripsPerSt: 2, Seed: 7}).ToHyGraph()
		return h
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := build()
				b.StartTimer()
				if workers == 1 {
					if _, err := h.CorrelationEdges(0.8, ts.Hour, 24); err != nil {
						b.Fatal(err)
					}
				} else if _, err := h.CorrelationEdgesParallel(0.8, ts.Hour, 24, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ParallelAggregateAll sweeps worker counts for hypertable
// fan-out aggregation.
func BenchmarkAblation_ParallelAggregateAll(b *testing.B) {
	db := tsstore.New(ts.Week)
	for e := uint32(0); e < 200; e++ {
		for i := 0; i < 24*90; i++ {
			db.Insert(tsstore.SeriesKey{Entity: e, Metric: "m"}, ts.Time(i)*ts.Hour, float64(i%24))
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.AggregateAllParallel("m", 10*ts.Day, 80*ts.Day, workers)
			}
		})
	}
}

// BenchmarkAblation_ViewCache measures the snapshot cache: repeated queries
// at one instant (the continuous-query pattern) versus distinct instants.
func BenchmarkAblation_ViewCache(b *testing.B) {
	fraudFixture()
	parsed, err := hyql.Parse(`MATCH (u:User)-[:USES]->(c:CreditCard) RETURN count(*)`)
	if err != nil {
		b.Fatal(err)
	}
	mid := ts.Time(fraudData.Config.Hours/2) * ts.Hour
	b.Run("SameInstant", func(b *testing.B) {
		eng := hyql.NewEngine(fraudData.H)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Exec(parsed, mid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DistinctInstants", func(b *testing.B) {
		eng := hyql.NewEngine(fraudData.H)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Exec(parsed, ts.Time(i%1000)*ts.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
}

# Tier-1 verification gate (see ROADMAP.md). `make verify` must stay green.

GO ?= go
FUZZTIME ?= 10s

.PHONY: verify vet build test race fuzz bench

verify: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs of the corpus-seeded fuzzers: the WAL replayer must never
# panic or mis-recover on arbitrary log bytes, and the HyQL parser must never
# panic on arbitrary query text.
fuzz:
	$(GO) test ./internal/storage/graphstore -run FuzzWALReplay -fuzz FuzzWALReplay -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hyql -run FuzzParse -fuzz FuzzParse -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchmem ./...

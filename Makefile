# Tier-1 verification gate (see ROADMAP.md). `make verify` must stay green.

GO ?= go
FUZZTIME ?= 10s

.PHONY: verify vet lint build test race fuzz bench benchsmoke servesmoke cover

verify: vet lint build race fuzz benchsmoke servesmoke cover

vet:
	$(GO) vet ./...

# hyvet: the repo's own analyzer suite (docs/STATIC_ANALYSIS.md). Exit 1 on
# findings; `make lint JSON=1` emits machine-readable findings instead.
lint:
	$(GO) run ./cmd/hyvet $(if $(JSON),-json) ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs of the corpus-seeded fuzzers: the WAL replayer must never
# panic or mis-recover on arbitrary log bytes, and the HyQL parser must never
# panic on arbitrary query text.
fuzz:
	$(GO) test ./internal/storage/graphstore -run FuzzWALReplay -fuzz FuzzWALReplay -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hyql -run FuzzParse -fuzz FuzzParse -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchmem ./...

# Race-enabled smoke of the parallel bench path: DefaultConfig at Reps=2
# with the sequential-vs-parallel comparison (which exits non-zero if the
# parallel results ever diverge), a concurrent-client burst, and a schema
# check of the emitted baseline. The second run smokes the mixed
# read/write path — concurrent ingest + query clients over the sharded
# group-committed durable engine — at small scale, still under -race.
# The third run smokes the served-workload path: the network query service
# on a loopback port under open-loop load below and above the admission
# limit (not under -race — open-loop timing is the point being measured).
# The fourth run smokes the storage path: chunk compression + cold tier
# (points-per-MB, the 4x ratio floor, spill + cold/warm scans, Q1-Q8
# deltas). The fifth run smokes the partition-scaling path under -race:
# the scatter-gather coordinator at 1 and 2 partitions, which exits
# non-zero unless every merged answer is element-wise identical to the
# single-engine oracle. The sixth run smokes the streaming path: write-
# through continuous aggregates vs invalidate-and-recompute under paced
# ingest + aggregate reads (not under -race — the latency ratio is the
# point being measured), which exits non-zero unless both legs pass the
# from-scratch identity gate, with the v6 baseline schema validated by
# -check. Writes to scratch files so the committed BENCH_table1.json is
# never clobbered by a -race-skewed run.
benchsmoke:
	$(GO) run -race ./cmd/hybench -reps 2 -parallel -clients 4 -ops 8 -metrics -json /tmp/hybench_smoke.json
	$(GO) run -race ./cmd/hybench -scale small -reps 2 -mixed -ingest 2 -query 2 -mixedms 25 -shapemin 5 -json /tmp/hybench_smoke_mixed.json
	$(GO) run ./cmd/hybench -scale small -reps 2 -serve -servems 200 -shapemin 5 -json /tmp/hybench_smoke_serve.json
	$(GO) run -race ./cmd/hybench -scale small -reps 2 -storage -shapemin 5 -json /tmp/hybench_smoke_storage.json
	$(GO) run -race ./cmd/hybench -scale small -reps 2 -partitions 1,2 -shapemin 5 -json /tmp/hybench_smoke_parts.json
	$(GO) run ./cmd/hybench -scale small -reps 2 -streaming -ingest 2 -sread 2 -streamms 60 -shapemin 5 -json /tmp/hybench_smoke_streaming.json
	$(GO) run ./cmd/hybench -check /tmp/hybench_smoke.json
	$(GO) run ./cmd/hybench -check /tmp/hybench_smoke_mixed.json
	$(GO) run ./cmd/hybench -check /tmp/hybench_smoke_serve.json
	$(GO) run ./cmd/hybench -check /tmp/hybench_smoke_storage.json
	$(GO) run ./cmd/hybench -check /tmp/hybench_smoke_parts.json
	$(GO) run ./cmd/hybench -check /tmp/hybench_smoke_streaming.json
	grep -q '"schema": "hybench-table1/v6"' /tmp/hybench_smoke_streaming.json

# Server smoke (docs/SERVICE.md): one live `hygraph serve -smoke` run under
# -race — random loopback port, durable ingest + query through the retry
# client, one forced shed carrying Retry-After, one deadline-exceeded
# request, graceful stop, then a recovery check proving the acknowledged
# writes survive from the directory alone.
servesmoke:
	rm -rf /tmp/hygraph_servesmoke
	$(GO) run -race ./cmd/hygraph serve -smoke -dir /tmp/hygraph_servesmoke

# Coverage gate: statement coverage of the storage engines, the coordinator,
# the streaming layer, the observability layer, and the bench harness must
# stay at or above the floor recorded in coverage.txt (a bare percentage;
# raise it as tests accumulate).
cover:
	$(GO) test -coverprofile=/tmp/hygraph_cover.out ./internal/storage/... ./internal/coord ./internal/stream ./internal/obs ./internal/bench
	@total=$$($(GO) tool cover -func=/tmp/hygraph_cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	floor=$$(cat coverage.txt); \
	echo "coverage: $$total% (floor $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }' \
		|| { echo "coverage $$total% fell below the $$floor% floor in coverage.txt"; exit 1; }

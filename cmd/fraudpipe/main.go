// Command fraudpipe runs the paper's Figure 4 pipeline on the credit-card
// fraud running example and prints each detector's verdicts against planted
// ground truth: the graph-only query (Listing 1) flags legitimate heavy
// spenders, the series-only detector (Listing 2) flags volatile balances,
// and the HyGraph hybrid pipeline flags exactly the planted fraudsters.
//
// Usage:
//
//	fraudpipe [-users N] [-fraudsters N] [-heavy N] [-volatile N] [-seed S]
package main

import (
	"flag"
	"fmt"

	"hygraph/internal/dataset"
	"hygraph/internal/pipeline"
)

func main() {
	users := flag.Int("users", 30, "number of users")
	fraudsters := flag.Int("fraudsters", 3, "planted fraudsters (true positives)")
	heavy := flag.Int("heavy", 3, "planted heavy users (graph-side bait)")
	volatile := flag.Int("volatile", 3, "planted volatile balances (series-side bait)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	cfg := dataset.DefaultFraud()
	cfg.Users = *users
	cfg.Fraudsters = *fraudsters
	cfg.HeavyUsers = *heavy
	cfg.Volatile = *volatile
	cfg.Seed = *seed

	d := dataset.GenerateFraud(cfg)
	fmt.Printf("workload: %s\n", d.H)
	fmt.Printf("planted:  %d fraudsters, %d heavy users, %d volatile, %d normal\n\n",
		cfg.Fraudsters, cfg.HeavyUsers, cfg.Volatile,
		cfg.Users-cfg.Fraudsters-cfg.HeavyUsers-cfg.Volatile)

	r := pipeline.Run(d, pipeline.DefaultParams())
	fmt.Print(pipeline.FormatReport(d, r))

	fmt.Println()
	switch {
	case r.HybridMetrics.F1() == 1:
		fmt.Println("result: hybrid pipeline recovered the planted fraudsters exactly (Figure 4's claim)")
	case r.HybridMetrics.F1() > r.GraphMetrics.F1() && r.HybridMetrics.F1() > r.SeriesMetrics.F1():
		fmt.Println("result: hybrid pipeline beats both single-model baselines")
	default:
		fmt.Println("result: hybrid pipeline did NOT beat the baselines on this seed")
	}
}

// Command hybench regenerates the paper's Table 1: the eight-query storage
// benchmark of all-in-graph ("Neo4j") vs polyglot persistence
// ("TimeTravelDB") over a synthetic bike-sharing workload.
//
// Usage:
//
//	hybench [-scale small|default|paper] [-reps N] [-stations N] [-days N]
//
// The default scale (200 stations × 180 days hourly) finishes in well under
// a minute and already shows the paper's orders-of-magnitude separation on
// Q4–Q8; -scale paper approaches the dataset size of the original study.
package main

import (
	"flag"
	"fmt"
	"os"

	"hygraph/internal/bench"
)

func main() {
	scale := flag.String("scale", "default", "workload scale: small, default, or paper")
	reps := flag.Int("reps", 0, "measured repetitions per query (0 = scale default)")
	stations := flag.Int("stations", 0, "override station count")
	days := flag.Int("days", 0, "override number of days")
	flag.Parse()

	var cfg bench.Config
	switch *scale {
	case "small":
		cfg = bench.DefaultConfig()
		cfg.Bike.Stations = 40
		cfg.Bike.Days = 30
		cfg.Reps = 5
	case "default":
		cfg = bench.DefaultConfig()
	case "paper":
		cfg = bench.PaperScaleConfig()
	default:
		fmt.Fprintf(os.Stderr, "hybench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *stations > 0 {
		cfg.Bike.Stations = *stations
	}
	if *days > 0 {
		cfg.Bike.Days = *days
	}

	points := cfg.Bike.Stations * cfg.Bike.Days * 24 * 60 / cfg.Bike.StepMinutes
	fmt.Printf("Table 1 reproduction — %d stations, %d days (%d points), %d reps/query\n\n",
		cfg.Bike.Stations, cfg.Bike.Days, points, cfg.Reps)

	rows, err := bench.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(bench.Format(rows))

	fmt.Println()
	problems := bench.ShapeCheck(rows, 50)
	if len(problems) == 0 {
		fmt.Println("shape check: PASS — TTDB ≥50x on Q4–Q6/Q8 and ahead everywhere, matching the paper's Table 1 shape")
	} else {
		fmt.Println("shape check: FAIL")
		for _, p := range problems {
			fmt.Println("  " + p)
		}
		os.Exit(1)
	}
}

// Command hybench regenerates the paper's Table 1: the eight-query storage
// benchmark of all-in-graph ("Neo4j") vs polyglot persistence
// ("TimeTravelDB") over a synthetic bike-sharing workload.
//
// Usage:
//
//	hybench [-scale small|default|paper] [-reps N] [-stations N] [-days N]
//	        [-parallel] [-workers N] [-clients N] [-ops N]
//	        [-mixed] [-ingest N] [-query N] [-mixedms N] [-shapemin X]
//	        [-serve] [-serverate R] [-servems N] [-servetenants N]
//	        [-partitions "1,2,4,8"]
//	        [-streaming] [-streamms N] [-sread N]
//	        [-json FILE] [-check FILE] [-metrics]
//
// The default scale (200 stations × 180 days hourly) finishes in well under
// a minute and already shows the paper's orders-of-magnitude separation on
// Q4–Q8; -scale paper approaches the dataset size of the original study.
//
// -parallel additionally times the polyglot engine's Q4–Q8 sequential vs
// fanned out over the worker pool (-workers, default GOMAXPROCS) and
// verifies both modes return identical results. -clients N runs the
// concurrent-client throughput mode: N goroutines issuing the Q1–Q8 mix,
// -ops queries each. -mixed runs the mixed read/write scaling comparison —
// -ingest writer clients streaming durable appends alongside -query reader
// clients for a -mixedms window, once on the single-stripe per-record-flush
// baseline and once on sharded stores with WAL group commit.
// -serve runs the served-workload mode: it boots the network
// query service (internal/server) on a loopback port and drives an
// open-loop load generator at offered rates below and above the admission
// limit, reporting served QPS, latency quantiles, shed rate and
// deadline-miss rate per level.
// -partitions runs the partition-scaling mode: the scatter-gather
// coordinator (internal/coord) over N in-process partitions at each listed
// count, every level verified element-wise identical to the single-engine
// oracle before Q4–Q8 are timed against the 1-partition reference.
// -streaming runs the continuous-aggregate mode: -ingest writers stream
// durable appends at the -mixed offered rate while -sread readers issue
// windowed-aggregate reads for a -streamms window, once with write-through
// delta maintenance and once with invalidate-and-recompute, reporting
// aggregate-read latency, ingest-to-visible staleness, cache accounting,
// and the identity gate against a from-scratch resample.
// -json writes the machine-readable BENCH_table1.json
// baseline; -check validates an existing baseline file's schema and exits.
// -metrics attaches the observability registry to every engine, pushes a
// small workload slice through the durable layer (WALs + journal + observed
// recovery), embeds the snapshot in the baseline, and fails the run if any
// instrumented subsystem reported nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hygraph/internal/bench"
	"hygraph/internal/obs"
)

// parseCounts parses the -partitions value: comma-separated positive
// partition counts, e.g. "1,2,4,8".
func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", f)
		}
		if n < 1 {
			return nil, fmt.Errorf("count %d not positive", n)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func main() {
	scale := flag.String("scale", "default", "workload scale: small, default, or paper")
	reps := flag.Int("reps", 0, "measured repetitions per query (0 = scale default)")
	stations := flag.Int("stations", 0, "override station count")
	days := flag.Int("days", 0, "override number of days")
	parallel := flag.Bool("parallel", false, "also compare sequential vs parallel Q4-Q8 on the polyglot engine")
	workers := flag.Int("workers", 0, "fan-out width for -parallel and Table 1 queries (0 = GOMAXPROCS for -parallel, sequential otherwise)")
	clients := flag.Int("clients", 0, "concurrent-client throughput mode: N goroutines issuing the Q1-Q8 mix")
	ops := flag.Int("ops", 32, "queries per client in throughput mode")
	mixed := flag.Bool("mixed", false, "mixed read/write scaling: single-lock baseline vs sharded stores with WAL group commit")
	ingest := flag.Int("ingest", 4, "ingest clients in -mixed mode")
	query := flag.Int("query", 4, "query clients in -mixed mode")
	mixedMS := flag.Int("mixedms", 100, "measured window per rep in -mixed mode, milliseconds")
	storage := flag.Bool("storage", false, "storage mode: points-per-MB of raw vs compressed chunk layouts, cold-tier spill + scan cost, and Q1-Q8 deltas of a compressed engine")
	partitions := flag.String("partitions", "", "partition-scaling mode: comma-separated partition counts (e.g. 1,2,4,8) for the scatter-gather coordinator, each level verified identical to the single-engine oracle")
	streaming := flag.Bool("streaming", false, "continuous-aggregate mode: write-through delta maintenance vs invalidate-and-recompute under sustained ingest")
	streamMS := flag.Int("streamms", 150, "measured window per leg in -streaming mode, milliseconds")
	sread := flag.Int("sread", 4, "aggregate-read clients in -streaming mode")
	serve := flag.Bool("serve", false, "served-workload mode: open-loop load against the network query service at levels below and above the admission limit")
	serveRate := flag.Float64("serverate", 400, "per-tenant admitted request rate in -serve mode, req/s")
	serveMS := flag.Int("servems", 500, "measured window per offered-load level in -serve mode, milliseconds")
	serveTenants := flag.Int("servetenants", 2, "tenant namespaces under load in -serve mode")
	shapeMin := flag.Float64("shapemin", 50, "minimum Q4-Q6/Q8 speedup the Table 1 shape check enforces (lower it for -scale small smokes)")
	jsonPath := flag.String("json", "", "write the machine-readable baseline to this file")
	checkPath := flag.String("check", "", "validate an existing baseline file's schema and exit")
	metrics := flag.Bool("metrics", false, "instrument the run and embed an observability snapshot in the baseline")
	flag.Parse()

	if *checkPath != "" {
		f, err := os.Open(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if _, err := bench.ReadBaseline(f); err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s baseline\n", *checkPath, bench.BaselineSchema)
		return
	}

	var cfg bench.Config
	switch *scale {
	case "small":
		cfg = bench.DefaultConfig()
		cfg.Bike.Stations = 40
		cfg.Bike.Days = 30
		cfg.Reps = 5
	case "default":
		cfg = bench.DefaultConfig()
	case "paper":
		cfg = bench.PaperScaleConfig()
	default:
		fmt.Fprintf(os.Stderr, "hybench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *stations > 0 {
		cfg.Bike.Stations = *stations
	}
	if *days > 0 {
		cfg.Bike.Days = *days
	}
	cfg.Workers = *workers
	var reg *obs.Registry
	if *metrics {
		reg = obs.New()
		cfg.Obs = reg
	}

	points := cfg.Bike.Stations * cfg.Bike.Days * 24 * 60 / cfg.Bike.StepMinutes
	fmt.Printf("Table 1 reproduction — %d stations, %d days (%d points), %d reps/query\n\n",
		cfg.Bike.Stations, cfg.Bike.Days, points, cfg.Reps)

	rows, err := bench.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(bench.Format(rows))

	baseline := &bench.Baseline{Schema: bench.BaselineSchema, Config: cfg, Rows: rows}

	if *parallel {
		fmt.Println()
		prows, w, err := bench.RunParallel(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatParallel(prows, w))
		baseline.Parallel, baseline.Workers = prows, w
		// Record the resolved fan-out width in the config too: Workers=0
		// means "GOMAXPROCS at run time", which the baseline must pin down.
		baseline.Config.EffectiveWorkers = w
		for _, r := range prows {
			if !r.Identical {
				fmt.Fprintf(os.Stderr, "hybench: %s parallel result differs from sequential\n", r.Query)
				os.Exit(1)
			}
		}
	}

	if *clients > 0 {
		fmt.Println()
		rep, err := bench.Throughput(cfg, *clients, *ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatThroughput(rep))
		baseline.Throughput = &rep
	}

	if *mixed {
		fmt.Println()
		cmp, err := bench.RunMixed(cfg, *ingest, *query, *mixedMS)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatMixed(cmp))
		baseline.Mixed = &cmp
	}

	if *storage {
		fmt.Println()
		rep, err := bench.RunStorage(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatStorage(rep))
		baseline.Storage = &rep
		if problems := bench.CheckStorage(&rep); len(problems) > 0 {
			fmt.Fprintln(os.Stderr, "hybench: storage check FAIL")
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "  "+p)
			}
			os.Exit(1)
		}
	}

	if *partitions != "" {
		counts, err := parseCounts(*partitions)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: -partitions: %v\n", err)
			os.Exit(2)
		}
		fmt.Println()
		rep, err := bench.RunPartitions(cfg, counts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatPartitions(rep))
		baseline.Partitions = &rep
		for _, lvl := range rep.Levels {
			if !lvl.Identical {
				fmt.Fprintf(os.Stderr, "hybench: %d-partition results differ from the single-engine oracle\n", lvl.Parts)
				os.Exit(1)
			}
		}
	}

	if *streaming {
		fmt.Println()
		rep, err := bench.RunStreaming(cfg, bench.StreamingConfig{
			IngestClients: *ingest,
			ReadClients:   *sread,
			WindowMS:      *streamMS,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatStreaming(rep))
		baseline.Streaming = &rep
		if !rep.Incremental.Identical || !rep.Recompute.Identical {
			fmt.Fprintln(os.Stderr, "hybench: streamed aggregates differ from a from-scratch resample")
			os.Exit(1)
		}
		if problems := bench.CheckStreaming(&rep); len(problems) > 0 {
			fmt.Fprintln(os.Stderr, "hybench: streaming check FAIL")
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "  "+p)
			}
			os.Exit(1)
		}
	}

	if *serve {
		fmt.Println()
		rep, err := bench.RunServe(context.Background(), bench.ServeConfig{
			Tenants:       *serveTenants,
			RatePerTenant: *serveRate,
			WindowMS:      *serveMS,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatServe(rep))
		baseline.Serve = &rep
	}

	if *metrics {
		if err := bench.DurableExercise(cfg, reg); err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		snap := reg.Snapshot()
		baseline.Metrics = snap
		if problems := bench.CheckMetrics(snap); len(problems) > 0 {
			fmt.Fprintln(os.Stderr, "hybench: metrics check FAIL")
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "  "+p)
			}
			os.Exit(1)
		}
		fmt.Printf("\nmetrics: %d counters, %d timers, %d gauges — graphstore.wal.appends=%d tsstore.wal.appends=%d cache hits/misses=%d/%d\n",
			len(snap.Counters), len(snap.Durations), len(snap.Gauges),
			snap.Counters["graphstore.wal.appends"], snap.Counters["tsstore.wal.appends"],
			snap.Counters["tsstore.cache.hits"], snap.Counters["tsstore.cache.misses"])
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteBaseline(f, baseline); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hybench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nbaseline written to %s\n", *jsonPath)
	}

	fmt.Println()
	problems := bench.ShapeCheck(rows, *shapeMin)
	if len(problems) == 0 {
		fmt.Printf("shape check: PASS — TTDB ≥%gx on Q4–Q6/Q8 and ahead everywhere, matching the paper's Table 1 shape\n", *shapeMin)
	} else {
		fmt.Println("shape check: FAIL")
		for _, p := range problems {
			fmt.Println("  " + p)
		}
		os.Exit(1)
	}
}

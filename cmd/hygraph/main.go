// Command hygraph is the CLI for the HyGraph reproduction: generate a
// synthetic workload, inspect it, run HyQL queries against it, and run the
// hybrid operators of Table 2.
//
// Usage:
//
//	hygraph generate -dataset bike|fraud|iot [-seed S]
//	hygraph query    -dataset bike|fraud|iot [-seed S] [-at MS] 'MATCH ... RETURN ...'
//	hygraph analyze  -dataset bike|fraud|iot [-seed S] -op correlate|aggregate|segment|anomalies|motifs
//	hygraph repl     -dataset bike|fraud|iot [-seed S]
//	hygraph ingest   -dir DIR [-stations N] [-seed S] [-crash POINT[:NTH]]
//	hygraph recover  -dir DIR [-compact]
//	hygraph stats    [-seed S] [-workers N]
//	hygraph serve    -dir DIR [-addr HOST:PORT] [-rate R] [-maxconc N]
//	                 [-maxqueue N] [-drain DUR] [-partitions N] [-smoke]
//
// serve runs the hardened network query service (internal/server,
// docs/SERVICE.md) over the durable store directory: per-tenant HyQL, Q1–Q8
// and ingest with admission control, request deadlines, and a SIGTERM drain
// that flushes the group-commit WALs before exit. -partitions N serves each
// tenant as N independent engine partitions (subdirectories <tenant>.pI)
// behind the scatter-gather coordinator (docs/PARTITIONING.md). -smoke runs the
// self-contained CI smoke instead: random port, a client mix including one
// forced shed and one deadline-exceeded request, graceful stop, recovery
// check.
//
// Every command accepts -debug-addr ADDR to serve net/http/pprof, expvar and
// the observability snapshot (/debug/obs) for the life of the process; stats
// runs an instrumented pass over the bike workload and prints the snapshot.
//
// Unknown subcommands and flags exit 2 with a usage message.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/hyql"
	"hygraph/internal/obs"
	"hygraph/internal/ts"
)

// commands is the closed set of subcommands; anything else is a usage error
// before any flag parsing or dataset generation happens.
var commands = map[string]bool{
	"generate": true, "query": true, "analyze": true, "repl": true,
	"ingest": true, "recover": true, "stats": true, "serve": true,
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	switch {
	case cmd == "help" || cmd == "-h" || cmd == "-help" || cmd == "--help":
		usage()
		return
	case !commands[cmd]:
		fmt.Fprintf(os.Stderr, "hygraph: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}

	// ContinueOnError (not ExitOnError) so a bad flag prints the full
	// command usage, not just the flag table, and still exits non-zero.
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	ds := fs.String("dataset", "fraud", "workload: bike, fraud, or iot")
	seed := fs.Int64("seed", 1, "generator seed")
	at := fs.Int64("at", -1, "query instant in epoch ms (-1 = mid-series)")
	op := fs.String("op", "correlate", "analyze operator: correlate, aggregate, segment, anomalies, motifs")
	dir := fs.String("dir", "hygraph-data", "durable store directory (ingest/recover/serve)")
	stations := fs.Int("stations", 8, "stations to ingest (ingest)")
	crash := fs.String("crash", "", "fault point to crash at, e.g. ttdb.ingest.ts[:nth] (ingest)")
	compact := fs.Bool("compact", false, "snapshot and truncate logs after recovery (recover)")
	workers := fs.Int("workers", 0, "fan-out width for stats and serve (0 = sequential / GOMAXPROCS)")
	debugAddr := fs.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/obs on this address")
	addr := fs.String("addr", "127.0.0.1:8091", "listen address (serve)")
	rate := fs.Float64("rate", 0, "per-tenant admitted request rate, req/s; 0 = unlimited (serve)")
	maxConc := fs.Int("maxconc", 0, "max concurrent requests; 0 = 4x GOMAXPROCS (serve)")
	maxQueue := fs.Int("maxqueue", 0, "max queued requests; 0 = 4x maxconc (serve)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain bound (serve)")
	smoke := fs.Bool("smoke", false, "run the self-contained server smoke and exit (serve)")
	partitions := fs.Int("partitions", 1, "partitions per tenant: >1 serves each tenant as N engines behind the scatter-gather coordinator (serve)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}

	// Commands that take no positional arguments must reject strays instead
	// of silently ignoring them — a misquoted shell line should fail loudly.
	if cmd != "query" && fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "hygraph %s: unexpected argument %q\n", cmd, fs.Arg(0))
		usage()
		os.Exit(2)
	}

	// One registry backs the stats command, the serve subcommand's metrics
	// endpoint, and the debug server; other commands leave it nil, which
	// keeps instrumentation at its nil-sink zero-overhead path.
	var reg *obs.Registry
	if cmd == "stats" || cmd == "serve" || *debugAddr != "" {
		reg = obs.New()
	}
	var dbg *obs.DebugServer
	if *debugAddr != "" {
		var err error
		dbg, err = obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fail(err.Error())
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ (pprof, vars, obs)\n", dbg.Addr())
	}

	if cmd == "stats" {
		runStats(reg, *seed, *workers)
		return
	}

	// The durable-storage commands operate on a data directory, not on a
	// generated HyGraph instance.
	switch cmd {
	case "ingest":
		runIngest(*dir, *stations, *crash, *seed)
		return
	case "recover":
		runRecover(*dir, *compact)
		return
	case "serve":
		if *smoke {
			runServeSmoke(*dir)
			return
		}
		runServe(*addr, *dir, *rate, *maxConc, *maxQueue, *workers, *partitions, *drain, reg, dbg)
		return
	}

	h, mid := buildDataset(*ds, *seed)
	when := ts.Time(*at)
	if *at < 0 {
		when = mid
	}

	switch cmd {
	case "generate":
		fmt.Println(h)
		pv, pe := h.CountByKind(core.PG)
		tv, te := h.CountByKind(core.TS)
		fmt.Printf("PG vertices: %d, TS vertices: %d, PG edges: %d, TS edges: %d\n", pv, tv, pe, te)
	case "query":
		if fs.NArg() < 1 {
			fail("query: missing HyQL string")
		}
		runQuery(h, strings.Join(fs.Args(), " "), when, reg)
	case "repl":
		repl(h, when, reg)
	case "analyze":
		analyze(h, *op, when)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hygraph generate -dataset bike|fraud|iot [-seed S]
  hygraph query    -dataset ... [-at MS] 'MATCH ... RETURN ...'
  hygraph analyze  -dataset ... -op correlate|aggregate|segment|anomalies|motifs
  hygraph repl     -dataset ...
  hygraph ingest   -dir DIR [-stations N] [-seed S] [-crash POINT[:NTH]]
  hygraph recover  -dir DIR [-compact]
  hygraph stats    [-seed S] [-workers N] [-debug-addr ADDR]
  hygraph serve    -dir DIR [-addr HOST:PORT] [-rate R] [-maxconc N]
                   [-maxqueue N] [-drain DUR] [-partitions N] [-smoke]`)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hygraph: "+msg)
	os.Exit(1)
}

// buildDataset generates the requested workload and a reasonable "as of"
// query instant (mid-series).
func buildDataset(name string, seed int64) (*core.HyGraph, ts.Time) {
	switch name {
	case "bike":
		cfg := dataset.DefaultBike()
		cfg.Seed = seed
		d := GenerateBikeHG(cfg)
		_, end := ts.Time(0), ts.Time(cfg.Days)*ts.Day
		return d, end / 2
	case "fraud":
		cfg := dataset.DefaultFraud()
		cfg.Seed = seed
		d := dataset.GenerateFraud(cfg)
		return d.H, ts.Time(cfg.Hours/2) * ts.Hour
	case "iot":
		cfg := dataset.DefaultIoT()
		cfg.Seed = seed
		d := dataset.GenerateIoT(cfg)
		return d.H, ts.Time(cfg.Hours/2) * ts.Hour
	}
	fail("unknown dataset " + name)
	return nil, 0
}

// GenerateBikeHG builds the bike workload as a HyGraph.
func GenerateBikeHG(cfg dataset.BikeConfig) *core.HyGraph {
	d := dataset.GenerateBike(cfg)
	h, _ := d.ToHyGraph()
	return h
}

func runQuery(h *core.HyGraph, src string, at ts.Time, reg *obs.Registry) {
	eng := hyql.NewEngine(h)
	eng.Instrument(reg)
	res, err := eng.Query(src, at)
	if err != nil {
		fail(err.Error())
	}
	printResult(res)
}

func printResult(res *hyql.Result) {
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func repl(h *core.HyGraph, at ts.Time, reg *obs.Registry) {
	eng := hyql.NewEngine(h)
	eng.Instrument(reg)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Printf("HyQL REPL over %s (as of %s). Blank line to quit.\n", h, at)
	fmt.Print("hyql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			return
		}
		res, err := eng.Query(line, at)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			printResult(res)
		}
		fmt.Print("hyql> ")
	}
}

func analyze(h *core.HyGraph, op string, at ts.Time) {
	switch op {
	case "correlate":
		n, err := h.CorrelationEdges(0.9, ts.Hour, 24)
		if err != nil {
			fail(err.Error())
		}
		fmt.Printf("added %d SIMILAR edges between correlated series (|r| >= 0.9)\n", n)
	case "aggregate":
		out, groups, err := h.HybridAggregate(core.AggregateSpec{
			GroupKey: func(v *core.Vertex) string {
				for _, key := range []string{"district", "line"} {
					if s, ok := v.Prop(key).AsString(); ok {
						return s
					}
				}
				return "all"
			},
			Bucket:    ts.Day,
			SeriesAgg: ts.AggMean,
			Combine:   ts.AggSum,
		})
		if err != nil {
			fail(err.Error())
		}
		fmt.Printf("aggregated into %d groups: %s\n", len(groups), out)
	case "segment":
		driver := h.ActivitySeries(0, at*2, ts.Hour)
		snaps := h.SegmentSnapshots(driver, 4, 0.02)
		fmt.Printf("segmented activity into %d regimes:\n", len(snaps))
		for _, s := range snaps {
			fmt.Printf("  from %s: mean activity %.1f, snapshot %s\n",
				s.Segment.Start, s.Segment.Mean, s.View.Graph)
		}
	case "anomalies":
		res := h.AnomalyCommunities(at, 24, 6, 1)
		fmt.Printf("scored %d communities (most anomalous first):\n", len(res))
		for i, c := range res {
			if i >= 5 {
				break
			}
			fmt.Printf("  community %d: score %.2f, %d members\n", c.Community, c.Score, len(c.Members))
		}
	case "motifs":
		groups := h.MotifPatterns(8, 4, 2)
		fmt.Printf("found %d motif groups (shared SAX words):\n", len(groups))
		for i, g := range groups {
			if i >= 5 {
				break
			}
			fmt.Printf("  %q: %d members, %d induced edges\n", g.Word, len(g.Members), g.InducedEdges)
		}
	default:
		fail("unknown op " + op)
	}
}

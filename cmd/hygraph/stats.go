package main

import (
	"encoding/json"
	"fmt"
	"os"

	"hygraph/internal/dataset"
	"hygraph/internal/hyql"
	"hygraph/internal/obs"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// runStats exercises every instrumented layer once over the bike workload —
// the polyglot Q1–Q8 suite (Q7 twice, so the resample cache shows both a
// miss and a hit), and a HyQL query over the equivalent HyGraph — then
// prints the registry snapshot as indented JSON. It is the quickest way to
// see which metrics exist and what a healthy run looks like.
func runStats(reg *obs.Registry, seed int64, workers int) {
	cfg := dataset.DefaultBike()
	cfg.Seed = seed
	data := dataset.GenerateBike(cfg)
	pg := ttdb.NewPolyglot(ts.Week)
	ids, err := data.LoadEngine(pg)
	if err != nil {
		fail(err.Error())
	}
	pg.SetWorkers(workers)
	pg.Instrument(reg)
	start, end := data.Span()
	qStart := start + (end-start)/4
	qEnd := qStart + (end-start)/2
	st0, st1 := ids[0], ids[len(ids)/2]
	pg.Q1TimeRange(st0, qStart, qStart+2*ts.Day)
	pg.Q2FilteredRange(st0, qStart, qEnd, 10)
	pg.Q3StationMean(st0, qStart, qEnd)
	pg.Q4AllStationMeans(qStart, qEnd)
	pg.Q5DistrictSums(qStart, qEnd)
	pg.Q6TopKStations(qStart, qEnd, 10)
	pg.Q7Correlation(st0, st1, qStart, qEnd, ts.Hour)
	pg.Q7Correlation(st0, st1, qStart, qEnd, ts.Hour)
	pg.Q8NeighborMeans(st0, qStart, qEnd)

	h, _ := data.ToHyGraph()
	eng := hyql.NewEngine(h)
	eng.Instrument(reg)
	src := fmt.Sprintf(`MATCH (st:Station)-[:HAS_SERIES]->(a)
		WHERE st.name = 'station-000'
		RETURN st.name, ts.mean(a, %d, %d)`, qStart, qEnd)
	if _, err := eng.Query(src, qEnd); err != nil {
		fail(err.Error())
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reg.Snapshot()); err != nil {
		fail(err.Error())
	}
}

// The durable-storage subcommands: `ingest` loads a bike-sharing workload
// into the crash-safe polyglot store under a data directory (optionally
// killing itself at an injected fault point), and `recover` rebuilds the
// store from the surviving artifacts and prints the recovery summary.
//
// A data directory holds five files, any of which may be absent:
//
//	graph.snap  graph.wal  ts.snap  ts.wal  ingest.journal
package main

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hygraph/internal/dataset"
	"hygraph/internal/faults"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

var storeFiles = struct {
	graphSnap, graphLog, tsSnap, tsLog, journal string
}{"graph.snap", "graph.wal", "ts.snap", "ts.wal", "ingest.journal"}

// openMaybe opens a store file for reading, returning a nil reader (not a
// typed-nil *os.File) when it does not exist.
func openMaybe(dir, name string, closers *[]io.Closer) io.Reader {
	f, err := os.Open(filepath.Join(dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		fail(err.Error())
	}
	*closers = append(*closers, f)
	return f
}

// recoverDir rebuilds the polyglot engine from whatever the directory holds.
func recoverDir(dir string) (*ttdb.Polyglot, ttdb.PolyglotRecovery) {
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	eng, rec, err := ttdb.RecoverPolyglot(
		openMaybe(dir, storeFiles.graphSnap, &closers),
		openMaybe(dir, storeFiles.graphLog, &closers),
		openMaybe(dir, storeFiles.tsSnap, &closers),
		openMaybe(dir, storeFiles.tsLog, &closers),
		openMaybe(dir, storeFiles.journal, &closers),
		ts.Week)
	if err != nil {
		fail("recovery: " + err.Error())
	}
	return eng, rec
}

func appendFile(dir, name string) *os.File {
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fail(err.Error())
	}
	return f
}

// parseCrash splits the -crash value "point[:nth]".
func parseCrash(spec string) (string, int) {
	point, nthStr, ok := strings.Cut(spec, ":")
	if !ok {
		return point, 1
	}
	nth, err := strconv.Atoi(nthStr)
	if err != nil || nth < 1 {
		fail("bad -crash spec " + spec + " (want point[:nth])")
	}
	return point, nth
}

// runIngest loads a generated bike-sharing workload through the durable
// ingest protocol. With -crash POINT[:NTH] it arms the fault point first, so
// the process dies mid-protocol exactly like a real crash — then `recover`
// demonstrates the journal putting the store back together.
func runIngest(dir string, stations int, crash string, seed int64) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err.Error())
	}
	eng, rec := recoverDir(dir)
	if rec.RolledBack > 0 {
		fmt.Printf("note: prior crash detected, %d transaction(s) rolled back in memory\n", rec.RolledBack)
	}
	gf := appendFile(dir, storeFiles.graphLog)
	defer gf.Close()
	tf := appendFile(dir, storeFiles.tsLog)
	defer tf.Close()
	jf := appendFile(dir, storeFiles.journal)
	defer jf.Close()
	d := ttdb.ResumeDurable(eng, gf, tf, jf, rec.NextTxn)

	if crash != "" {
		point, nth := parseCrash(crash)
		faults.Enable(point, faults.Spec{Err: errors.New("injected crash via -crash"), Nth: nth})
		fmt.Printf("armed fault point %s (nth visit %d)\n", point, nth)
	}

	data := dataset.GenerateBike(dataset.BikeConfig{
		Stations: stations, Districts: 3, Days: 7, StepMinutes: 60, TripsPerSt: 2, Seed: seed})
	ids := make([]ttdb.StationID, 0, stations)
	for i, st := range data.Stations {
		id, err := d.IngestStation(st.Name, st.District, st.Availability)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hygraph: crashed ingesting station %d/%d: %v\n", i+1, stations, err)
			fmt.Fprintf(os.Stderr, "the store is torn on disk; run: hygraph recover -dir %s\n", dir)
			os.Exit(1)
		}
		ids = append(ids, id)
	}
	trips := 0
	for _, tr := range data.Trips {
		if err := d.AddTrip(ids[tr.From], ids[tr.To], tr.Count); err != nil {
			fmt.Fprintf(os.Stderr, "hygraph: crashed on trip %d->%d: %v\n", tr.From, tr.To, err)
			fmt.Fprintf(os.Stderr, "run: hygraph recover -dir %s\n", dir)
			os.Exit(1)
		}
		trips++
	}
	fmt.Printf("ingested %d stations, %d trips into %s (graph nodes: %d, series: %d)\n",
		len(ids), trips, dir, d.Engine().G.NumNodes(), d.Engine().T.NumSeries())
}

// runRecover rebuilds the store from the directory's artifacts and prints
// the recovery summary. With -compact it then writes fresh snapshots and
// truncates the logs, making the rollbacks durable and the next start fast.
func runRecover(dir string, compact bool) {
	eng, rec := recoverDir(dir)
	fmt.Println(rec.String())
	for _, f := range rec.Fates {
		fmt.Printf("  txn %d (node %d): journaled %s -> %s\n", f.Txn, f.Node, f.State, f.Fate)
	}
	if err := ttdb.CheckConsistency(eng); err != nil {
		fail("store inconsistent after recovery: " + err.Error())
	}
	fmt.Printf("consistent: %d stations, %d series\n",
		len(eng.G.NodesByLabel("Station")), eng.T.NumSeries())
	if !compact {
		return
	}
	// Snapshot via temp+rename so a crash mid-compaction keeps the old
	// artifacts intact, then truncate the now-superseded logs.
	snap := func(name string, save func(io.Writer) error) {
		tmp := filepath.Join(dir, name+".tmp")
		f, err := os.Create(tmp)
		if err != nil {
			fail(err.Error())
		}
		if err := save(f); err != nil {
			f.Close()
			fail(err.Error())
		}
		if err := f.Close(); err != nil {
			fail(err.Error())
		}
		if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
			fail(err.Error())
		}
	}
	snap(storeFiles.graphSnap, eng.G.Save)
	snap(storeFiles.tsSnap, eng.T.Save)
	for _, name := range []string{storeFiles.graphLog, storeFiles.tsLog, storeFiles.journal} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			fail(err.Error())
		}
	}
	fmt.Println("compacted: snapshots written, logs truncated")
}

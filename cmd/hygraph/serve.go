// The serve subcommand: the hardened network query service (internal/server,
// docs/SERVICE.md) over a durable store directory, with a SIGINT/SIGTERM
// handler that performs the graceful-stop contract — shed new requests, drain
// in-flight ones, flush every tenant's WAL group writers, close the stores.
//
// `serve -smoke` is the CI smoke stage (make servesmoke): a self-contained
// run on a random loopback port that exercises the client mix the service
// contract promises to survive — durable ingest, a query, one forced shed
// with Retry-After, one deadline-exceeded request — then stops gracefully
// and proves the acknowledged writes recover from disk.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"hygraph/internal/faults"
	"hygraph/internal/obs"
	"hygraph/internal/server"
	"hygraph/internal/server/client"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/ts"
)

// runServe listens on addr and serves tenants out of dir until a signal
// arrives, then drains within the drain bound. partitions > 1 serves each
// tenant as that many independent engines behind the scatter-gather
// coordinator, stored as <tenant>.pI subdirectories.
func runServe(addr, dir string, rate float64, maxConc, maxQueue, workers, partitions int, drain time.Duration, reg *obs.Registry, dbg *obs.DebugServer) {
	var backend server.Backend = &server.DirBackend{Root: dir}
	if partitions > 1 {
		backend = &server.PartitionedBackend{Inner: &server.DirBackend{Root: dir}, Parts: partitions}
	}
	srv, err := server.New(server.Config{
		Limits:  server.Limits{MaxConcurrent: maxConc, MaxQueue: maxQueue, TenantRate: rate},
		Workers: workers,
		Backend: backend,
		Obs:     reg,
	})
	if err != nil {
		fail(err.Error())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err.Error())
	}
	lim := srv.Limits()
	fmt.Fprintf(os.Stderr, "hygraph serve: http://%s/v1/ over %s (maxconc %d, queue %d, rate %s)\n",
		ln.Addr(), dir, lim.MaxConcurrent, lim.MaxQueue, rateString(lim.TenantRate))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "hygraph serve: %s — draining (bound %s)\n", s, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(ctx)
		if dbg != nil {
			_ = dbg.Shutdown(ctx)
		}
		if serr := <-done; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		if err != nil {
			fail("shutdown: " + err.Error())
		}
		fmt.Fprintln(os.Stderr, "hygraph serve: drained, WALs flushed")
	case err := <-done:
		// The listener died without a signal — that is a failure, not a stop.
		fail(err.Error())
	}
}

func rateString(r float64) string {
	if r <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%g/s", r)
}

// runServeSmoke drives one live server through the client mix the CI gate
// requires and exits non-zero on any deviation from the contract.
func runServeSmoke(dir string) {
	reg := obs.New()
	srv, err := server.New(server.Config{
		// One execution slot and a one-deep queue make the forced shed
		// deterministic: with the handler held, the third arrival must shed.
		// The tenant cap is left loose so the shed is the global queue
		// bound, the contract the stage is checking.
		Limits:  server.Limits{MaxConcurrent: 1, MaxQueue: 1, TenantConcurrent: 8},
		Backend: &server.DirBackend{Root: dir},
		Obs:     reg,
	})
	if err != nil {
		fail(err.Error())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err.Error())
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: serving on %s over %s\n", base, dir)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := client.New(client.Config{Base: base})
	if err != nil {
		fail(err.Error())
	}

	// 1. Durable ingest (idempotency-keyed) + append + query.
	pts := []client.Point{{T: 0, V: 4}, {T: 1, V: 8}}
	id, err := cl.IngestStation(ctx, "smoke", "st-0", "north", pts, "smoke-st-0")
	if err != nil {
		fail("smoke ingest: " + err.Error())
	}
	if err := cl.AppendPoint(ctx, "smoke", id, 2, 12); err != nil {
		fail("smoke append: " + err.Error())
	}
	qr, err := cl.Query(ctx, "smoke", "Q3", nil)
	if err != nil {
		fail("smoke Q3: " + err.Error())
	}
	if string(qr.Result) != "8" {
		fail(fmt.Sprintf("smoke Q3 mean = %s, want 8", qr.Result))
	}
	fmt.Printf("smoke: ingested station %d, Q3 mean over {4,8,12} = %s\n", id, qr.Result)

	// 2. Forced shed + deadline-exceeded. Hold every handler 200ms (delay
	// only — Nth pushed out of reach keeps the error leg of the fault
	// disarmed) and fire three concurrent queries: one runs, one queues,
	// one sheds. A fourth request with a 1ms budget must come back 504.
	faults.Enable(server.FaultHandler, faults.Spec{Delay: 200 * time.Millisecond, Nth: 1 << 30})
	raw := &http.Client{}
	statuses := make([]int, 3)
	retryAfter := make([]string, 3)
	var wg sync.WaitGroup
	for i := range statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := raw.Get(base + "/v1/tenants/smoke/query?name=Q3")
			if err != nil {
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
		time.Sleep(20 * time.Millisecond) // arrival order: run, queue, shed
	}
	wg.Wait()
	sheds, oks := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			oks++
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			if retryAfter[i] == "" {
				fail(fmt.Sprintf("smoke shed: status %d without Retry-After", st))
			}
			sheds++
		}
	}
	if sheds < 1 || oks < 1 {
		fail(fmt.Sprintf("smoke shed: statuses %v, want ≥1 ok and ≥1 shed", statuses))
	}
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/tenants/smoke/query?name=Q3", nil)
	req.Header.Set("X-Timeout-MS", "1")
	resp, err := raw.Do(req)
	if err != nil {
		fail("smoke deadline request: " + err.Error())
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		fail(fmt.Sprintf("smoke deadline: status %d, want 504", resp.StatusCode))
	}
	faults.Reset()
	fmt.Printf("smoke: statuses %v (%d shed with Retry-After), 1ms-budget request → 504\n", statuses, sheds)

	// 3. Graceful stop, then prove the acknowledged writes recover from the
	// directory alone.
	if err := srv.Shutdown(ctx); err != nil {
		fail("smoke shutdown: " + err.Error())
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail("smoke serve: " + err.Error())
	}
	// Each tenant lives in its own subdirectory of the root (DirBackend).
	eng, _ := recoverDir(filepath.Join(dir, "smoke"))
	if err := ttdb.CheckConsistency(eng); err != nil {
		fail("smoke recovery: " + err.Error())
	}
	got := eng.Q1TimeRange(ttdb.StationID(id), 0, 3)
	if len(got) != 3 {
		fail(fmt.Sprintf("smoke recovery: %d points recovered, want 3", len(got)))
	}
	if mean := eng.Q3StationMean(ttdb.StationID(id), 0, ts.MaxTime); mean != 8 {
		fail(fmt.Sprintf("smoke recovery: Q3 mean = %v, want 8", mean))
	}
	fmt.Println("smoke: graceful stop + recovery check PASS")
}

// Command hyvet is the repo's custom static-analysis gate: it mechanically
// enforces the concurrency, durability and determinism invariants the
// storage engines rely on (lock discipline, deterministic float folds, WAL
// error latching, panic-free mutators, injected clocks/randomness). It is
// written against the standard library only — go/parser, go/types and
// compiler export data via `go list -export` — keeping the module
// dependency-free.
//
// The suite is interprocedural: analyzers export per-function and per-field
// summaries (facts) while visiting each package, and packages are analyzed
// in dependency order so a caller is checked against its callees' facts even
// across package boundaries.
//
// Usage:
//
//	hyvet [-policy hyvet.policy.json] [-json] [-nocache] [-cachedir DIR] [packages...]
//
// Packages default to ./.... Exit status is 0 when clean, 1 when findings
// exist, 2 when the run itself failed (bad policy, malformed directive,
// packages that do not load). Results are cached incrementally, keyed by
// each package's build ID plus its transitive dependency build IDs, the
// policy, and the analyzer binary itself — unchanged packages replay their
// findings and facts from disk. -nocache forces a full re-analysis;
// -cachedir moves the cache from its default under the OS temp dir. Every
// run logs a stats line (packages, cache hits, wall time) to stderr.
// Findings can be suppressed in source with
//
//	//hyvet:allow <check> <reason>
//
// on the offending line or the line above it; suppressions that stop
// matching anything are themselves reported as stale. See
// docs/STATIC_ANALYSIS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hygraph/internal/analysis"
)

func main() {
	policyPath := flag.String("policy", "hyvet.policy.json", "policy file scoping each check (searched upward from the working directory)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout for machine consumption")
	listChecks := flag.Bool("checks", false, "list the analyzer suite and exit")
	noCache := flag.Bool("nocache", false, "disable the incremental result cache and re-analyze every package")
	cacheDir := flag.String("cachedir", "", "incremental cache directory (default: hyvet-cache under the OS temp dir)")
	flag.Parse()

	if *listChecks {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	path, err := findPolicy(*policyPath)
	if err != nil {
		fatal(err)
	}
	policy, err := analysis.LoadPolicy(path)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, stats, err := analysis.RunWithOptions("", policy, analysis.RunOptions{
		Cache:    !*noCache,
		CacheDir: *cacheDir,
	}, patterns...)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hyvet: %d package(s) (%d cached) in %s\n",
		stats.Packages, stats.Cached, stats.Duration.Round(time.Millisecond))
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings []analysis.Finding `json:"findings"`
		}{Findings: findings}); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "hyvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// findPolicy resolves the policy path, walking parent directories when the
// given relative path does not exist in the working directory (so hyvet
// works from any subdirectory of the repo).
func findPolicy(path string) (string, error) {
	if filepath.IsAbs(path) {
		return path, nil
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		candidate := filepath.Join(dir, path)
		if _, err := os.Stat(candidate); err == nil {
			return candidate, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("hyvet: policy file %q not found here or in any parent directory", path)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

module hygraph

go 1.22

// Integration tests exercising full cross-module flows: dataset → storage
// engines, dataset → HyGraph → HyQL, the fraud pipeline end to end, the
// semantic index over a generated instance, and streaming ingestion feeding
// continuous queries — the repository's subsystems working together the way
// the paper's architecture diagram (Figure 1) composes them.
package hygraph_test

import (
	"math"
	"testing"

	"hygraph/internal/bench"
	"hygraph/internal/core"
	"hygraph/internal/dataset"
	"hygraph/internal/hyql"
	"hygraph/internal/index"
	"hygraph/internal/pipeline"
	"hygraph/internal/storage/ttdb"
	"hygraph/internal/stream"
	"hygraph/internal/ts"
)

// TestTable1ShapeSmall runs the full Table 1 harness at a reduced scale and
// asserts the paper's qualitative shape: polyglot wins everywhere, heavily
// on the multi-entity aggregation queries.
func TestTable1ShapeSmall(t *testing.T) {
	cfg := bench.Config{
		Bike: dataset.BikeConfig{Stations: 60, Districts: 6, Days: 90,
			StepMinutes: 60, TripsPerSt: 4, Seed: 7},
		Reps: 3,
	}
	rows, err := bench.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows=%d", len(rows))
	}
	// At this scale the heavy-query factor is smaller than the default
	// run's but must still be large.
	if problems := bench.ShapeCheck(rows, 10); len(problems) != 0 {
		t.Fatalf("shape violated: %v\n%s", problems, bench.Format(rows))
	}
	for _, r := range rows {
		if r.NeoMRS <= 0 || r.TTDBMRS < 0 {
			t.Fatalf("degenerate timing row: %+v", r)
		}
	}
}

// TestEnginesAgreeOnGeneratedWorkload: both storage engines must return the
// same answers over a full generated dataset, not just the unit-test toy.
func TestEnginesAgreeOnGeneratedWorkload(t *testing.T) {
	data := dataset.GenerateBike(dataset.BikeConfig{
		Stations: 25, Districts: 5, Days: 21, StepMinutes: 60, TripsPerSt: 3, Seed: 11})
	neo := ttdb.NewAllInGraph()
	pg := ttdb.NewPolyglot(ts.Week)
	idsN, err := data.LoadEngine(neo)
	if err != nil {
		t.Fatal(err)
	}
	idsP, err := data.LoadEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	start, end := data.Span()
	qs, qe := start+3*ts.Day, end-3*ts.Day

	mN := neo.Q4AllStationMeans(qs, qe)
	mP := pg.Q4AllStationMeans(qs, qe)
	for i := range idsN {
		if math.Abs(mN[idsN[i]]-mP[idsP[i]]) > 1e-9 {
			t.Fatalf("station %d means differ: %v vs %v", i, mN[idsN[i]], mP[idsP[i]])
		}
	}
	dN := neo.Q5DistrictSums(qs, qe)
	dP := pg.Q5DistrictSums(qs, qe)
	if len(dN) != len(dP) {
		t.Fatalf("district counts differ: %d vs %d", len(dN), len(dP))
	}
	for k, v := range dN {
		if math.Abs(v-dP[k]) > 1e-5 {
			t.Fatalf("district %s sums differ: %v vs %v", k, v, dP[k])
		}
	}
	kN := neo.Q6TopKStations(qs, qe, 5)
	kP := pg.Q6TopKStations(qs, qe, 5)
	for i := range kN {
		// Translate engine-local ids through the shared load order.
		if kN[i] != kP[i] { // both engines assign dense ids in load order
			t.Fatalf("top-k order differs: %v vs %v", kN, kP)
		}
	}
	cN := neo.Q7Correlation(idsN[0], idsN[1], qs, qe, ts.Hour)
	cP := pg.Q7Correlation(idsP[0], idsP[1], qs, qe, ts.Hour)
	if math.Abs(cN-cP) > 1e-6 {
		t.Fatalf("correlations differ: %v vs %v", cN, cP)
	}
}

// TestHyQLOverBikeDataset: the query language over a generated instance,
// including district aggregation that must match a hand computation.
func TestHyQLOverBikeDataset(t *testing.T) {
	data := dataset.GenerateBike(dataset.BikeConfig{
		Stations: 12, Districts: 3, Days: 7, StepMinutes: 60, TripsPerSt: 2, Seed: 5})
	h, _ := data.ToHyGraph()
	eng := hyql.NewEngine(h)
	res, err := eng.Query(`
		MATCH (s:Station)-[:HAS_SERIES]->(a:Availability)
		RETURN s.district AS district, count(s) AS stations, avg(ts.mean(a)) AS avg_avail
		ORDER BY district`, 3*ts.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("districts=%d", len(res.Rows))
	}
	// Hand-compute district-0's expected values.
	var wantCount int
	var sum float64
	for _, st := range data.Stations {
		if st.District == "district-0" {
			wantCount++
			sum += st.Availability.Mean()
		}
	}
	if got := res.Rows[0][1].String(); got != itoa(wantCount) {
		t.Fatalf("district-0 stations=%s want %d", got, wantCount)
	}
	gotAvg, _ := res.Rows[0][2].AsFloat()
	if math.Abs(gotAvg-sum/float64(wantCount)) > 1e-9 {
		t.Fatalf("district-0 avg=%v want %v", gotAvg, sum/float64(wantCount))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestPipelineAcrossScales: the Figure-4 result holds as the workload grows.
func TestPipelineAcrossScales(t *testing.T) {
	for _, users := range []int{20, 60} {
		cfg := dataset.DefaultFraud()
		cfg.Users = users
		cfg.Seed = int64(users)
		d := dataset.GenerateFraud(cfg)
		r := pipeline.Run(d, pipeline.DefaultParams())
		if r.HybridMetrics.Recall() != 1 {
			t.Fatalf("users=%d: hybrid recall=%v", users, r.HybridMetrics.Recall())
		}
		if r.HybridMetrics.Precision() < r.GraphMetrics.Precision() {
			t.Fatalf("users=%d: hybrid precision below graph-only", users)
		}
	}
}

// TestSemanticIndexOverIoT: GraphRAG-style retrieval finds the faulty
// machines' sensors near each other.
func TestSemanticIndexOverIoT(t *testing.T) {
	d := dataset.GenerateIoT(dataset.DefaultIoT())
	mid := ts.Time(d.Config.Hours/2) * ts.Hour
	sem, err := index.BuildSemantic(d.H, index.DefaultSemantic(mid))
	if err != nil {
		t.Fatal(err)
	}
	// Combined index buckets group sensors of the same duty cycle.
	ci := index.BuildCombined(d.H, 8, 4)
	if len(ci.Buckets()) == 0 {
		t.Fatal("no combined-index buckets")
	}
	total := 0
	for _, b := range ci.Buckets() {
		total += len(ci.Lookup(b))
	}
	if total != len(d.Sensors) {
		t.Fatalf("indexed %d of %d sensors", total, len(d.Sensors))
	}
	// Faulty machines' sensors rank other faulty sensors among their
	// semantic neighbors (their features share drift+spike signature).
	var faultySensors []core.VID
	for mi := range d.Machines {
		if d.Faulty[mi] {
			for s := 0; s < d.Config.SensorsPerMach; s++ {
				faultySensors = append(faultySensors, d.Sensors[mi*d.Config.SensorsPerMach+s])
			}
		}
	}
	if len(faultySensors) < 2 {
		t.Skip("not enough faulty sensors")
	}
	isFaulty := map[core.VID]bool{}
	for _, s := range faultySensors {
		isFaulty[s] = true
	}
	hits := 0
	for _, s := range faultySensors {
		peers, err := sem.Similar(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range peers {
			if isFaulty[p] {
				hits++
				break
			}
		}
	}
	if hits < len(faultySensors)/2 {
		t.Fatalf("only %d/%d faulty sensors found a faulty peer", hits, len(faultySensors))
	}
}

// TestStreamingIntoQueries: stream a day of points into a generated
// instance and watch a continuous hybrid query pick up the change.
func TestStreamingIntoQueries(t *testing.T) {
	data := dataset.GenerateBike(dataset.BikeConfig{
		Stations: 5, Districts: 1, Days: 2, StepMinutes: 60, TripsPerSt: 1, Seed: 2})
	h, stations := data.ToHyGraph()
	// Find station 0's series vertex.
	var tsv core.VID = -1
	for _, e := range h.OutEdges(stations[0]) {
		if e.Label == "HAS_SERIES" {
			tsv = e.To
		}
	}
	if tsv < 0 {
		t.Fatal("no series vertex")
	}
	in := stream.NewIngestor(h)
	fires := 0
	c := &stream.Continuous{
		Query: `MATCH (a:Availability) RETURN count(a) AS n`,
		Slide: 6 * ts.Hour,
		Emit: func(_ ts.Time, res *hyql.Result) {
			fires++
			// Past the generated span only the streamed series is still
			// valid (TS validity = series time span), so each window sees
			// exactly one live Availability vertex.
			if n, _ := res.Rows[0][0].AsFloat(); n != 1 {
				t.Errorf("window saw %v series vertices", n)
			}
		},
	}
	_, end := data.Span()
	if err := in.Register(c, end); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		at := end + ts.Time(i)*ts.Hour
		if err := in.Apply(stream.Update{Kind: stream.Append, At: at, Vertex: tsv, Value: 20}); err != nil {
			t.Fatal(err)
		}
	}
	if fires != 3 { // windows at end+6h, +12h, +18h
		t.Fatalf("fires=%d", fires)
	}
	// The streamed points are queryable through HyQL immediately.
	res, err := hyql.NewEngine(h).Query(`
		MATCH (a:Availability)
		WHERE ts.len(a) > 60
		RETURN count(a) AS grown`, end+23*ts.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "1" {
		t.Fatalf("grown=%v", res.Rows[0][0])
	}
}

// TestHyGraphRoundTripThroughStorage: persist the PG part of an instance
// through the graph store's binary snapshot and reload it.
func TestHyGraphRoundTripThroughStorage(t *testing.T) {
	d := dataset.GenerateFraud(dataset.DefaultFraud())
	g, _ := d.H.ToTPG()
	// The TPG → lpg snapshot at t=0 has every PG element (all are valid
	// from 0 in this workload).
	snap := g.SnapshotAt(0)
	if snap.Graph.NumVertices() == 0 {
		t.Fatal("empty snapshot")
	}
	pv, _ := d.H.CountByKind(core.PG)
	if snap.Graph.NumVertices() != pv {
		t.Fatalf("snapshot vertices=%d want %d", snap.Graph.NumVertices(), pv)
	}
}
